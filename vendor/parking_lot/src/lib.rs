//! Offline drop-in subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives and exposes parking_lot's poison-free
//! interface (`lock()` returns the guard directly). A poisoned std lock
//! simply yields the inner guard — parking_lot has no poisoning, and the
//! engine treats a panic while holding a lock as unrecoverable anyway.

use std::sync;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
