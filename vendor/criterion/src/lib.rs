//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment cannot fetch crates.io, so the workspace vendors
//! the benchmarking surface it uses: `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`, `bench_with_input`,
//! and [`BenchmarkId`]. Measurement is a real wall-clock harness: each
//! sample times a calibrated batch of iterations and the report prints
//! `[min  median  max]` per-iteration times, so relative comparisons
//! between benches remain meaningful (statistical machinery like outlier
//! classification is intentionally omitted).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fit", 1000)` → `fit/1000`.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Per-iteration timer handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f` (the routine under measurement).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct MeasurementConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, cfg: MeasurementConfig, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up + calibration: run single iterations until the warm-up
    // budget is spent, tracking the observed per-iteration time.
    let warm_start = Instant::now();
    let mut probe_time = Duration::ZERO;
    let mut probes = 0u64;
    while warm_start.elapsed() < cfg.warm_up_time || probes == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        probe_time += b.elapsed;
        probes += 1;
        if probes >= 1_000_000 {
            break;
        }
    }
    let per_iter = probe_time.as_secs_f64() / probes as f64;
    let per_sample = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples × {iters} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        samples.len(),
    );
}

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Default)]
pub struct Criterion {
    config: MeasurementConfig,
}

impl Criterion {
    /// Benchmark a single function under `id`.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, self.config, &mut f);
        self
    }

    /// Open a named group whose benches share measurement settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: MeasurementConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.config, &mut f);
        self
    }

    /// Benchmark a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.config, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("fit", 100);
        assert_eq!(id.id, "fit/100");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(12.3), "12.30 ns");
        assert_eq!(format_time(12_300.0), "12.30 µs");
        assert_eq!(format_time(12_300_000.0), "12.30 ms");
    }
}
