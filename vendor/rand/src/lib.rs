//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] (seeded deterministically), the [`Rng`] extension
//! trait with `random`/`random_range`/`random_bool`, and [`SeedableRng`].
//! The generator is xoshiro256** seeded via SplitMix64 — statistically
//! strong for simulation workloads and fully deterministic across
//! platforms, which is all Mosaic requires (the engine's contract is
//! "deterministic given the seed", not cryptographic security).

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (SplitMix64-expanded into the full state).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sampling a value of `Self` from uniform bits (the `StandardUniform`
/// distribution of rand 0.9).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A type with an unbiased uniform sampler over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling over the widest unbiased zone.
                let zone = u128::from(u64::MAX) + 1;
                let cap = zone - zone % span;
                loop {
                    let x = u128::from(rng.next_u64());
                    if x < cap {
                        return (low as i128 + (x % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        let u = f64::sample(rng);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "random_range: empty range");
        let u = f32::sample(rng);
        low + u * (high - low)
    }
}

/// Range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample_range(rng, lo, hi); // unreachable in practice
                }
                <$t>::sample_range(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods for random generation (the user-facing trait).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0,1)`, integers uniform over the type,
    /// `bool` fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let n = rng.random_range(3usize..10);
            assert!((3..10).contains(&n));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..2000).filter(|_| rng.random::<bool>()).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }
}
