//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the property-test surface this workspace uses: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]`
//! attribute), range strategies over the primitive numeric types, tuple
//! strategies, [`collection::vec`], [`option::of`], and the
//! `prop_assert*` macros. Generation is deterministic (seeded per case
//! index) so failures reproduce across runs; shrinking is intentionally
//! omitted — a failing case prints its case number and the assert
//! message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG state.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi { lo } else { rng.random_range(lo..hi) }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.random_range(self.clone())
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Some(inner)` three times out of four and
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and per-case RNG derivation.
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Property-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG for case number `case` (reproducible failures).
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(
            0x4D4F_5341_4943u64 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Define property tests: each argument is drawn from its strategy for
/// every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                $body
            }
        }
    )*};
}

/// Assert within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! Common imports for property tests.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::case_rng(0);
        for _ in 0..500 {
            let v = (0u8..4).generate(&mut rng);
            assert!(v < 4);
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::test_runner::case_rng(1);
        let s = crate::collection::vec(0i64..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(0i64..10, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = crate::test_runner::case_rng(2);
        let s = crate::option::of(0usize..100);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec(0u8..255, 0..32);
        let a = s.generate(&mut crate::test_runner::case_rng(7));
        let b = s.generate(&mut crate::test_runner::case_rng(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trips(xs in crate::collection::vec(-100i64..100, 0..20), y in 1u8..5) {
            prop_assert!(xs.len() < 20);
            prop_assert!((1..5).contains(&y));
            let doubled: Vec<i64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
        }
    }
}
