//! # mosaic-stats
//!
//! Statistical machinery for the Mosaic open-world database (Orr et al.,
//! CIDR 2020):
//!
//! * [`Marginal`] — weighted 1-/2-/k-dimensional histograms ("population
//!   metadata", paper §3.2). Governments and corporations publish these as
//!   aggregate reports; Mosaic uses them to debias samples.
//! * [`Binner`] — explicit equal-width binning so IPF cells over continuous
//!   attributes are well-defined.
//! * [`WeightedEmpirical`] — a sorted, weighted 1-D empirical distribution
//!   with exact inverse-CDF evaluation.
//! * [`wasserstein_1d`] / [`sliced_wasserstein`] — exact 1-D Wasserstein
//!   distance (the paper computes it "exactly \[49\] instead of using the
//!   discriminator approach", §5.2) and its sliced generalization for
//!   2-dimensional marginals.
//! * [`Ipf`] — Iterative Proportional Fitting (Deming–Stephan raking), the
//!   SEMI-OPEN reweighting engine (paper §4.1).
//! * [`weighted`] — weighted means/quantiles/variances used by the weighted
//!   aggregate rewrite.

mod binning;
mod empirical;
mod ipf;
mod marginal;
mod wasserstein;
pub mod weighted;

pub use binning::Binner;
pub use empirical::WeightedEmpirical;
pub use ipf::{Ipf, IpfConfig, IpfReport};
pub use marginal::Marginal;
pub use wasserstein::{
    random_unit_vectors, sliced_wasserstein, standard_normal, wasserstein_1d, WassersteinOrder,
};

/// Percent difference `100 * |est - truth| / |truth|`, with the convention
/// that a zero truth and zero estimate is 0 % and a zero truth with a
/// non-zero estimate is 100 %.
pub fn percent_diff(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_diff_conventions() {
        assert_eq!(percent_diff(0.0, 0.0), 0.0);
        assert_eq!(percent_diff(5.0, 0.0), 100.0);
        assert!((percent_diff(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert!((percent_diff(90.0, 100.0) - 10.0).abs() < 1e-12);
    }
}
