//! Weighted statistics used by Mosaic's weighted-aggregate rewrite
//! (`COUNT(*)` → `SUM(weight)`, `AVG(x)` → `SUM(w·x)/SUM(w)`; paper §5.3)
//! and by the experiment harnesses.

/// Sum of weights (the weighted `COUNT(*)`).
pub fn weighted_count(weights: &[f64]) -> f64 {
    weights.iter().sum()
}

/// Weighted sum `Σ wᵢ·xᵢ`; `None` entries (NULLs) are skipped along with
/// their weights.
pub fn weighted_sum(values: &[Option<f64>], weights: &[f64]) -> f64 {
    debug_assert_eq!(values.len(), weights.len());
    values
        .iter()
        .zip(weights)
        .filter_map(|(v, w)| v.map(|x| x * w))
        .sum()
}

/// Weighted mean `Σ wx / Σ w` over non-NULL entries; `None` if no mass.
pub fn weighted_mean(values: &[Option<f64>], weights: &[f64]) -> Option<f64> {
    debug_assert_eq!(values.len(), weights.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for (v, w) in values.iter().zip(weights) {
        if let Some(x) = v {
            num += x * w;
            den += w;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// Weighted population variance over non-NULL entries; `None` if no mass.
pub fn weighted_variance(values: &[Option<f64>], weights: &[f64]) -> Option<f64> {
    let mean = weighted_mean(values, weights)?;
    let mut num = 0.0;
    let mut den = 0.0;
    for (v, w) in values.iter().zip(weights) {
        if let Some(x) = v {
            num += w * (x - mean).powi(2);
            den += w;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// Weighted quantile (inverse CDF convention, `q` in `[0,1]`) over non-NULL
/// entries; `None` if no mass.
pub fn weighted_quantile(values: &[Option<f64>], weights: &[f64], q: f64) -> Option<f64> {
    let mut pairs: Vec<(f64, f64)> = values
        .iter()
        .zip(weights)
        .filter_map(|(v, w)| v.map(|x| (x, *w)))
        .filter(|&(_, w)| w > 0.0)
        .collect();
    if pairs.is_empty() {
        return None;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = pairs.iter().map(|p| p.1).sum();
    let target = q.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for (v, w) in &pairs {
        acc += w;
        if acc >= target - 1e-12 {
            return Some(*v);
        }
    }
    Some(pairs.last().expect("non-empty").0)
}

/// Kish effective sample size `(Σw)² / Σw²` — a standard diagnostic for how
/// much reweighting has concentrated the sample.
pub fn effective_sample_size(weights: &[f64]) -> f64 {
    let s: f64 = weights.iter().sum();
    let s2: f64 = weights.iter().map(|w| w * w).sum();
    if s2 == 0.0 {
        0.0
    } else {
        s * s / s2
    }
}

/// Scale weights in place so they sum to `target_total`.
pub fn normalize_weights(weights: &mut [f64], target_total: f64) {
    let s: f64 = weights.iter().sum();
    if s > 0.0 {
        let f = target_total / s;
        for w in weights.iter_mut() {
            *w *= f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_weight_sum() {
        assert_eq!(weighted_count(&[1.0, 2.0, 0.5]), 3.5);
    }

    #[test]
    fn mean_ignores_nulls_with_their_weights() {
        let v = [Some(10.0), None, Some(20.0)];
        let w = [1.0, 100.0, 3.0];
        assert_eq!(weighted_mean(&v, &w), Some(70.0 / 4.0));
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(weighted_mean(&[None], &[1.0]), None);
        assert_eq!(weighted_mean(&[], &[]), None);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let v = [Some(5.0), Some(5.0)];
        let w = [2.0, 3.0];
        assert_eq!(weighted_variance(&v, &w), Some(0.0));
    }

    #[test]
    fn quantile_respects_weights() {
        let v = [Some(1.0), Some(2.0), Some(3.0)];
        let w = [8.0, 1.0, 1.0];
        assert_eq!(weighted_quantile(&v, &w, 0.5), Some(1.0));
        assert_eq!(weighted_quantile(&v, &w, 0.95), Some(3.0));
    }

    #[test]
    fn ess_bounds() {
        assert_eq!(effective_sample_size(&[1.0; 10]), 10.0);
        let concentrated = effective_sample_size(&[100.0, 0.001, 0.001]);
        assert!(concentrated < 1.1);
    }

    #[test]
    fn normalize_hits_target() {
        let mut w = vec![1.0, 3.0];
        normalize_weights(&mut w, 100.0);
        assert!((w.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((w[1] - 75.0).abs() < 1e-9);
    }
}
