/// Equal-width binning for continuous attributes.
///
/// IPF cells must be discrete; Mosaic discretizes continuous attributes with
/// an explicit `Binner` so the sample and the metadata agree on cell
/// boundaries. Bin `i` covers `[lo + i*width, lo + (i+1)*width)` with the
/// last bin closed on the right; out-of-range values clamp to the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    lo: f64,
    width: f64,
    bins: usize,
}

impl Binner {
    /// `bins` equal-width bins over `[lo, hi]`.
    pub fn equal_width(lo: f64, hi: f64, bins: usize) -> Binner {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty bin range");
        Binner {
            lo,
            width: (hi - lo) / bins as f64,
            bins,
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins
    }

    /// Bin index for `x` (clamped to `[0, bins-1]`).
    pub fn bin(&self, x: f64) -> usize {
        if !x.is_finite() {
            return 0;
        }
        let i = ((x - self.lo) / self.width).floor();
        (i.max(0.0) as usize).min(self.bins - 1)
    }

    /// Midpoint representative of bin `i`.
    pub fn midpoint(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// `[low, high)` edges of bin `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + i as f64 * self.width;
        (lo, lo + self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let b = Binner::equal_width(0.0, 10.0, 5);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(1.999), 0);
        assert_eq!(b.bin(2.0), 1);
        assert_eq!(b.bin(9.999), 4);
        assert_eq!(b.bin(10.0), 4); // closed right edge
    }

    #[test]
    fn out_of_range_clamps() {
        let b = Binner::equal_width(0.0, 10.0, 5);
        assert_eq!(b.bin(-100.0), 0);
        assert_eq!(b.bin(100.0), 4);
        assert_eq!(b.bin(f64::NAN), 0);
    }

    #[test]
    fn midpoints_and_edges() {
        let b = Binner::equal_width(0.0, 10.0, 5);
        assert_eq!(b.midpoint(0), 1.0);
        assert_eq!(b.midpoint(4), 9.0);
        assert_eq!(b.edges(1), (2.0, 4.0));
    }

    #[test]
    #[should_panic]
    fn zero_bins_rejected() {
        Binner::equal_width(0.0, 1.0, 0);
    }
}
