use std::collections::HashMap;

use mosaic_storage::{Table, Value};

use crate::{Binner, Marginal};

/// Configuration for Iterative Proportional Fitting.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IpfConfig {
    /// Maximum raking passes over all marginals.
    pub max_iterations: usize,
    /// Convergence threshold on the maximum relative cell error.
    pub tolerance: f64,
}

impl Default for IpfConfig {
    fn default() -> Self {
        IpfConfig {
            max_iterations: 200,
            tolerance: 1e-8,
        }
    }
}

impl IpfConfig {
    /// Set the maximum raking passes over all marginals.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Set the convergence threshold on the maximum relative cell error.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

/// Outcome of an IPF run.
#[derive(Debug, Clone)]
pub struct IpfReport {
    /// Raking passes actually performed.
    pub iterations: usize,
    /// Maximum relative cell error at termination.
    pub max_rel_error: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Rows whose cell does not appear in some marginal (their weight is
    /// zeroed for that marginal's constraint — the marginal says such
    /// tuples have zero population mass).
    pub unmatched_rows: usize,
    /// Marginal cells with positive target but zero sample mass; IPF cannot
    /// create mass there (SEMI-OPEN queries have false negatives, paper
    /// §3.3) — these are exactly the cells OPEN query processing exists for.
    pub empty_target_cells: usize,
}

struct MarginalIndex {
    /// Target count per cell.
    targets: Vec<f64>,
    /// For each sample row, the cell index in `targets` (or `usize::MAX`
    /// when the row's key is not a cell of the marginal).
    row_cell: Vec<usize>,
}

/// Iterative Proportional Fitting (Deming–Stephan raking; paper §4.1).
///
/// Reweights a sample so that, for every supplied marginal, the weighted
/// sample totals per cell match the marginal's published counts. This is
/// Mosaic's SEMI-OPEN query evaluation when the sampling mechanism is
/// unknown.
///
/// ```
/// use mosaic_storage::{DataType, Field, Schema, TableBuilder};
/// use mosaic_stats::{Ipf, IpfConfig, Marginal};
/// use std::collections::HashMap;
///
/// let schema = Schema::new(vec![Field::new("city", DataType::Str)]);
/// let mut b = TableBuilder::new(schema);
/// // Biased sample: 3 of "a", 1 of "b".
/// for c in ["a", "a", "a", "b"] {
///     b.push_row(vec![c.into()]).unwrap();
/// }
/// let sample = b.finish();
///
/// // Ground truth: the population is 50/50.
/// let mut m = Marginal::new(vec!["city".into()]);
/// m.add(vec!["a".into()], 100.0);
/// m.add(vec!["b".into()], 100.0);
///
/// let ipf = Ipf::new(&sample, std::slice::from_ref(&m), &HashMap::new()).unwrap();
/// let (weights, report) = ipf.fit(None, &IpfConfig::default());
/// assert!(report.converged);
/// assert!((weights[0] - 100.0 / 3.0).abs() < 1e-6);
/// assert!((weights[3] - 100.0).abs() < 1e-6);
/// ```
pub struct Ipf {
    marginals: Vec<MarginalIndex>,
    num_rows: usize,
    unmatched_rows: usize,
    empty_target_cells: usize,
}

impl Ipf {
    /// Index a sample table against a set of marginals. `binners`
    /// discretize continuous attributes (keyed by attribute name) and must
    /// match the binning used to build the marginals.
    #[allow(clippy::needless_range_loop)]
    pub fn new(
        sample: &Table,
        marginals: &[Marginal],
        binners: &HashMap<String, Binner>,
    ) -> mosaic_storage::Result<Ipf> {
        let n = sample.num_rows();
        let mut out = Vec::with_capacity(marginals.len());
        let mut unmatched = vec![false; n];
        let mut empty_target_cells = 0usize;
        for m in marginals {
            let cols = m
                .attrs()
                .iter()
                .map(|a| sample.column_by_name(a))
                .collect::<mosaic_storage::Result<Vec<_>>>()?;
            let col_binners: Vec<Option<&Binner>> = m
                .attrs()
                .iter()
                .map(|a| {
                    binners
                        .get(a.as_str())
                        .or_else(|| binners.get(&a.to_ascii_lowercase()))
                })
                .collect();
            // Stable cell order for the targets vector.
            let mut cell_index: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut targets = Vec::with_capacity(m.num_cells());
            for (key, count) in m.iter() {
                cell_index.insert(key.clone(), targets.len());
                targets.push(count);
            }
            let mut row_cell = Vec::with_capacity(n);
            let mut seen = vec![false; targets.len()];
            for row in 0..n {
                let key: Vec<Value> = cols
                    .iter()
                    .zip(&col_binners)
                    .map(|(c, b)| match (b, c.value(row)) {
                        // Binned keys are bin midpoints — the same
                        // convention `Marginal::from_table` uses.
                        (Some(binner), v) => match v.as_f64() {
                            Some(x) => Value::Float(binner.midpoint(binner.bin(x))),
                            None => v,
                        },
                        (None, v) => v,
                    })
                    .collect();
                match cell_index.get(&key) {
                    Some(&idx) => {
                        seen[idx] = true;
                        row_cell.push(idx);
                    }
                    None => {
                        unmatched[row] = true;
                        row_cell.push(usize::MAX);
                    }
                }
            }
            empty_target_cells += seen
                .iter()
                .zip(&targets)
                .filter(|(s, t)| !**s && **t > 0.0)
                .count();
            out.push(MarginalIndex { targets, row_cell });
        }
        Ok(Ipf {
            marginals: out,
            num_rows: n,
            unmatched_rows: unmatched.iter().filter(|&&u| u).count(),
            empty_target_cells,
        })
    }

    /// Number of sample rows being reweighted.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Run the raking loop. `initial_weights` defaults to all-ones (the
    /// paper: sample weights are "initialized to be one for every tuple").
    /// Returns the fitted weights and a convergence report.
    pub fn fit(
        &self,
        initial_weights: Option<&[f64]>,
        config: &IpfConfig,
    ) -> (Vec<f64>, IpfReport) {
        let mut weights: Vec<f64> = match initial_weights {
            Some(w) => {
                assert_eq!(w.len(), self.num_rows, "initial weight length mismatch");
                w.to_vec()
            }
            None => vec![1.0; self.num_rows],
        };
        let mut iterations = 0;
        let mut max_rel_error = f64::INFINITY;
        let mut converged = false;
        let mut totals: Vec<f64> = Vec::new();
        for it in 0..config.max_iterations {
            iterations = it + 1;
            let mut pass_err = 0.0f64;
            for m in &self.marginals {
                totals.clear();
                totals.resize(m.targets.len(), 0.0);
                for (row, &cell) in m.row_cell.iter().enumerate() {
                    if cell != usize::MAX {
                        totals[cell] += weights[row];
                    }
                }
                for (cell, (&total, &target)) in totals.iter().zip(&m.targets).enumerate() {
                    let _ = cell;
                    if target > 0.0 && total > 0.0 {
                        pass_err = pass_err.max((total - target).abs() / target);
                    } else if target > 0.0 {
                        // Unreachable target mass: not counted against
                        // convergence (IPF cannot fix it); surfaced in the
                        // report via empty_target_cells instead.
                    } else if total > 0.0 {
                        pass_err = pass_err.max(1.0);
                    }
                }
                for (row, &cell) in m.row_cell.iter().enumerate() {
                    if cell == usize::MAX {
                        // Row outside the marginal's support: the metadata
                        // says no such tuples exist in the population.
                        weights[row] = 0.0;
                        continue;
                    }
                    let total = totals[cell];
                    let target = m.targets[cell];
                    if total > 0.0 {
                        weights[row] *= target / total;
                    }
                }
            }
            max_rel_error = pass_err;
            if pass_err < config.tolerance {
                converged = true;
                break;
            }
        }
        (
            weights,
            IpfReport {
                iterations,
                max_rel_error,
                converged,
                unmatched_rows: self.unmatched_rows,
                empty_target_cells: self.empty_target_cells,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{DataType, Field, Schema, TableBuilder};

    fn two_attr_sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
        ]);
        let mut t = TableBuilder::new(schema);
        for (a, b) in [("x", "u"), ("x", "v"), ("y", "u"), ("y", "v")] {
            t.push_row(vec![a.into(), b.into()]).unwrap();
        }
        t.finish()
    }

    fn marg(attr: &str, cells: &[(&str, f64)]) -> Marginal {
        let mut m = Marginal::new(vec![attr.into()]);
        for (k, c) in cells {
            m.add(vec![(*k).into()], *c);
        }
        m
    }

    #[test]
    fn single_marginal_exact_in_one_pass() {
        let t = two_attr_sample();
        let m = marg("a", &[("x", 60.0), ("y", 40.0)]);
        let ipf = Ipf::new(&t, std::slice::from_ref(&m), &HashMap::new()).unwrap();
        let (w, rep) = ipf.fit(None, &IpfConfig::default());
        assert!(rep.converged);
        assert!((w[0] - 30.0).abs() < 1e-9);
        assert!((w[2] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn two_marginals_both_satisfied() {
        let t = two_attr_sample();
        let ma = marg("a", &[("x", 70.0), ("y", 30.0)]);
        let mb = marg("b", &[("u", 50.0), ("v", 50.0)]);
        let ipf = Ipf::new(&t, &[ma.clone(), mb.clone()], &HashMap::new()).unwrap();
        let (w, rep) = ipf.fit(None, &IpfConfig::default());
        assert!(rep.converged, "report: {rep:?}");
        // Check both marginals are satisfied by the weighted sample.
        let wa_x = w[0] + w[1];
        let wb_u = w[0] + w[2];
        assert!((wa_x - 70.0).abs() < 1e-6);
        assert!((wb_u - 50.0).abs() < 1e-6);
        assert!((w.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn unmatched_rows_get_zero_weight() {
        let t = two_attr_sample();
        // Marginal that omits a="y": those tuples don't exist in the population.
        let m = marg("a", &[("x", 10.0)]);
        let ipf = Ipf::new(&t, std::slice::from_ref(&m), &HashMap::new()).unwrap();
        let (w, rep) = ipf.fit(None, &IpfConfig::default());
        assert_eq!(rep.unmatched_rows, 2);
        assert_eq!(w[2], 0.0);
        assert_eq!(w[3], 0.0);
        assert!((w[0] + w[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_target_cells_reported() {
        let t = two_attr_sample();
        let m = marg("a", &[("x", 50.0), ("y", 40.0), ("z", 10.0)]);
        let ipf = Ipf::new(&t, std::slice::from_ref(&m), &HashMap::new()).unwrap();
        let (_, rep) = ipf.fit(None, &IpfConfig::default());
        // "z" has target mass but no sample rows: a false-negative cell.
        assert_eq!(rep.empty_target_cells, 1);
    }

    #[test]
    fn initial_weights_respected() {
        let t = two_attr_sample();
        let m = marg("a", &[("x", 100.0), ("y", 100.0)]);
        let ipf = Ipf::new(&t, std::slice::from_ref(&m), &HashMap::new()).unwrap();
        // Row 0 starts 3x heavier than row 1; IPF preserves the ratio within a cell.
        let (w, _) = ipf.fit(Some(&[3.0, 1.0, 1.0, 1.0]), &IpfConfig::default());
        assert!((w[0] / w[1] - 3.0).abs() < 1e-9);
        assert!((w[0] + w[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn binned_continuous_marginal() {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        for x in [0.1, 0.2, 0.8, 0.9] {
            b.push_row(vec![x.into()]).unwrap();
        }
        let t = b.finish();
        let binner = Binner::equal_width(0.0, 1.0, 2);
        let mut m = Marginal::new(vec!["x".into()]);
        // Binned cells are keyed by bin midpoints (0.25 and 0.75).
        m.add(vec![Value::Float(0.25)], 10.0);
        m.add(vec![Value::Float(0.75)], 90.0);
        let mut binners = HashMap::new();
        binners.insert("x".to_string(), binner);
        let ipf = Ipf::new(&t, std::slice::from_ref(&m), &binners).unwrap();
        let (w, rep) = ipf.fit(None, &IpfConfig::default());
        assert!(rep.converged);
        assert!((w[0] - 5.0).abs() < 1e-9);
        assert!((w[3] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn missing_column_is_an_error() {
        let t = two_attr_sample();
        let m = marg("missing", &[("x", 1.0)]);
        assert!(Ipf::new(&t, std::slice::from_ref(&m), &HashMap::new()).is_err());
    }
}
