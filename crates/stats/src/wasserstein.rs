use rand::Rng;

use crate::WeightedEmpirical;

/// Order of the Wasserstein distance used for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WassersteinOrder {
    /// Earth-mover distance `W1` (the paper's formulation).
    W1,
    /// Squared `W2` (smooth gradients; common in sliced-Wasserstein
    /// generators).
    W2Squared,
}

/// Exact 1-D Wasserstein distance between two weighted empirical
/// distributions (both normalized to unit mass).
///
/// Computed as the integral over quantile functions:
/// `W_p^p = ∫₀¹ |F_a⁻¹(u) − F_b⁻¹(u)|^p du`, evaluated exactly with a merged
/// CDF walk — `O(n + m)` after sorting. For `W1` the value itself is
/// returned; for `W2Squared` the squared distance is returned.
pub fn wasserstein_1d(
    a: &WeightedEmpirical,
    b: &WeightedEmpirical,
    order: WassersteinOrder,
) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (av, aw, at) = (a.values(), a.weights(), a.total());
    let (bv, bw, bt) = (b.values(), b.weights(), b.total());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut ca = aw[0] / at; // cumulative fraction consumed from a
    let mut cb = bw[0] / bt;
    let mut u = 0.0f64; // position along the quantile axis
    let mut acc = 0.0f64;
    loop {
        let next = ca.min(cb);
        let seg = (next - u).max(0.0);
        let d = (av[i] - bv[j]).abs();
        acc += seg
            * match order {
                WassersteinOrder::W1 => d,
                WassersteinOrder::W2Squared => d * d,
            };
        u = next;
        if u >= 1.0 - 1e-12 {
            break;
        }
        if ca <= cb {
            i += 1;
            if i >= av.len() {
                break;
            }
            ca += aw[i] / at;
        } else {
            j += 1;
            if j >= bv.len() {
                break;
            }
            cb += bw[j] / bt;
        }
    }
    acc
}

/// Sample a standard normal via Box–Muller (we avoid the `rand_distr`
/// dependency; only the approved crates are used).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// `p` random directions uniformly distributed on the unit sphere in `R^d`
/// (Gaussian sampling + normalization).
pub fn random_unit_vectors<R: Rng + ?Sized>(d: usize, p: usize, rng: &mut R) -> Vec<Vec<f64>> {
    assert!(d > 0, "dimension must be positive");
    (0..p)
        .map(|_| loop {
            let v: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                return v.iter().map(|x| x / norm).collect();
            }
        })
        .collect()
}

/// Sliced Wasserstein distance between two weighted point clouds in `R^d`:
/// the average exact 1-D Wasserstein distance over the given projections
/// (paper §5.2: "randomly project the marginals onto multiple one
/// dimensional spaces and compute the Wasserstein distance exactly for each
/// projection").
pub fn sliced_wasserstein(
    points_a: &[(Vec<f64>, f64)],
    points_b: &[(Vec<f64>, f64)],
    projections: &[Vec<f64>],
    order: WassersteinOrder,
) -> f64 {
    assert!(!projections.is_empty(), "need at least one projection");
    let mut acc = 0.0;
    for w in projections {
        let a = WeightedEmpirical::from_pairs(points_a.iter().map(|(x, m)| (dot(x, w), *m)));
        let b = WeightedEmpirical::from_pairs(points_b.iter().map(|(x, m)| (dot(x, w), *m)));
        acc += wasserstein_1d(&a, &b, order);
    }
    acc / projections.len() as f64
}

/// Dot product of equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let a = WeightedEmpirical::from_values([1.0, 2.0, 3.0]);
        let b = WeightedEmpirical::from_values([1.0, 2.0, 3.0]);
        assert!(wasserstein_1d(&a, &b, WassersteinOrder::W1).abs() < 1e-12);
        assert!(wasserstein_1d(&a, &b, WassersteinOrder::W2Squared).abs() < 1e-12);
    }

    #[test]
    fn point_mass_shift_is_the_shift() {
        let a = WeightedEmpirical::from_values([0.0]);
        let b = WeightedEmpirical::from_values([3.0]);
        assert!((wasserstein_1d(&a, &b, WassersteinOrder::W1) - 3.0).abs() < 1e-12);
        assert!((wasserstein_1d(&a, &b, WassersteinOrder::W2Squared) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weights_matter() {
        // a: mass 0.75 at 0, 0.25 at 1. b: all mass at 0. W1 = 0.25.
        let a = WeightedEmpirical::from_pairs([(0.0, 3.0), (1.0, 1.0)]);
        let b = WeightedEmpirical::from_pairs([(0.0, 1.0)]);
        assert!((wasserstein_1d(&a, &b, WassersteinOrder::W1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = WeightedEmpirical::from_values([0.0, 1.0, 5.0]);
        let b = WeightedEmpirical::from_pairs([(2.0, 2.0), (4.0, 1.0)]);
        let ab = wasserstein_1d(&a, &b, WassersteinOrder::W1);
        let ba = wasserstein_1d(&b, &a, WassersteinOrder::W1);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(7);
        for v in random_unit_vectors(5, 20, &mut rng) {
            let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sliced_zero_for_identical_clouds() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<(Vec<f64>, f64)> = (0..50)
            .map(|_| {
                (
                    vec![standard_normal(&mut rng), standard_normal(&mut rng)],
                    1.0,
                )
            })
            .collect();
        let proj = random_unit_vectors(2, 10, &mut rng);
        let d = sliced_wasserstein(&pts, &pts, &proj, WassersteinOrder::W2Squared);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn sliced_detects_translation() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<(Vec<f64>, f64)> = (0..100)
            .map(|_| {
                (
                    vec![standard_normal(&mut rng), standard_normal(&mut rng)],
                    1.0,
                )
            })
            .collect();
        let b: Vec<(Vec<f64>, f64)> = a
            .iter()
            .map(|(x, w)| (vec![x[0] + 5.0, x[1]], *w))
            .collect();
        let proj = random_unit_vectors(2, 50, &mut rng);
        let d = sliced_wasserstein(&a, &b, &proj, WassersteinOrder::W1);
        assert!(d > 1.0, "translation should be detected, got {d}");
    }
}
