/// A sorted, weighted 1-D empirical distribution with exact inverse-CDF
/// (quantile) evaluation.
///
/// This is the workhorse for the exact 1-D Wasserstein computation of the
/// M-SWG loss (paper §5.2): both a generated batch and a published marginal
/// reduce to a `WeightedEmpirical`, and `W_p` between two of them is an exact
/// integral over matched quantiles.
#[derive(Debug, Clone)]
pub struct WeightedEmpirical {
    values: Vec<f64>,
    weights: Vec<f64>,
    cum: Vec<f64>,
    total: f64,
}

impl WeightedEmpirical {
    /// Build from `(value, weight)` pairs; non-positive weights are dropped.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> WeightedEmpirical {
        let mut vw: Vec<(f64, f64)> = pairs.into_iter().filter(|&(_, w)| w > 0.0).collect();
        vw.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut values = Vec::with_capacity(vw.len());
        let mut weights = Vec::with_capacity(vw.len());
        for (v, w) in vw {
            // Merge duplicate values so the CDF is strictly increasing in x.
            if values.last().is_some_and(|&last: &f64| last == v) {
                *weights.last_mut().expect("non-empty") += w;
            } else {
                values.push(v);
                weights.push(w);
            }
        }
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cum.push(acc);
        }
        WeightedEmpirical {
            values,
            weights,
            cum,
            total: acc,
        }
    }

    /// Build with unit weights.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> WeightedEmpirical {
        Self::from_pairs(values.into_iter().map(|v| (v, 1.0)))
    }

    /// Number of distinct support points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the distribution has no mass.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Support points (sorted ascending).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Weights aligned with [`Self::values`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Exact inverse CDF: the smallest support point whose cumulative
    /// normalized mass is `>= u` (for `u` in `[0,1]`).
    pub fn quantile(&self, u: f64) -> f64 {
        assert!(!self.is_empty(), "quantile of empty distribution");
        let target = u.clamp(0.0, 1.0) * self.total;
        // Binary search the cumulative weights.
        let idx = self.cum.partition_point(|&c| c < target - 1e-12);
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Weighted mean.
    pub fn mean(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.values
            .iter()
            .zip(&self.weights)
            .map(|(v, w)| v * w)
            .sum::<f64>()
            / self.total
    }

    /// CDF at `x` (fraction of mass `<= x`).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let idx = self.values.partition_point(|&v| v <= x);
        if idx == 0 {
            0.0
        } else {
            self.cum[idx - 1] / self.total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_merges_duplicates() {
        let e = WeightedEmpirical::from_pairs([(2.0, 1.0), (1.0, 1.0), (2.0, 3.0)]);
        assert_eq!(e.values(), &[1.0, 2.0]);
        assert_eq!(e.weights(), &[1.0, 4.0]);
        assert_eq!(e.total(), 5.0);
    }

    #[test]
    fn quantile_is_inverse_cdf() {
        let e = WeightedEmpirical::from_pairs([(0.0, 1.0), (10.0, 1.0)]);
        assert_eq!(e.quantile(0.25), 0.0);
        assert_eq!(e.quantile(0.75), 10.0);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(1.0), 10.0);
    }

    #[test]
    fn cdf_steps_at_support() {
        let e = WeightedEmpirical::from_pairs([(1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.5);
        assert_eq!(e.cdf(1.5), 0.5);
        assert_eq!(e.cdf(2.0), 1.0);
    }

    #[test]
    fn drops_nonpositive_weights() {
        let e = WeightedEmpirical::from_pairs([(1.0, 0.0), (2.0, -3.0), (3.0, 2.0)]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.mean(), 3.0);
    }

    #[test]
    fn mean_weighted() {
        let e = WeightedEmpirical::from_pairs([(0.0, 3.0), (4.0, 1.0)]);
        assert_eq!(e.mean(), 1.0);
    }
}
