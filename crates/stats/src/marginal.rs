use std::collections::HashMap;
use std::fmt;

use mosaic_storage::{Table, Value};

use crate::Binner;

/// A weighted k-dimensional histogram over named attributes — Mosaic's
/// "population metadata" (paper §3.2).
///
/// The paper focuses on 1- and 2-dimensional marginals ("these histograms
/// (marginals) are commonly released by corporations or governments"), but
/// nothing here restricts the dimensionality.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginal {
    attrs: Vec<String>,
    cells: HashMap<Vec<Value>, f64>,
}

impl Marginal {
    /// Empty marginal over the given attributes.
    pub fn new(attrs: Vec<String>) -> Self {
        assert!(!attrs.is_empty(), "marginal needs at least one attribute");
        Marginal {
            attrs,
            cells: HashMap::new(),
        }
    }

    /// Build a marginal by (weighted) group-by count over a table.
    ///
    /// `weights` defaults to all-ones; `binners` optionally discretize
    /// continuous attributes before cell formation.
    pub fn from_table(
        table: &Table,
        attrs: &[&str],
        weights: Option<&[f64]>,
        binners: &HashMap<String, Binner>,
    ) -> mosaic_storage::Result<Marginal> {
        let cols = attrs
            .iter()
            .map(|a| table.column_by_name(a))
            .collect::<mosaic_storage::Result<Vec<_>>>()?;
        let col_binners: Vec<Option<&Binner>> = attrs
            .iter()
            .map(|a| {
                binners
                    .get(*a)
                    .or_else(|| binners.get(&a.to_ascii_lowercase()))
            })
            .collect();
        let mut m = Marginal::new(attrs.iter().map(|s| s.to_string()).collect());
        for row in 0..table.num_rows() {
            let key: Vec<Value> = cols
                .iter()
                .zip(&col_binners)
                .map(|(c, b)| apply_binner(c.value(row), *b))
                .collect();
            let w = weights.map_or(1.0, |w| w[row]);
            m.add(key, w);
        }
        Ok(m)
    }

    /// Attribute names, in cell-key order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Dimensionality (1 for 1-D marginals, 2 for attribute pairs, ...).
    pub fn dim(&self) -> usize {
        self.attrs.len()
    }

    /// Number of distinct cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Add `count` to a cell (creating it if absent).
    pub fn add(&mut self, key: Vec<Value>, count: f64) {
        assert_eq!(key.len(), self.attrs.len(), "cell key arity mismatch");
        *self.cells.entry(key).or_insert(0.0) += count;
    }

    /// Set a cell's count outright.
    pub fn set(&mut self, key: Vec<Value>, count: f64) {
        assert_eq!(key.len(), self.attrs.len(), "cell key arity mismatch");
        self.cells.insert(key, count);
    }

    /// Count for a cell, if present.
    pub fn get(&self, key: &[Value]) -> Option<f64> {
        self.cells.get(key).copied()
    }

    /// Iterate `(cell key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, f64)> + '_ {
        self.cells.iter().map(|(k, &v)| (k, v))
    }

    /// Total mass (the implied population size when this is a count
    /// marginal over the whole population).
    pub fn total(&self) -> f64 {
        self.cells.values().sum()
    }

    /// Project a (k>1)-dim marginal down to a subset of its attributes.
    pub fn project(&self, attrs: &[&str]) -> Option<Marginal> {
        let idx: Vec<usize> = attrs
            .iter()
            .map(|a| self.attrs.iter().position(|x| x.eq_ignore_ascii_case(a)))
            .collect::<Option<Vec<_>>>()?;
        let mut m = Marginal::new(attrs.iter().map(|s| s.to_string()).collect());
        for (key, count) in self.iter() {
            let sub: Vec<Value> = idx.iter().map(|&i| key[i].clone()).collect();
            m.add(sub, count);
        }
        Some(m)
    }

    /// Scale every cell so the total equals `target_total`.
    pub fn rescale(&mut self, target_total: f64) {
        let t = self.total();
        if t > 0.0 {
            let f = target_total / t;
            for v in self.cells.values_mut() {
                *v *= f;
            }
        }
    }

    /// True if this marginal covers attribute `name` (case-insensitive).
    pub fn covers(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.eq_ignore_ascii_case(name))
    }

    /// The marginal's cells as `(f64 value, weight)` pairs, for 1-D numeric
    /// marginals. Returns `None` if the marginal is not 1-D or any cell key
    /// is non-numeric.
    pub fn to_numeric_pairs(&self) -> Option<Vec<(f64, f64)>> {
        if self.dim() != 1 {
            return None;
        }
        let mut out = Vec::with_capacity(self.cells.len());
        for (k, c) in self.iter() {
            out.push((k[0].as_f64()?, c));
        }
        Some(out)
    }
}

/// Binned cells are keyed by the **bin midpoint** (not the bin index):
/// the midpoint is a real coordinate, so downstream consumers that embed
/// marginal cells into attribute space (the M-SWG encoder) and consumers
/// that only need consistent discrete keys (IPF) can share one
/// representation.
fn apply_binner(v: Value, binner: Option<&Binner>) -> Value {
    match (binner, v) {
        (Some(b), v) => match v.as_f64() {
            Some(x) => Value::Float(b.midpoint(b.bin(x))),
            None => v,
        },
        (None, v) => v,
    }
}

impl fmt::Display for Marginal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Marginal({}; {} cells, total {:.1})",
            self.attrs.join(", "),
            self.num_cells(),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{DataType, Field, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("country", DataType::Str),
            Field::new("email", DataType::Str),
            Field::new("age", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (c, e, a) in [
            ("UK", "Yahoo", 30.0),
            ("UK", "AOL", 40.0),
            ("FR", "Yahoo", 25.0),
            ("FR", "Yahoo", 35.0),
        ] {
            b.push_row(vec![c.into(), e.into(), a.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn from_table_counts_groups() {
        let t = table();
        let m = Marginal::from_table(&t, &["country"], None, &HashMap::new()).unwrap();
        assert_eq!(m.get(&["UK".into()]), Some(2.0));
        assert_eq!(m.get(&["FR".into()]), Some(2.0));
        assert_eq!(m.total(), 4.0);
    }

    #[test]
    fn from_table_weighted() {
        let t = table();
        let w = [1.0, 2.0, 3.0, 4.0];
        let m = Marginal::from_table(&t, &["email"], Some(&w), &HashMap::new()).unwrap();
        assert_eq!(m.get(&["Yahoo".into()]), Some(8.0));
        assert_eq!(m.get(&["AOL".into()]), Some(2.0));
    }

    #[test]
    fn two_dim_cells() {
        let t = table();
        let m = Marginal::from_table(&t, &["country", "email"], None, &HashMap::new()).unwrap();
        assert_eq!(m.dim(), 2);
        assert_eq!(m.get(&["FR".into(), "Yahoo".into()]), Some(2.0));
        assert_eq!(m.get(&["FR".into(), "AOL".into()]), None);
    }

    #[test]
    fn binner_discretizes_continuous() {
        let t = table();
        let mut binners = HashMap::new();
        binners.insert("age".to_string(), Binner::equal_width(20.0, 40.0, 2));
        let m = Marginal::from_table(&t, &["age"], None, &binners).unwrap();
        // bins: [20,30) and [30,40], keyed by midpoints 25 and 35;
        // ages 30,40,35 fall in bin 1; 25 in bin 0.
        assert_eq!(m.get(&[Value::Float(25.0)]), Some(1.0));
        assert_eq!(m.get(&[Value::Float(35.0)]), Some(3.0));
    }

    #[test]
    fn project_sums_out_attrs() {
        let t = table();
        let m2 = Marginal::from_table(&t, &["country", "email"], None, &HashMap::new()).unwrap();
        let m1 = m2.project(&["email"]).unwrap();
        assert_eq!(m1.get(&["Yahoo".into()]), Some(3.0));
        assert!(m2.project(&["missing"]).is_none());
    }

    #[test]
    fn rescale_changes_total() {
        let t = table();
        let mut m = Marginal::from_table(&t, &["country"], None, &HashMap::new()).unwrap();
        m.rescale(100.0);
        assert!((m.total() - 100.0).abs() < 1e-9);
        assert_eq!(m.get(&["UK".into()]), Some(50.0));
    }

    #[test]
    fn numeric_pairs_for_1d() {
        let mut m = Marginal::new(vec!["x".into()]);
        m.add(vec![Value::Int(1)], 2.0);
        m.add(vec![Value::Float(2.5)], 3.0);
        let mut pairs = m.to_numeric_pairs().unwrap();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(pairs, vec![(1.0, 2.0), (2.5, 3.0)]);
        let m2 = Marginal::new(vec!["a".into(), "b".into()]);
        assert!(m2.to_numeric_pairs().is_none());
    }
}
