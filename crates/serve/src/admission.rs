//! Admission control: a permit pool that bounds the engine's total
//! worker threads across *all* connections.
//!
//! PR 2 established the one-thread-budget discipline inside a process:
//! the morsel driver and the OPEN replicate loop share one pool's worth
//! of threads instead of multiplying. The server extends that across
//! the network boundary. Every query acquires worker permits from a
//! [`PermitPool`] sized to the budget before it executes, and runs with
//! its parallelism capped to the permits it got — so the sum of live
//! worker threads never exceeds the budget, no matter how many clients
//! connect.
//!
//! Under contention the pool hands out *fewer* permits per query (down
//! to one) rather than serializing queries: the fair share is
//! `budget / active-queries`, so many small queries run concurrently
//! single-threaded instead of queueing behind one wide query. Because
//! the engine's results are bit-identical at every thread count (the
//! core determinism invariant), admission control can never change an
//! answer — only latency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared pool of worker-thread permits (see the module docs).
pub struct PermitPool {
    budget: usize,
    state: Mutex<PoolState>,
    cv: Condvar,
    peak: AtomicUsize,
}

struct PoolState {
    available: usize,
    /// Queries currently holding or waiting for permits; the fair-share
    /// divisor.
    contenders: usize,
}

/// Worker permits held by one executing query; released on drop (also
/// on panic/error paths, so permits cannot leak).
pub struct Permit {
    pool: Arc<PermitPool>,
    n: usize,
}

impl Permit {
    /// How many worker threads this query may use (≥ 1).
    pub fn threads(&self) -> usize {
        self.n
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().expect("permit pool poisoned");
        st.available += self.n;
        st.contenders -= 1;
        drop(st);
        self.pool.cv.notify_all();
    }
}

impl PermitPool {
    /// A pool of `budget` worker permits (minimum 1).
    pub fn new(budget: usize) -> Arc<PermitPool> {
        let budget = budget.max(1);
        Arc::new(PermitPool {
            budget,
            state: Mutex::new(PoolState {
                available: budget,
                contenders: 0,
            }),
            cv: Condvar::new(),
            peak: AtomicUsize::new(0),
        })
    }

    /// The total worker-thread budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Block until at least one permit is free, then take up to
    /// `wanted`, further capped to the fair share
    /// `budget / active-queries` so concurrent queries each make
    /// progress. Always returns at least one permit.
    pub fn acquire(self: &Arc<Self>, wanted: usize) -> Permit {
        let wanted = wanted.max(1);
        let mut st = self.state.lock().expect("permit pool poisoned");
        st.contenders += 1;
        while st.available == 0 {
            st = self.cv.wait(st).expect("permit pool poisoned");
        }
        let fair = (self.budget / st.contenders.clamp(1, self.budget)).max(1);
        let n = wanted.min(fair).min(st.available);
        st.available -= n;
        let in_use = self.budget - st.available;
        drop(st);
        self.peak.fetch_max(in_use, Ordering::Relaxed);
        Permit {
            pool: Arc::clone(self),
            n,
        }
    }

    /// Permits currently held by executing queries.
    pub fn in_use(&self) -> usize {
        self.budget - self.state.lock().expect("permit pool poisoned").available
    }

    /// The highest number of permits ever simultaneously held.
    pub fn peak_in_use(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn single_query_gets_full_budget() {
        let pool = PermitPool::new(8);
        let p = pool.acquire(8);
        assert_eq!(p.threads(), 8);
        assert_eq!(pool.in_use(), 8);
        drop(p);
        assert_eq!(pool.in_use(), 0);
        // Wanting fewer takes fewer.
        assert_eq!(pool.acquire(3).threads(), 3);
    }

    #[test]
    fn total_permits_never_exceed_budget() {
        let pool = PermitPool::new(4);
        let threads: Vec<_> = (0..32)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let p = pool.acquire(8);
                        assert!(p.threads() >= 1);
                        assert!(pool.in_use() <= 4);
                        std::thread::sleep(Duration::from_micros(50));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.in_use(), 0);
        assert!(pool.peak_in_use() <= 4);
    }

    #[test]
    fn contention_shrinks_the_fair_share() {
        let pool = PermitPool::new(4);
        // One holder with the whole budget; a contender arriving while it
        // runs gets a reduced share once permits free up.
        let first = pool.acquire(4);
        assert_eq!(first.threads(), 4);
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.acquire(4).threads())
        };
        // Give the waiter time to register as a contender, then release.
        std::thread::sleep(Duration::from_millis(20));
        drop(first);
        // Fair share with 1 remaining contender is the full budget again;
        // the point is it got *some* permits without deadlock.
        let got = waiter.join().unwrap();
        assert!((1..=4).contains(&got));
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn permits_release_on_panic() {
        let pool = PermitPool::new(2);
        let pool2 = Arc::clone(&pool);
        let res = std::thread::spawn(move || {
            let _p = pool2.acquire(2);
            panic!("query died");
        })
        .join();
        assert!(res.is_err());
        assert_eq!(pool.in_use(), 0);
    }
}
