//! `mosaic` — an interactive SQL shell for the Mosaic open-world database.
//!
//! ```text
//! $ cargo run --release -p mosaic-serve --bin mosaic
//! mosaic> CREATE GLOBAL POPULATION People (city TEXT);
//! ok
//! mosaic> SELECT SEMI-OPEN city, COUNT(*) FROM People GROUP BY city;
//! ...
//! ```
//!
//! Statements may span lines; they execute at each `;`. Multi-statement
//! input runs statement by statement: an error reports *which* statement
//! failed (1-based index plus its text) and stops the rest of the chunk.
//!
//! Meta-commands (leading `.` or `\`):
//! `.help`, `.quit`, `.notes on|off` (execution diagnostics),
//! `.optimizer on|off` (session override of the logical-plan optimizer;
//! `\explain` then shows the optimized pipeline with the fired rules),
//! `.cache on|off|stats|clear` (the epoch-invalidated result cache:
//! per-session gate, engine-wide counters, engine-wide clear),
//! `.load <csv> <table>` (ingest a CSV file as an auxiliary table),
//! `.serve <addr>` (expose this shell's engine over TCP in the
//! background — the wire protocol of `mosaic-serve`),
//! `\prepare <name> <select>` (parse/bind/plan once, keep under `name`),
//! `\exec <name> [v1, v2, …]` (run a prepared statement with `?` values),
//! `\explain <select>` (shorthand for the `EXPLAIN` statement).
//!
//! Flags: `--batch` (no prompts), `--threads N` (session worker-thread
//! cap for the morsel-driven executor; overrides `MOSAIC_PARALLELISM`;
//! never changes results), `--partitions N` (radix partition count for
//! the parallel aggregate merge and the hash-join build; overrides
//! `MOSAIC_AGG_PARTITIONS`; `.partitions N` changes it mid-session;
//! never changes results), `--result-cache <MB>|off` (capacity of the
//! engine's epoch-invalidated result cache; overrides
//! `MOSAIC_RESULT_CACHE`; never changes results — cached results are
//! bit-identical by the determinism contract), `--serve <addr>` (skip
//! the shell entirely and run the TCP server in the foreground;
//! `--threads` then sets the shared worker budget every connection
//! draws from).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

use mosaic_core::{
    eval_scalar, EngineOptions, MosaicEngine, Prepared, QueryResult, Session, Value,
};
use mosaic_serve::{ServeConfig, Server, ServerHandle};
use mosaic_sql::parse_spanned;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine_options = EngineOptions::default();
    if let Some(i) = args.iter().position(|a| a == "--result-cache") {
        match args.get(i + 1).map(String::as_str) {
            Some("off") => engine_options = engine_options.with_result_cache(0),
            Some(v) if v.parse::<usize>().is_ok() => {
                engine_options =
                    engine_options.with_result_cache(v.parse().expect("checked above"));
            }
            _ => {
                eprintln!("error: --result-cache requires a capacity in MB, or 'off'");
                std::process::exit(2);
            }
        }
    }
    let engine = Arc::new(MosaicEngine::with_options(engine_options));
    let mut session = engine.session();
    let interactive = !args.iter().any(|a| a == "--batch");
    let mut threads: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => {
                threads = Some(n);
                session = session.with_parallelism(n);
            }
            _ => {
                eprintln!("error: --threads requires a positive integer");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--partitions") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => {
                session = session.with_agg_partitions(n);
            }
            _ => {
                eprintln!("error: --partitions requires a positive integer");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--serve") {
        // Server mode: no shell, just the TCP frontend on this engine.
        // The `--threads` cap becomes the shared worker budget that
        // admission control divides across all connections.
        let addr = match args.get(i + 1) {
            Some(a) if !a.starts_with("--") => a.clone(),
            _ => {
                eprintln!("error: --serve requires an address (e.g. --serve 127.0.0.1:7878)");
                std::process::exit(2);
            }
        };
        let mut config = ServeConfig::default();
        if let Some(n) = threads {
            config = config.with_worker_budget(n);
        }
        let server = match Server::bind(Arc::clone(&engine), addr.as_str(), config) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "mosaic-serve listening on {} (worker budget {})",
            server.local_addr(),
            server.handle().worker_budget()
        );
        server.serve();
        return;
    }
    let mut shell = Shell {
        session,
        prepared: HashMap::new(),
        show_notes: true,
        servers: Vec::new(),
    };
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    if interactive {
        eprintln!("Mosaic — a sample-based database for open-world query processing");
        eprintln!("type .help for meta-commands; statements end with ';'");
    }
    loop {
        if interactive && buffer.is_empty() {
            eprint!("mosaic> ");
        } else if interactive {
            eprint!("   ...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.starts_with('\\')) {
            if !shell.meta_command(trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        if sql.trim().is_empty() {
            continue;
        }
        shell.run_script(&sql);
    }
}

struct Shell {
    session: Session,
    prepared: HashMap<String, Prepared>,
    show_notes: bool,
    /// Background servers started with `.serve` (kept so their metrics
    /// stay reachable; connections drain when the process exits).
    servers: Vec<ServerHandle>,
}

impl Shell {
    /// Execute a `;`-separated chunk statement by statement, so an error
    /// names the statement that failed instead of swallowing the rest of
    /// the script. Stops at the first failure (later statements may
    /// depend on the failed one).
    fn run_script(&mut self, sql: &str) {
        let spanned = match parse_spanned(sql) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return;
            }
        };
        let total = spanned.len();
        let mut last: Option<QueryResult> = None;
        for (i, (stmt, span)) in spanned.into_iter().enumerate() {
            match self.session.execute_parsed(stmt) {
                Ok(r) => {
                    if let Some(r) = r {
                        last = Some(r);
                    }
                }
                Err(e) => {
                    if total > 1 {
                        eprintln!(
                            "error in statement {} of {total} ({}): {e}",
                            i + 1,
                            snippet(&sql[span])
                        );
                    } else {
                        eprintln!("error: {e}");
                    }
                    return;
                }
            }
        }
        match last {
            Some(r) => self.print_result(&r),
            None => println!("ok"),
        }
    }

    fn print_result(&self, result: &QueryResult) {
        if result.table.num_columns() > 0 {
            print!("{}", result.table);
        } else {
            println!("ok");
        }
        if self.show_notes {
            for note in &result.notes {
                eprintln!("-- {note}");
            }
        }
    }

    /// Handle one meta-command line; returns `false` to quit the shell.
    fn meta_command(&mut self, line: &str) -> bool {
        let body = &line[1..];
        let (cmd, rest) = match body.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (body, ""),
        };
        match cmd {
            "quit" | "exit" => return false,
            "help" => {
                println!(
                    ".help                      this message\n\
                     .quit                      exit\n\
                     .notes on|off              toggle execution diagnostics\n\
                     .optimizer on|off          toggle the logical plan optimizer (this session)\n\
                     .partitions N              radix partitions for aggregate merge + join build\n\
                     .cache on|off|stats|clear  result cache: session gate, stats, engine clear\n\
                     .tables                    list registered relations with their kinds\n\
                     .schema <name>             show a relation's columns with types\n\
                     .load <csv> <table>        ingest a CSV file as an auxiliary table\n\
                     .serve <addr>              expose this engine over TCP in the background\n\
                                                (or run `mosaic --serve <addr>` as a server)\n\
                     \\prepare <name> <select>   parse+bind+plan once, keep under <name>\n\
                     \\exec <name> [v1, v2, …]   run a prepared statement with ? values\n\
                     \\explain <select>          shorthand for EXPLAIN <select>\n\
                     SQL: CREATE TABLE / [GLOBAL] POPULATION / SAMPLE / METADATA,\n\
                          INSERT, DROP, EXPLAIN,\n\
                          SELECT [CLOSED|SEMI-OPEN|OPEN] ... [FROM a [AS x] JOIN b ON x.k = b.k]\n\
                          (meta-commands accept either a '.' or a '\\' prefix)"
                );
            }
            "notes" => {
                self.show_notes = rest != "off";
                println!("notes {}", if self.show_notes { "on" } else { "off" });
            }
            "tables" => {
                let cat = self.session.engine().catalog();
                let rels = cat.relations();
                if rels.is_empty() {
                    println!("(no relations registered)");
                }
                for (name, kind) in rels {
                    println!("{name:<24} {kind}");
                }
            }
            "schema" => {
                if rest.is_empty() {
                    eprintln!("usage: .schema <table|population|sample>");
                    return true;
                }
                self.show_schema(rest);
            }
            "optimizer" => {
                // Session-level override of the rule-based logical
                // optimizer. Results are bit-identical either way;
                // statements prepared earlier keep their cached plans.
                let on = match rest {
                    "on" => true,
                    "off" => false,
                    _ => {
                        eprintln!("usage: .optimizer on|off");
                        return true;
                    }
                };
                self.session = self.session.clone().with_optimizer(on);
                println!("optimizer {}", if on { "on" } else { "off" });
            }
            "cache" => {
                // The shared result/plan cache: a per-session gate
                // (on|off), engine-wide statistics, and an engine-wide
                // clear. Epoch invalidation keeps entries correct
                // automatically — `clear` only releases memory.
                match rest {
                    "on" | "off" => {
                        let on = rest == "on";
                        self.session = self.session.clone().with_result_cache(on);
                        println!("result cache {}", if on { "on" } else { "off" });
                    }
                    "clear" => {
                        self.session.engine().clear_caches();
                        println!("caches cleared");
                    }
                    "stats" | "" => {
                        let s = self.session.engine().cache_stats();
                        println!(
                            "result cache: {} entr{} / {} byte(s) of {} capacity",
                            s.entries,
                            if s.entries == 1 { "y" } else { "ies" },
                            s.bytes,
                            s.capacity_bytes
                        );
                        println!(
                            "  hits {} / misses {} / insertions {} / evictions {} / \
                             invalidations {}",
                            s.hits, s.misses, s.insertions, s.evictions, s.invalidations
                        );
                        println!(
                            "plan cache: hits {} / misses {}",
                            s.plan_hits, s.plan_misses
                        );
                    }
                    _ => eprintln!("usage: .cache on|off|stats|clear"),
                }
            }
            "partitions" => {
                // Radix partition count for the parallel aggregate merge
                // and the hash-join build. Results are bit-identical at
                // every setting; statements prepared earlier keep their
                // cached plans but pick up the new count at execution.
                match rest.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.session = self.session.clone().with_agg_partitions(n);
                        println!("partitions {n}");
                    }
                    _ => eprintln!("usage: .partitions <positive integer>"),
                }
            }
            "load" => {
                let mut parts = rest.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(path), Some(table)) => self.load_csv(path, table),
                    _ => eprintln!("usage: .load <csv-path> <table-name>"),
                }
            }
            "serve" => {
                // Share *this* shell's engine over TCP: remote sessions
                // and the shell see one catalog. The session's thread
                // cap (if set) becomes the shared worker budget.
                if rest.is_empty() {
                    eprintln!("usage: .serve <addr>  (e.g. .serve 127.0.0.1:7878)");
                    return true;
                }
                let mut config = ServeConfig::default();
                if let Some(n) = self.session.overrides().parallelism {
                    config = config.with_worker_budget(n);
                }
                match Server::bind(Arc::clone(self.session.engine()), rest, config) {
                    Ok(server) => {
                        let (handle, _join) = server.spawn();
                        println!(
                            "serving on {} (worker budget {})",
                            handle.addr(),
                            handle.worker_budget()
                        );
                        self.servers.push(handle);
                    }
                    Err(e) => eprintln!("error: cannot bind {rest}: {e}"),
                }
            }
            "prepare" => {
                let (name, stmt_sql) = match rest.split_once(char::is_whitespace) {
                    Some((n, s)) if !s.trim().is_empty() => (n, s.trim()),
                    _ => {
                        eprintln!("usage: \\prepare <name> <select-statement>");
                        return true;
                    }
                };
                match self.session.prepare(stmt_sql.trim_end_matches(';')) {
                    Ok(p) => {
                        println!(
                            "prepared {name}: {} parameter(s) — run with \\exec {name} [values]",
                            p.param_count()
                        );
                        self.prepared.insert(name.to_string(), p);
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            "exec" => {
                let (name, args) = match rest.split_once(char::is_whitespace) {
                    Some((n, a)) => (n, a.trim()),
                    None => (rest, ""),
                };
                if name.is_empty() {
                    eprintln!("usage: \\exec <name> [v1, v2, …]");
                    return true;
                }
                let Some(p) = self.prepared.get(name) else {
                    eprintln!("error: no prepared statement named {name} (see \\prepare)");
                    return true;
                };
                match parse_params(args) {
                    Ok(params) => match self.session.execute_prepared(p, &params) {
                        Ok(r) => self.print_result(&r),
                        Err(e) => eprintln!("error: {e}"),
                    },
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            "explain" => {
                if rest.is_empty() {
                    eprintln!("usage: \\explain <select-statement>");
                    return true;
                }
                self.run_script(&format!("EXPLAIN {}", rest.trim_end_matches(';')));
            }
            _ => eprintln!("unknown meta-command (try .help)"),
        }
        true
    }

    /// Print one relation's columns with their types (`.schema <name>`).
    fn show_schema(&self, name: &str) {
        let cat = self.session.engine().catalog();
        let print_fields = |schema: &mosaic_core::Schema| {
            for f in schema.fields() {
                println!(
                    "  {:<20} {}{}",
                    f.name,
                    f.data_type,
                    if f.nullable { "" } else { " NOT NULL" }
                );
            }
        };
        if let Some(t) = cat.aux(name) {
            println!("table {name} ({} rows)", t.num_rows());
            print_fields(t.schema());
        } else if let Some(s) = cat.sample(name) {
            println!(
                "sample {} over population {} ({} rows)",
                s.name,
                s.population,
                s.len()
            );
            print_fields(s.data.schema());
            println!("  {:<20} FLOAT (engine-managed weight)", "weight");
        } else if let Some(p) = cat.population(name) {
            println!(
                "population {}{}",
                p.name,
                if p.global { " (global)" } else { "" }
            );
            print_fields(&p.schema);
        } else {
            let names = cat.relation_names();
            if names.is_empty() {
                eprintln!("error: unknown relation {name} (the catalog has no relations yet)");
            } else {
                eprintln!(
                    "error: unknown relation {name}; available: {}",
                    names.join(", ")
                );
            }
        }
    }

    fn load_csv(&mut self, path: &str, table: &str) {
        match mosaic_storage::csv::read_csv_path(path) {
            Ok(t) => {
                let rows = t.num_rows();
                // Register directly through the engine's bulk path (no
                // SQL INSERT round-trip per row).
                match self.session.engine().register_table(table, t) {
                    Ok(()) => println!("loaded {rows} rows into {table}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Parse a comma-separated list of literal expressions into parameter
/// values (e.g. `120, 'WN, DL', 1.5`). Splits at *top-level* comma
/// tokens (lexing first), so string values containing commas work.
fn parse_params(args: &str) -> Result<Vec<Value>, String> {
    if args.trim().is_empty() {
        return Ok(Vec::new());
    }
    use mosaic_sql::TokenKind;
    let tokens = mosaic_sql::tokenize(args).map_err(|e| e.to_string())?;
    let mut chunks: Vec<&str> = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for t in &tokens {
        match t.kind {
            TokenKind::LParen | TokenKind::LBracket => depth += 1,
            TokenKind::RParen | TokenKind::RBracket => depth = depth.saturating_sub(1),
            TokenKind::Comma if depth == 0 => {
                chunks.push(&args[start..t.offset]);
                start = t.offset + 1;
            }
            _ => {}
        }
    }
    chunks.push(&args[start..]);
    chunks
        .into_iter()
        .map(|chunk| {
            let expr = mosaic_sql::parse_expr(chunk.trim()).map_err(|e| e.to_string())?;
            eval_scalar(&expr).map_err(|e| e.to_string())
        })
        .collect()
}

/// Trim a statement's text to one error-message-sized line.
fn snippet(sql: &str) -> String {
    let flat = sql.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.chars().count() > 60 {
        let head: String = flat.chars().take(59).collect();
        format!("{head}…")
    } else {
        flat
    }
}
