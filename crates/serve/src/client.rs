//! A small blocking client for the Mosaic wire protocol.
//!
//! One [`Client`] owns one connection (and therefore one server-side
//! session). The protocol is strictly request/response per connection,
//! so the client API is synchronous: send a request, read frames until
//! the terminal `Done` / `PrepareOk` / `OptionOk` / `Error`. Result
//! tables are rebuilt from the `Schema` + `RowBatch` stream — values
//! travel as tagged scalars with floats as raw bit patterns, so the
//! rebuilt [`Table`] is **bit-identical** to the server's in-process
//! result.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mosaic_sql::Visibility;
use mosaic_storage::{Field, Schema, Table, TableBuilder, Value};

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response, WireError};

/// A typed client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server broke the protocol (unexpected or malformed frame).
    Protocol(String),
    /// The server answered with an error frame; the stable code,
    /// failing-statement position, and message are preserved.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge(n) => {
                ClientError::Protocol(format!("server sent an oversized frame ({n} bytes)"))
            }
        }
    }
}

impl ClientError {
    /// The server-side wire error, if that is what this is.
    pub fn as_server(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

/// A query result received over the wire.
#[derive(Debug, Clone)]
pub struct RemoteResult {
    /// Result rows, rebuilt bit-identical to the in-process table.
    pub table: Table,
    /// Visibility that produced the result (population queries).
    pub visibility: Option<Visibility>,
    /// Human-readable execution notes.
    pub notes: Vec<String>,
}

/// A blocking connection to a Mosaic server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    banner: String,
    version: u16,
}

impl Client {
    /// Connect and read the server's `Hello` frame.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            banner: String::new(),
            version: 0,
        };
        match client.read_response()? {
            Response::Hello { version, banner } => {
                client.version = version;
                client.banner = banner;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// The server's banner text.
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// The server's protocol version.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Execute a `;`-separated SQL script; returns the last SELECT's
    /// result (or an empty result).
    pub fn query(&mut self, sql: &str) -> Result<RemoteResult, ClientError> {
        self.send(&Request::Query {
            sql: sql.to_string(),
        })?;
        self.read_result()
    }

    /// Create (or replace) a server-side named prepared statement;
    /// returns its `?`-parameter count.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<u32, ClientError> {
        self.send(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        match self.read_response()? {
            Response::PrepareOk { param_count, .. } => Ok(param_count),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected PrepareOk, got {other:?}"
            ))),
        }
    }

    /// Execute a named prepared statement with positional parameters.
    pub fn execute_prepared(
        &mut self,
        name: &str,
        params: &[Value],
    ) -> Result<RemoteResult, ClientError> {
        self.send(&Request::ExecutePrepared {
            name: name.to_string(),
            params: params.to_vec(),
        })?;
        self.read_result()
    }

    /// Set a per-connection session option (`visibility`, `seed`,
    /// `threads`, `partitions`, `optimizer`).
    pub fn set_option(&mut self, key: &str, value: &str) -> Result<(), ClientError> {
        self.send(&Request::SetOption {
            key: key.to_string(),
            value: value.to_string(),
        })?;
        match self.read_response()? {
            Response::OptionOk { .. } => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected OptionOk, got {other:?}"
            ))),
        }
    }

    /// Fetch the engine's result/plan cache statistics as a
    /// `(stat TEXT, value INT)` table (see
    /// [`CacheStats`](mosaic_core::CacheStats) for the row meanings).
    pub fn cache_stats(&mut self) -> Result<RemoteResult, ClientError> {
        self.send(&Request::CacheStats)?;
        self.read_result()
    }

    /// Close the connection cleanly.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send(&Request::Close)?;
        Ok(())
    }

    /// Send one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let (ty, payload) = req.encode();
        write_frame(&mut self.writer, ty, &payload)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Read one response frame (protocol-level; most callers want
    /// [`Client::query`] and friends).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let (ty, payload) = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Response::decode(ty, &payload)
            .map_err(|e| ClientError::Protocol(format!("undecodable server frame: {e}")))
    }

    /// Read a `Schema` → `RowBatch`* → `Done` stream into a
    /// [`RemoteResult`].
    fn read_result(&mut self) -> Result<RemoteResult, ClientError> {
        let fields = match self.read_response()? {
            Response::Schema { fields } => fields,
            Response::Error(e) => return Err(ClientError::Server(e)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Schema, got {other:?}"
                )))
            }
        };
        let schema = Schema::new(
            fields
                .iter()
                .map(|f| {
                    if f.nullable {
                        Field::new(f.name.clone(), f.data_type)
                    } else {
                        Field::required(f.name.clone(), f.data_type)
                    }
                })
                .collect(),
        );
        let mut builder = TableBuilder::new(schema);
        loop {
            match self.read_response()? {
                Response::RowBatch { rows } => {
                    for row in rows {
                        if row.len() != fields.len() {
                            return Err(ClientError::Protocol(format!(
                                "row with {} values in a {}-column result",
                                row.len(),
                                fields.len()
                            )));
                        }
                        builder.push_row(row).map_err(|e| {
                            ClientError::Protocol(format!("row does not fit schema: {e}"))
                        })?;
                    }
                }
                Response::Done { visibility, notes } => {
                    return Ok(RemoteResult {
                        table: builder.finish(),
                        visibility,
                        notes,
                    });
                }
                Response::Error(e) => return Err(ClientError::Server(e)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected RowBatch/Done, got {other:?}"
                    )))
                }
            }
        }
    }
}
