//! # mosaic-serve
//!
//! The network frontend of the Mosaic engine: a multi-client TCP
//! server speaking a small length-prefixed binary protocol, with one
//! engine [`Session`](mosaic_core::Session) per connection,
//! server-side **named prepared statements**, per-connection options
//! (`SetOption`: visibility, seed, thread cap, merge partitions,
//! optimizer), and **admission control** — a worker-permit pool that
//! extends PR 2's one-thread-budget discipline across the network
//! boundary, so any number of clients share one bounded set of engine
//! worker threads.
//!
//! The pieces:
//!
//! * [`protocol`] — the frame codec ([`Request`] / [`Response`]),
//!   stable numeric [error codes](protocol::codes), and the
//!   [`error_code`] mapping from
//!   [`MosaicError`](mosaic_core::MosaicError) variants,
//! * [`admission`] — the [`PermitPool`] bounding total worker threads,
//! * [`server`] — the bounded acceptor and thread-per-connection
//!   [`Server`],
//! * [`client`] — a blocking [`Client`] used by the integration tests
//!   and the `loadgen` load generator.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use mosaic_core::MosaicEngine;
//! use mosaic_serve::{Client, ServeConfig, Server};
//!
//! let engine = Arc::new(MosaicEngine::new());
//! engine.session().execute(
//!     "CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2), (3);",
//! ).unwrap();
//! let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let (handle, _join) = server.spawn();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let result = client.query("SELECT COUNT(*) FROM t WHERE x >= 2").unwrap();
//! assert_eq!(result.table.value(0, 0), 2i64.into());
//! // Named prepared statements live server-side, per connection.
//! client.prepare("above", "SELECT COUNT(*) FROM t WHERE x >= ?").unwrap();
//! let r = client.execute_prepared("above", &[3i64.into()]).unwrap();
//! assert_eq!(r.table.value(0, 0), 1i64.into());
//! client.close().unwrap();
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{Permit, PermitPool};
pub use client::{Client, ClientError, RemoteResult};
pub use protocol::{
    error_code, DecodeError, FrameError, Request, Response, WireError, WireField, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ServerHandle};
