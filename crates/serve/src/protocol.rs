//! The Mosaic wire protocol: length-prefixed binary frames.
//!
//! # Frame layout
//!
//! Every message — in either direction — is one *frame*:
//!
//! ```text
//! ┌──────────┬────────────────┬───────────────────┐
//! │ type: u8 │ length: u32 LE │ payload: `length` │
//! └──────────┴────────────────┴───────────────────┘
//! ```
//!
//! The payload length is capped at [`MAX_FRAME`]; a frame claiming more
//! is rejected before any payload is read (the connection closes after
//! an error frame, since the stream can no longer be resynchronized).
//! All integers are little-endian. Strings are `u32` byte length +
//! UTF-8 bytes. Values are tagged scalars (see [`Value`] encoding
//! below) — floats travel as raw bit patterns, so results survive the
//! wire **bit-identical**, NaN payloads and `-0.0` included.
//!
//! # Messages
//!
//! Client → server ([`Request`]): `Query` (a `;`-separated script),
//! `Prepare` (a *named* server-side prepared statement), `ExecutePrepared`
//! (name + positional parameter values), `SetOption` (per-connection
//! session settings), `Close`.
//!
//! Server → client ([`Response`]): `Hello` (once, on connect), then per
//! request either `PrepareOk` / `OptionOk`, or a result stream
//! `Schema`, `RowBatch`*, `Done` — or a single terminal [`WireError`]
//! frame carrying a stable numeric [error code](codes), and for
//! multi-statement scripts the 0-based index and text of the statement
//! that failed.
//!
//! Decoding never panics on malformed input: every accessor is
//! bounds-checked and returns [`DecodeError`], which the server answers
//! with a clean `codes::PROTOCOL` error frame (the framing itself is
//! still intact, so the connection stays usable).

use std::io::{self, Read, Write};

use mosaic_core::MosaicError;
use mosaic_sql::Visibility;
use mosaic_storage::{DataType, Value};

/// Protocol version carried by the server's `Hello` frame.
pub const PROTOCOL_VERSION: u16 = 1;

/// Maximum frame payload size (16 MiB). Frames claiming more are
/// rejected without reading the payload.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Rows per `RowBatch` frame when the server streams a result table.
pub const ROWS_PER_BATCH: usize = 4096;

/// Stable numeric wire error codes.
///
/// Codes 1–99 map the engine's [`MosaicError`] variants one-to-one (see
/// [`error_code`]); codes 100+ are protocol-level conditions the engine
/// never produces. The numbers are part of the wire contract: clients
/// match on them, so they never change meaning.
pub mod codes {
    /// SQL syntax error ([`mosaic_core::MosaicError::Parse`]).
    pub const PARSE: u16 = 1;
    /// Storage-layer error ([`mosaic_core::MosaicError::Storage`]).
    pub const STORAGE: u16 = 2;
    /// Catalog violation ([`mosaic_core::MosaicError::Catalog`]).
    pub const CATALOG: u16 = 3;
    /// Unsupported statement ([`mosaic_core::MosaicError::Unsupported`]).
    pub const UNSUPPORTED: u16 = 4;
    /// Execution error ([`mosaic_core::MosaicError::Execution`]).
    pub const EXECUTION: u16 = 5;
    /// Bind failure ([`mosaic_core::MosaicError::Bind`]).
    pub const BIND: u16 = 6;
    /// Positional-parameter mismatch ([`mosaic_core::MosaicError::Param`]).
    pub const PARAM: u16 = 7;
    /// M-SWG failure ([`mosaic_core::MosaicError::Swg`]).
    pub const SWG: u16 = 8;
    /// Bayesian-network failure ([`mosaic_core::MosaicError::Bn`]).
    pub const BN: u16 = 9;
    /// Malformed frame payload or unknown message type; the connection
    /// stays usable (framing is intact).
    pub const PROTOCOL: u16 = 100;
    /// Frame payload length exceeds [`super::MAX_FRAME`]; the server
    /// closes the connection after this error (the stream cannot be
    /// resynchronized).
    pub const FRAME_TOO_LARGE: u16 = 101;
    /// `ExecutePrepared` named a statement this connection never
    /// prepared.
    pub const UNKNOWN_PREPARED: u16 = 102;
    /// `SetOption` named an unknown key or an unparsable value.
    pub const UNKNOWN_OPTION: u16 = 103;
    /// The server is at its connection cap; sent once, then the
    /// connection closes.
    pub const SERVER_BUSY: u16 = 104;
}

/// The stable wire code of an engine error (codes 1–9; see [`codes`]).
pub fn error_code(e: &MosaicError) -> u16 {
    match e {
        MosaicError::Parse(_) => codes::PARSE,
        MosaicError::Storage(_) => codes::STORAGE,
        MosaicError::Catalog(_) => codes::CATALOG,
        MosaicError::Unsupported(_) => codes::UNSUPPORTED,
        MosaicError::Execution(_) => codes::EXECUTION,
        MosaicError::Bind(_) => codes::BIND,
        MosaicError::Param(_) => codes::PARAM,
        MosaicError::Swg(_) => codes::SWG,
        MosaicError::Bn(_) => codes::BN,
    }
}

// Frame type bytes. Client requests use the low range, server responses
// set the high bit.
const T_QUERY: u8 = 0x01;
const T_PREPARE: u8 = 0x02;
const T_EXECUTE: u8 = 0x03;
const T_SET_OPTION: u8 = 0x04;
const T_CLOSE: u8 = 0x05;
const T_CACHE_STATS: u8 = 0x06;
const T_HELLO: u8 = 0x81;
const T_SCHEMA: u8 = 0x82;
const T_ROW_BATCH: u8 = 0x83;
const T_DONE: u8 = 0x84;
const T_ERROR: u8 = 0x85;
const T_PREPARE_OK: u8 = 0x86;
const T_OPTION_OK: u8 = 0x87;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a `;`-separated SQL script; the server streams the last
    /// SELECT's result (or an empty result).
    Query {
        /// The SQL text.
        sql: String,
    },
    /// Create (or replace) a server-side named prepared statement.
    Prepare {
        /// The name `ExecutePrepared` refers back to.
        name: String,
        /// A single SELECT statement, `?` placeholders allowed.
        sql: String,
    },
    /// Execute a named prepared statement with positional parameters.
    ExecutePrepared {
        /// The name given at `Prepare` time.
        name: String,
        /// One value per `?`, in lexical order.
        params: Vec<Value>,
    },
    /// Set a per-connection session option (`visibility`, `seed`,
    /// `threads`, `partitions`, `optimizer`).
    SetOption {
        /// Option key (case-insensitive).
        key: String,
        /// Option value, as text.
        value: String,
    },
    /// Ask for the engine's result/plan cache statistics. The server
    /// answers with an ordinary result stream (`Schema` → `RowBatch` →
    /// `Done`) of a two-column `(stat TEXT, value INT)` table, so
    /// clients reuse their result machinery.
    CacheStats,
    /// Close the connection cleanly.
    Close,
}

/// One column of a result-set [`Response::Schema`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireField {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether the column admits NULLs.
    pub nullable: bool,
}

/// A typed error frame: stable code, optional failing-statement
/// position (multi-statement scripts), and the human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable numeric code (see [`codes`]).
    pub code: u16,
    /// 0-based index of the failing statement within the submitted
    /// script, when the request was a multi-statement `Query`.
    pub statement_index: Option<u32>,
    /// Text of the failing statement (empty when not applicable).
    pub statement_text: String,
    /// Human-readable error message.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[code {}] {}", self.code, self.message)?;
        if let Some(i) = self.statement_index {
            write!(f, " (statement {}: {})", i + 1, self.statement_text)?;
        }
        Ok(())
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Sent once when a connection is accepted.
    Hello {
        /// Protocol version (see [`PROTOCOL_VERSION`]).
        version: u16,
        /// Server banner text.
        banner: String,
    },
    /// Result-set header: the column layout of the batches that follow.
    Schema {
        /// Result columns in order.
        fields: Vec<WireField>,
    },
    /// A batch of result rows (at most [`ROWS_PER_BATCH`]).
    RowBatch {
        /// Row-major values; every row has one value per schema column.
        rows: Vec<Vec<Value>>,
    },
    /// Result-set terminator with execution diagnostics.
    Done {
        /// Visibility that produced the result (population queries).
        visibility: Option<Visibility>,
        /// Human-readable execution notes.
        notes: Vec<String>,
    },
    /// Terminal error for the current request.
    Error(WireError),
    /// A `Prepare` succeeded.
    PrepareOk {
        /// The statement's name.
        name: String,
        /// Number of `?` parameters the statement expects.
        param_count: u32,
    },
    /// A `SetOption` succeeded.
    OptionOk {
        /// The key that was set.
        key: String,
    },
}

/// A malformed frame payload (bounds, UTF-8, unknown tags). Decoding is
/// total: any byte string produces either a message or this error,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Reading a frame failed: transport error, or a length prefix beyond
/// [`MAX_FRAME`].
#[derive(Debug)]
pub enum FrameError {
    /// Transport-level failure (including unexpected mid-frame EOF).
    Io(io::Error),
    /// The header claimed a payload larger than [`MAX_FRAME`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_FRAME} cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: type byte, `u32` LE payload length, payload.
pub fn write_frame(w: &mut impl Write, ty: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&[ty])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame. `Ok(None)` is a clean EOF at a frame boundary;
/// EOF mid-frame (a truncated frame) is an [`FrameError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut ty = [0u8; 1];
    // A clean close between frames shows up as EOF on the first byte.
    match r.read(&mut ty) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((ty[0], payload)))
}

// ---------------------------------------------------------------------
// Payload encoding primitives.

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            // Raw bit pattern: NaN payloads and -0.0 survive the wire,
            // keeping remote results bit-identical to in-process ones.
            buf.push(3);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s);
        }
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

/// Bounds-checked payload cursor; every accessor fails soft.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DecodeError(format!("{n} bytes past payload end")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid UTF-8".into()))
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::Int(self.u64()? as i64)),
            3 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            4 => Ok(Value::Str(self.str()?)),
            t => Err(DecodeError(format!("unknown value tag {t}"))),
        }
    }

    fn data_type(&mut self) -> Result<DataType, DecodeError> {
        match self.u8()? {
            0 => Ok(DataType::Bool),
            1 => Ok(DataType::Int),
            2 => Ok(DataType::Float),
            3 => Ok(DataType::Str),
            t => Err(DecodeError(format!("unknown type tag {t}"))),
        }
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Element-count prefixes are bounds-checked against the payload before
/// any allocation: a count that could not possibly fit is malformed.
fn checked_count(cur: &Cur<'_>, count: u32, min_elem_bytes: usize) -> Result<usize, DecodeError> {
    let remaining = cur.buf.len() - cur.pos;
    let need = (count as usize).saturating_mul(min_elem_bytes);
    if need > remaining {
        return Err(DecodeError(format!(
            "count {count} exceeds remaining payload ({remaining} bytes)"
        )));
    }
    Ok(count as usize)
}

impl Request {
    /// Encode into a (type byte, payload) pair for [`write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        let ty = match self {
            Request::Query { sql } => {
                put_str(&mut buf, sql);
                T_QUERY
            }
            Request::Prepare { name, sql } => {
                put_str(&mut buf, name);
                put_str(&mut buf, sql);
                T_PREPARE
            }
            Request::ExecutePrepared { name, params } => {
                put_str(&mut buf, name);
                buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
                for p in params {
                    put_value(&mut buf, p);
                }
                T_EXECUTE
            }
            Request::SetOption { key, value } => {
                put_str(&mut buf, key);
                put_str(&mut buf, value);
                T_SET_OPTION
            }
            Request::CacheStats => T_CACHE_STATS,
            Request::Close => T_CLOSE,
        };
        (ty, buf)
    }

    /// Decode a frame; total (any input yields `Ok` or [`DecodeError`]).
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Request, DecodeError> {
        let mut cur = Cur::new(payload);
        let req = match ty {
            T_QUERY => Request::Query { sql: cur.str()? },
            T_PREPARE => Request::Prepare {
                name: cur.str()?,
                sql: cur.str()?,
            },
            T_EXECUTE => {
                let name = cur.str()?;
                let count = cur.u32()?;
                let count = checked_count(&cur, count, 1)?;
                let mut params = Vec::with_capacity(count);
                for _ in 0..count {
                    params.push(cur.value()?);
                }
                Request::ExecutePrepared { name, params }
            }
            T_SET_OPTION => Request::SetOption {
                key: cur.str()?,
                value: cur.str()?,
            },
            T_CACHE_STATS => Request::CacheStats,
            T_CLOSE => Request::Close,
            t => return Err(DecodeError(format!("unknown request type 0x{t:02x}"))),
        };
        cur.finish()?;
        Ok(req)
    }
}

fn vis_tag(v: Visibility) -> u8 {
    match v {
        Visibility::Closed => 1,
        Visibility::SemiOpen => 2,
        Visibility::Open => 3,
    }
}

impl Response {
    /// Encode into a (type byte, payload) pair for [`write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        let ty = match self {
            Response::Hello { version, banner } => {
                buf.extend_from_slice(&version.to_le_bytes());
                put_str(&mut buf, banner);
                T_HELLO
            }
            Response::Schema { fields } => {
                buf.extend_from_slice(&(fields.len() as u32).to_le_bytes());
                for f in fields {
                    put_str(&mut buf, &f.name);
                    buf.push(type_tag(f.data_type));
                    buf.push(f.nullable as u8);
                }
                T_SCHEMA
            }
            Response::RowBatch { rows } => {
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
                T_ROW_BATCH
            }
            Response::Done { visibility, notes } => {
                buf.push(visibility.map_or(0, vis_tag));
                buf.extend_from_slice(&(notes.len() as u32).to_le_bytes());
                for n in notes {
                    put_str(&mut buf, n);
                }
                T_DONE
            }
            Response::Error(e) => {
                buf.extend_from_slice(&e.code.to_le_bytes());
                buf.extend_from_slice(&e.statement_index.unwrap_or(u32::MAX).to_le_bytes());
                put_str(&mut buf, &e.statement_text);
                put_str(&mut buf, &e.message);
                T_ERROR
            }
            Response::PrepareOk { name, param_count } => {
                put_str(&mut buf, name);
                buf.extend_from_slice(&param_count.to_le_bytes());
                T_PREPARE_OK
            }
            Response::OptionOk { key } => {
                put_str(&mut buf, key);
                T_OPTION_OK
            }
        };
        (ty, buf)
    }

    /// Decode a frame; total (any input yields `Ok` or [`DecodeError`]).
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Response, DecodeError> {
        let mut cur = Cur::new(payload);
        let resp = match ty {
            T_HELLO => Response::Hello {
                version: cur.u16()?,
                banner: cur.str()?,
            },
            T_SCHEMA => {
                let count = cur.u32()?;
                let count = checked_count(&cur, count, 6)?;
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    fields.push(WireField {
                        name: cur.str()?,
                        data_type: cur.data_type()?,
                        nullable: cur.u8()? != 0,
                    });
                }
                Response::Schema { fields }
            }
            T_ROW_BATCH => {
                let count = cur.u32()?;
                let count = checked_count(&cur, count, 4)?;
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    let ncols = cur.u32()?;
                    let ncols = checked_count(&cur, ncols, 1)?;
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(cur.value()?);
                    }
                    rows.push(row);
                }
                Response::RowBatch { rows }
            }
            T_DONE => {
                let visibility = match cur.u8()? {
                    0 => None,
                    1 => Some(Visibility::Closed),
                    2 => Some(Visibility::SemiOpen),
                    3 => Some(Visibility::Open),
                    t => return Err(DecodeError(format!("unknown visibility tag {t}"))),
                };
                let count = cur.u32()?;
                let count = checked_count(&cur, count, 4)?;
                let mut notes = Vec::with_capacity(count);
                for _ in 0..count {
                    notes.push(cur.str()?);
                }
                Response::Done { visibility, notes }
            }
            T_ERROR => {
                let code = cur.u16()?;
                let idx = cur.u32()?;
                Response::Error(WireError {
                    code,
                    statement_index: (idx != u32::MAX).then_some(idx),
                    statement_text: cur.str()?,
                    message: cur.str()?,
                })
            }
            T_PREPARE_OK => Response::PrepareOk {
                name: cur.str()?,
                param_count: cur.u32()?,
            },
            T_OPTION_OK => Response::OptionOk { key: cur.str()? },
            t => return Err(DecodeError(format!("unknown response type 0x{t:02x}"))),
        };
        cur.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let (ty, payload) = req.encode();
        assert!(payload.len() as u64 <= MAX_FRAME as u64);
        assert_eq!(Request::decode(ty, &payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let (ty, payload) = resp.encode();
        assert_eq!(Response::decode(ty, &payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Query {
            sql: "SELECT 1; SELECT 'héllo, wörld'".into(),
        });
        roundtrip_req(Request::Prepare {
            name: "q".into(),
            sql: "SELECT * FROM t WHERE i > ?".into(),
        });
        roundtrip_req(Request::ExecutePrepared {
            name: "q".into(),
            params: vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-42),
                Value::Float(f64::NAN),
                Value::Str("a,b".into()),
            ],
        });
        roundtrip_req(Request::SetOption {
            key: "visibility".into(),
            value: "closed".into(),
        });
        roundtrip_req(Request::CacheStats);
        roundtrip_req(Request::Close);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Hello {
            version: PROTOCOL_VERSION,
            banner: "mosaic".into(),
        });
        roundtrip_resp(Response::Schema {
            fields: vec![
                WireField {
                    name: "k".into(),
                    data_type: DataType::Str,
                    nullable: true,
                },
                WireField {
                    name: "c".into(),
                    data_type: DataType::Int,
                    nullable: false,
                },
            ],
        });
        roundtrip_resp(Response::RowBatch {
            rows: vec![
                vec![Value::Str("a".into()), Value::Int(1)],
                vec![Value::Null, Value::Float(-0.0)],
            ],
        });
        roundtrip_resp(Response::Done {
            visibility: Some(Visibility::SemiOpen),
            notes: vec!["ipf converged".into()],
        });
        roundtrip_resp(Response::Error(WireError {
            code: codes::BIND,
            statement_index: Some(2),
            statement_text: "SELECT nope".into(),
            message: "bind error: unknown column nope".into(),
        }));
        roundtrip_resp(Response::PrepareOk {
            name: "q".into(),
            param_count: 3,
        });
        roundtrip_resp(Response::OptionOk { key: "seed".into() });
    }

    #[test]
    fn float_bits_survive() {
        // A NaN with a payload and a negative zero: bit-for-bit.
        let odd_nan = f64::from_bits(0x7ff8_0000_dead_beef);
        for v in [Value::Float(odd_nan), Value::Float(-0.0)] {
            let (ty, payload) = Request::ExecutePrepared {
                name: "p".into(),
                params: vec![v.clone()],
            }
            .encode();
            match Request::decode(ty, &payload).unwrap() {
                Request::ExecutePrepared { params, .. } => match (&params[0], &v) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                    _ => panic!("wrong value"),
                },
                _ => panic!("wrong request"),
            }
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_fail_soft() {
        let (ty, payload) = Request::Prepare {
            name: "q".into(),
            sql: "SELECT 1".into(),
        }
        .encode();
        for cut in 0..payload.len() {
            assert!(Request::decode(ty, &payload[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = payload.clone();
        extra.push(0);
        assert!(Request::decode(ty, &extra).is_err());
        // Absurd element counts are rejected before allocating.
        let mut bogus = Vec::new();
        put_str(&mut bogus, "p");
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(T_EXECUTE, &bogus).is_err());
    }

    #[test]
    fn oversized_frames_rejected_before_payload() {
        let mut buf = Vec::new();
        buf.push(T_QUERY);
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let mut r = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut r).unwrap().is_none());
        // Mid-frame EOF is an error, not a silent None.
        let mut r = std::io::Cursor::new(vec![T_QUERY, 10, 0]);
        assert!(read_frame(&mut r).is_err());
    }
}
