//! The TCP server: a bounded acceptor, one thread + one [`Session`] per
//! connection, and permit-gated query execution.
//!
//! No async runtime is vendored, so the server is deliberately
//! thread-per-connection over `std::net`: connection threads spend
//! their life blocked on `read` (cheap), and the expensive resource —
//! engine worker threads — is bounded by the [`PermitPool`] regardless
//! of the connection count. The acceptor itself is bounded too: beyond
//! [`ServeConfig::max_connections`] a new client gets one
//! `SERVER_BUSY` error frame and a close instead of an unbounded
//! thread.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use mosaic_core::{MosaicEngine, Prepared, QueryResult, Session, Visibility};
use mosaic_sql::{parse_spanned, Statement};
use mosaic_storage::Value;

use crate::admission::PermitPool;
use crate::protocol::{
    codes, error_code, read_frame, write_frame, FrameError, Request, Response, WireError,
    WireField, PROTOCOL_VERSION,
};

/// Server configuration.
///
/// `#[non_exhaustive]`: construct via [`ServeConfig::default`] and the
/// `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Connection cap for the bounded acceptor: clients beyond it get a
    /// `SERVER_BUSY` error frame and an immediate close.
    pub max_connections: usize,
    /// Total engine worker-thread budget shared by every connection
    /// (the [`PermitPool`] size). `None` inherits the engine's
    /// configured parallelism.
    pub worker_budget: Option<usize>,
    /// Rows per streamed `RowBatch` frame.
    pub rows_per_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_connections: 1024,
            worker_budget: None,
            rows_per_batch: crate::protocol::ROWS_PER_BATCH,
        }
    }
}

impl ServeConfig {
    /// Set the connection cap (minimum 1).
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    /// Set the shared worker-thread budget (minimum 1).
    pub fn with_worker_budget(mut self, n: usize) -> Self {
        self.worker_budget = Some(n.max(1));
        self
    }

    /// Set the rows streamed per `RowBatch` frame (minimum 1).
    pub fn with_rows_per_batch(mut self, n: usize) -> Self {
        self.rows_per_batch = n.max(1);
        self
    }
}

/// Shared server state: the permit pool plus connection metrics.
struct Shared {
    pool: Arc<PermitPool>,
    max_connections: usize,
    active_connections: AtomicUsize,
    total_connections: AtomicU64,
    rejected_connections: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound (but not yet serving) Mosaic server.
///
/// [`Server::bind`] reserves the address; [`Server::serve`] blocks on
/// the accept loop, and [`Server::spawn`] runs it on a background
/// thread, returning a [`ServerHandle`] for metrics and shutdown.
pub struct Server {
    listener: TcpListener,
    engine: Arc<MosaicEngine>,
    config: ServeConfig,
    shared: Arc<Shared>,
}

/// A handle onto a running server: address, metrics, shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Worker permits currently held by executing queries (0 when the
    /// server is idle — a nonzero value after every client disconnected
    /// would mean a permit leak).
    pub fn permits_in_use(&self) -> usize {
        self.shared.pool.in_use()
    }

    /// The highest number of worker permits ever simultaneously held.
    pub fn permit_peak(&self) -> usize {
        self.shared.pool.peak_in_use()
    }

    /// The shared worker-thread budget.
    pub fn worker_budget(&self) -> usize {
        self.shared.pool.budget()
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::Relaxed)
    }

    /// Connections accepted since the server started.
    pub fn total_connections(&self) -> u64 {
        self.shared.total_connections.load(Ordering::Relaxed)
    }

    /// Connections rejected by the bounded acceptor.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.rejected_connections.load(Ordering::Relaxed)
    }

    /// Ask the accept loop to exit. Open connections drain on their
    /// own when their clients disconnect; no new ones are accepted.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind a server for `engine` on `addr` (use port 0 for an
    /// OS-assigned port; see [`Server::local_addr`]).
    pub fn bind(
        engine: Arc<MosaicEngine>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let budget = config
            .worker_budget
            .unwrap_or_else(|| engine.options().parallelism)
            .max(1);
        let shared = Arc::new(Shared {
            pool: PermitPool::new(budget),
            max_connections: config.max_connections.max(1),
            active_connections: AtomicUsize::new(0),
            total_connections: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            engine,
            config,
            shared,
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// A handle for metrics and shutdown.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run the accept loop on the calling thread until
    /// [`ServerHandle::shutdown`] is called.
    pub fn serve(self) {
        let Server {
            listener,
            engine,
            config,
            shared,
        } = self;
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Frames are small and latency-sensitive; Nagle would add
            // a delayed-ACK round trip to every response.
            stream.set_nodelay(true).ok();
            // Bounded acceptor: at the cap, answer with one BUSY frame
            // and close instead of spawning an unbounded thread.
            let active = shared.active_connections.load(Ordering::Relaxed);
            if active >= shared.max_connections {
                shared.rejected_connections.fetch_add(1, Ordering::Relaxed);
                let mut w = BufWriter::new(&stream);
                let busy = Response::Error(WireError {
                    code: codes::SERVER_BUSY,
                    statement_index: None,
                    statement_text: String::new(),
                    message: format!("server is at its {}-connection cap", shared.max_connections),
                });
                let (ty, payload) = busy.encode();
                let _ = write_frame(&mut w, ty, &payload);
                let _ = w.flush();
                continue;
            }
            shared.active_connections.fetch_add(1, Ordering::Relaxed);
            shared.total_connections.fetch_add(1, Ordering::Relaxed);
            let engine = Arc::clone(&engine);
            let shared2 = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || {
                let _ = Connection::new(engine, &shared2, config).run(stream);
                shared2.active_connections.fetch_sub(1, Ordering::Relaxed);
            });
        }
    }

    /// Run the accept loop on a background thread; returns the handle
    /// and the loop's join handle.
    pub fn spawn(self) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.serve());
        (handle, join)
    }
}

/// Per-connection state: the session (with its per-connection option
/// overrides) and the named prepared statements.
struct Connection {
    session: Session,
    prepared: HashMap<String, Prepared>,
    pool: Arc<PermitPool>,
    rows_per_batch: usize,
}

impl Connection {
    fn new(engine: Arc<MosaicEngine>, shared: &Shared, config: ServeConfig) -> Connection {
        Connection {
            session: engine.session(),
            prepared: HashMap::new(),
            pool: Arc::clone(&shared.pool),
            rows_per_batch: config.rows_per_batch.max(1),
        }
    }

    fn run(mut self, stream: TcpStream) -> io::Result<()> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        send(
            &mut writer,
            &Response::Hello {
                version: PROTOCOL_VERSION,
                banner: "mosaic-serve".into(),
            },
        )?;
        loop {
            let (ty, payload) = match read_frame(&mut reader) {
                Ok(Some(f)) => f,
                // Clean EOF: the client went away between frames.
                Ok(None) => return Ok(()),
                Err(FrameError::TooLarge(n)) => {
                    // The stream cannot be resynchronized (the bogus
                    // length prefix poisons everything after it): one
                    // clean error frame, then close.
                    send(
                        &mut writer,
                        &protocol_error(
                            codes::FRAME_TOO_LARGE,
                            format!(
                                "frame payload of {n} bytes exceeds the {} cap",
                                crate::protocol::MAX_FRAME
                            ),
                        ),
                    )?;
                    return Ok(());
                }
                // Truncated frame / transport error: nothing sane to
                // answer onto.
                Err(FrameError::Io(_)) => return Ok(()),
            };
            let request = match Request::decode(ty, &payload) {
                Ok(r) => r,
                Err(e) => {
                    // The frame was well-delimited, just meaningless:
                    // answer and keep the connection.
                    send(&mut writer, &protocol_error(codes::PROTOCOL, e.to_string()))?;
                    continue;
                }
            };
            match request {
                Request::Close => return Ok(()),
                Request::Query { sql } => self.query(&mut writer, &sql)?,
                Request::Prepare { name, sql } => self.prepare(&mut writer, name, &sql)?,
                Request::ExecutePrepared { name, params } => {
                    self.execute_prepared(&mut writer, &name, &params)?
                }
                Request::SetOption { key, value } => self.set_option(&mut writer, &key, &value)?,
                Request::CacheStats => self.cache_stats(&mut writer)?,
            }
        }
    }

    /// Worker permits for one query: want the session's thread cap
    /// (or the engine default), get what admission control grants.
    fn admit(&self) -> crate::admission::Permit {
        let wanted = self
            .session
            .overrides()
            .parallelism
            .unwrap_or_else(|| self.session.engine().options().parallelism);
        self.pool.acquire(wanted)
    }

    /// Execute a `;`-separated script statement by statement (the PR 3
    /// CLI behavior, now protocol-visible): an error frame names the
    /// failing statement's 0-based index and text.
    fn query(&mut self, w: &mut impl Write, sql: &str) -> io::Result<()> {
        // Zero-parse hot path: if the engine's shared plan cache holds
        // an epoch-valid plan for this exact script text, execute it
        // directly — no parsing, binding, or planning on this request.
        {
            let permit = self.admit();
            let session = self.session.clone().with_parallelism(permit.threads());
            if let Some(result) = session.execute_cached(sql) {
                drop(permit);
                return match result {
                    Ok(r) => self.stream_result(w, &r),
                    Err(e) => send(
                        w,
                        &Response::Error(WireError {
                            code: error_code(&e),
                            statement_index: Some(0),
                            statement_text: sql.trim().to_string(),
                            message: e.to_string(),
                        }),
                    ),
                };
            }
        }
        let spanned = match parse_spanned(sql) {
            Ok(s) => s,
            Err(e) => {
                return send(
                    w,
                    &Response::Error(WireError {
                        code: codes::PARSE,
                        statement_index: None,
                        statement_text: String::new(),
                        message: e.to_string(),
                    }),
                );
            }
        };
        // One admission per script: permits cover all its statements.
        let permit = self.admit();
        let session = self.session.clone().with_parallelism(permit.threads());
        // A single-SELECT script executes through the engine's caches
        // (publishing its plan for the hot path above); scripts with
        // DDL/DML or several statements keep per-statement dispatch for
        // exact error positions.
        if spanned.len() == 1 && matches!(spanned[0].0, Statement::Select(_)) {
            let span = spanned.into_iter().next().expect("one statement").1;
            let result = session.execute(sql);
            drop(permit);
            return match result {
                Ok(r) => self.stream_result(w, &r),
                Err(e) => send(
                    w,
                    &Response::Error(WireError {
                        code: error_code(&e),
                        statement_index: Some(0),
                        statement_text: sql[span].trim().to_string(),
                        message: e.to_string(),
                    }),
                ),
            };
        }
        let mut last: Option<QueryResult> = None;
        for (i, (stmt, span)) in spanned.into_iter().enumerate() {
            match session.execute_parsed(stmt) {
                Ok(r) => {
                    if let Some(r) = r {
                        last = Some(r);
                    }
                }
                Err(e) => {
                    return send(
                        w,
                        &Response::Error(WireError {
                            code: error_code(&e),
                            statement_index: Some(i as u32),
                            statement_text: sql[span].trim().to_string(),
                            message: e.to_string(),
                        }),
                    );
                }
            }
        }
        drop(permit);
        let result = last.unwrap_or_else(|| QueryResult {
            table: mosaic_storage::Table::empty(mosaic_storage::Schema::new(Vec::new())),
            visibility: None,
            notes: Vec::new(),
        });
        self.stream_result(w, &result)
    }

    fn prepare(&mut self, w: &mut impl Write, name: String, sql: &str) -> io::Result<()> {
        match self.session.prepare(sql) {
            Ok(p) => {
                let param_count = p.param_count() as u32;
                self.prepared.insert(name.clone(), p);
                send(w, &Response::PrepareOk { name, param_count })
            }
            Err(e) => send(w, &engine_error(&e)),
        }
    }

    fn execute_prepared(
        &mut self,
        w: &mut impl Write,
        name: &str,
        params: &[Value],
    ) -> io::Result<()> {
        let Some(p) = self.prepared.get(name) else {
            return send(
                w,
                &protocol_error(
                    codes::UNKNOWN_PREPARED,
                    format!("no prepared statement named {name} on this connection"),
                ),
            );
        };
        let permit = self.admit();
        let session = self.session.clone().with_parallelism(permit.threads());
        let result = session.execute_prepared(p, params);
        drop(permit);
        match result {
            Ok(r) => self.stream_result(w, &r),
            Err(e) => send(w, &engine_error(&e)),
        }
    }

    fn set_option(&mut self, w: &mut impl Write, key: &str, value: &str) -> io::Result<()> {
        let lower_key = key.to_ascii_lowercase();
        let lower_val = value.to_ascii_lowercase();
        let session = self.session.clone();
        let updated = match lower_key.as_str() {
            "visibility" => match lower_val.as_str() {
                "closed" => Some(session.with_default_visibility(Visibility::Closed)),
                "semi-open" | "semiopen" => {
                    Some(session.with_default_visibility(Visibility::SemiOpen))
                }
                "open" => Some(session.with_default_visibility(Visibility::Open)),
                _ => None,
            },
            "seed" => value
                .trim()
                .parse::<u64>()
                .ok()
                .map(|s| session.with_seed(s)),
            "threads" | "parallelism" => value
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(|n| session.with_parallelism(n)),
            "partitions" => value
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(|n| session.with_agg_partitions(n)),
            "optimizer" => match lower_val.as_str() {
                "on" | "true" | "1" => Some(session.with_optimizer(true)),
                "off" | "false" | "0" => Some(session.with_optimizer(false)),
                _ => None,
            },
            "result_cache" => match lower_val.as_str() {
                "on" | "true" | "1" => Some(session.with_result_cache(true)),
                "off" | "false" | "0" => Some(session.with_result_cache(false)),
                // Engine-wide: drops every cached result and plan.
                "clear" => {
                    session.engine().clear_caches();
                    Some(session)
                }
                _ => None,
            },
            _ => None,
        };
        match updated {
            Some(s) => {
                self.session = s;
                send(
                    w,
                    &Response::OptionOk {
                        key: lower_key.clone(),
                    },
                )
            }
            None => send(
                w,
                &protocol_error(
                    codes::UNKNOWN_OPTION,
                    format!(
                        "unknown option {key}={value} (known: visibility=closed|semi-open|open, \
                         seed=<u64>, threads=<n>, partitions=<n>, optimizer=on|off, \
                         result_cache=on|off|clear)"
                    ),
                ),
            ),
        }
    }

    /// Answer a `CacheStats` request with a `(stat TEXT, value INT)`
    /// result stream of the engine's result/plan cache counters.
    fn cache_stats(&self, w: &mut impl Write) -> io::Result<()> {
        let s = self.session.engine().cache_stats();
        let stats: [(&str, u64); 10] = [
            ("capacity_bytes", s.capacity_bytes as u64),
            ("entries", s.entries as u64),
            ("bytes", s.bytes as u64),
            ("hits", s.hits),
            ("misses", s.misses),
            ("insertions", s.insertions),
            ("evictions", s.evictions),
            ("invalidations", s.invalidations),
            ("plan_hits", s.plan_hits),
            ("plan_misses", s.plan_misses),
        ];
        let table = mosaic_storage::Table::new(
            mosaic_storage::Schema::new(vec![
                mosaic_storage::Field::new("stat", mosaic_storage::DataType::Str),
                mosaic_storage::Field::new("value", mosaic_storage::DataType::Int),
            ]),
            vec![
                mosaic_storage::Column::from_str(
                    stats.iter().map(|(k, _)| k.to_string()).collect(),
                ),
                mosaic_storage::Column::from_i64(stats.iter().map(|(_, v)| *v as i64).collect()),
            ],
        )
        .expect("static schema matches columns");
        self.stream_result(
            w,
            &QueryResult {
                table,
                visibility: None,
                notes: Vec::new(),
            },
        )
    }

    /// Stream one result: `Schema`, then `RowBatch` frames, then `Done`.
    fn stream_result(&self, w: &mut impl Write, result: &QueryResult) -> io::Result<()> {
        let t = &result.table;
        let fields = t
            .schema()
            .fields()
            .iter()
            .map(|f| WireField {
                name: f.name.clone(),
                data_type: f.data_type,
                nullable: f.nullable,
            })
            .collect();
        send(w, &Response::Schema { fields })?;
        let mut start = 0;
        while start < t.num_rows() {
            let end = (start + self.rows_per_batch).min(t.num_rows());
            let rows: Vec<Vec<Value>> = (start..end).map(|r| t.row(r)).collect();
            send(w, &Response::RowBatch { rows })?;
            start = end;
        }
        send(
            w,
            &Response::Done {
                visibility: result.visibility,
                notes: result.notes.clone(),
            },
        )
    }
}

fn engine_error(e: &mosaic_core::MosaicError) -> Response {
    Response::Error(WireError {
        code: error_code(e),
        statement_index: None,
        statement_text: String::new(),
        message: e.to_string(),
    })
}

fn protocol_error(code: u16, message: String) -> Response {
    Response::Error(WireError {
        code,
        statement_index: None,
        statement_text: String::new(),
        message,
    })
}

fn send(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let (ty, payload) = resp.encode();
    write_frame(w, ty, &payload)?;
    w.flush()
}
