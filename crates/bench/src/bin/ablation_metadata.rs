//! **Ablation A4** — the two metadata paths of the paper's Fig. 3:
//! reweighting directly to the *query population*'s marginals (bottom
//! dashed line) vs reweighting to the *global population* and treating
//! the query population as a view (left dashed line).
//!
//! The paper: "the accuracy will likely be lower when reweighting to fit
//! global population … than reweighting to fit the query population
//! directly as biases that exist in the query population may not be
//! captured when learning the global population."
//!
//! Usage: `cargo run --release -p mosaic-bench --bin ablation_metadata [--full]`

use std::collections::HashMap;

use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_core::MosaicDb;
use mosaic_stats::{percent_diff, Marginal};

fn setup_db(data: &flights::FlightsData) -> MosaicDb {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT);
         CREATE POPULATION LongFlights AS (SELECT * FROM Flights WHERE distance > 1000);
         CREATE SAMPLE FlightSample AS (SELECT * FROM Flights);",
    )
    .expect("ddl");
    for (attr, binner) in &data.binners {
        db.register_binner(attr, binner.clone());
    }
    db.ingest_sample("FlightSample", data.sample.clone())
        .expect("ingest");
    db
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        FlightsConfig::paper_scale()
    } else {
        FlightsConfig {
            population: 50_000,
            ..FlightsConfig::default()
        }
    };
    let data = flights::generate(&config);

    // Ground truth over the derived population.
    let long_rows: Vec<usize> = {
        let d = data
            .population
            .column_by_name("distance")
            .expect("distance");
        (0..data.population.num_rows())
            .filter(|&r| d.f64_at(r).unwrap_or(0.0) > 1000.0)
            .collect()
    };
    let long_pop = data.population.take(&long_rows);
    let truth_avg = {
        let e = long_pop.column_by_name("elapsed_time").expect("elapsed");
        (0..long_pop.num_rows())
            .filter_map(|r| e.f64_at(r))
            .sum::<f64>()
            / long_pop.num_rows() as f64
    };

    // Path 1: metadata on the GP only (left dashed line of Fig. 3).
    let mut db_gp = setup_db(&data);
    for (i, m) in data.marginals.iter().enumerate() {
        db_gp
            .add_metadata(&format!("Flights_M{i}"), "Flights", m.clone())
            .expect("metadata");
    }
    // Path 2: metadata on the query population only (bottom dashed line).
    let mut db_qp = setup_db(&data);
    let pairs = [
        ("carrier", "elapsed_time"),
        ("taxi_out", "elapsed_time"),
        ("taxi_in", "elapsed_time"),
        ("distance", "elapsed_time"),
    ];
    for (i, (a, b)) in pairs.iter().enumerate() {
        let m = Marginal::from_table(&long_pop, &[a, b], None, &data.binners).expect("marginal");
        db_qp
            .add_metadata(&format!("LongFlights_M{i}"), "LongFlights", m)
            .expect("metadata");
    }
    let _unused: HashMap<(), ()> = HashMap::new();

    let q = "SELECT SEMI-OPEN AVG(elapsed_time) FROM LongFlights";
    println!("Ablation A4: metadata path (Fig. 3), query: {q}");
    println!("ground truth AVG(elapsed_time | distance>1000): {truth_avg:.2}");
    for (name, db) in [
        ("GP metadata (left path)", &mut db_gp),
        ("query-pop metadata (bottom path)", &mut db_qp),
    ] {
        let result = db.execute(q).expect("query");
        let est = result.table.value(0, 0).as_f64().expect("avg");
        println!(
            "{name:<34} estimate {est:>9.2}  percent diff {:>6.2}",
            percent_diff(est, truth_avg)
        );
        for note in &result.notes {
            println!("    note: {note}");
        }
    }
    println!();
    println!(
        "Expected shape: the query-population path is at least as accurate as \
         the GP path (paper §4.1)."
    );
}
