//! Reproduces **Fig. 7** (and Table 2): average percent difference of
//! uniform reweighting vs IPF vs M-SWG on the eight aggregate queries over
//! the biased flights sample — continuous queries 1–4 (left plot) and
//! categorical GROUP BY queries 5–8 (right plot).
//!
//! Usage: `cargo run --release -p mosaic-bench --bin fig7 [--full]`

use mosaic_bench::experiments::{fig7, Fig7Config};
use mosaic_bench::flights::{table2_queries, FlightsConfig};
use mosaic_swg::SwgConfig;

fn fmt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:>8.2}"),
        None => format!("{:>8}", "empty"),
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        Fig7Config {
            flights: FlightsConfig::paper_scale(),
            swg: SwgConfig::paper_flights()
                .with_projections(256)
                .with_epochs(40),
            ..Fig7Config::default()
        }
    } else {
        Fig7Config::default()
    };
    eprintln!(
        "fig7: population={} projections={} epochs={} (use --full for paper scale)",
        config.flights.population, config.swg.projections, config.swg.epochs
    );
    eprintln!("Table 2 queries:");
    for (id, sql) in table2_queries() {
        eprintln!("  {id}: {sql}");
    }
    let rows = fig7(&config);
    println!("Figure 7: average percent difference per query");
    println!("{:<4} {:>8} {:>8} {:>8}", "Id", "Unif", "IPF", "M-SWG");
    println!("-- continuous queries (left plot) --");
    for r in rows.iter().take(4) {
        println!("{:<4} {} {} {}", r.id, fmt(r.unif), fmt(r.ipf), fmt(r.mswg));
    }
    println!("-- categorical GROUP BY queries (right plot) --");
    for r in rows.iter().skip(4) {
        println!("{:<4} {} {} {}", r.id, fmt(r.unif), fmt(r.ipf), fmt(r.mswg));
    }
    println!();
    println!("Paper claims to check against:");
    println!(" * Q1 (predicate matches the sample bias): Unif/IPF near zero error.");
    println!(" * Q3: Unif/IPF overestimate (long-flight bias inflates elapsed_time).");
    println!(" * Averaged over Q1–Q4, M-SWG achieves the lowest error.");
    println!(" * Q8 (rare carriers US/F9): M-SWG struggles to generate rare values.");
    let avg = |f: fn(&mosaic_bench::experiments::Fig7Row) -> Option<f64>| {
        let v: Vec<f64> = rows.iter().take(4).filter_map(f).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!();
    println!(
        "Mean error over Q1-Q4:  Unif {:.2}  IPF {:.2}  M-SWG {:.2}",
        avg(|r| r.unif),
        avg(|r| r.ipf),
        avg(|r| r.mswg)
    );
}
