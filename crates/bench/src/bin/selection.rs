//! Reproduces the **§5.3 model-selection protocol**: 200 random
//! continuous-attribute queries with the Q1–Q4 template ("the attributes
//! and predicates are randomly generated"), scored only when both the
//! true answer and the estimate are non-empty.
//!
//! The paper reports that on the non-empty queries, *all* M-SWG models
//! achieve lower error than Unif, and IPF also beats Unif.
//!
//! Usage: `cargo run --release -p mosaic-bench --bin selection [--full]`

use mosaic_bench::experiments::{selection, Fig7Config};
use mosaic_bench::flights::FlightsConfig;
use mosaic_swg::SwgConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        Fig7Config {
            flights: FlightsConfig::paper_scale(),
            swg: SwgConfig::paper_flights()
                .with_projections(256)
                .with_epochs(40),
            ..Fig7Config::default()
        }
    } else {
        Fig7Config::default()
    };
    let queries = 200;
    eprintln!(
        "selection: {} random continuous queries over population={}",
        queries, config.flights.population
    );
    let r = selection(&config, queries);
    println!("Section 5.3 parameter-selection protocol ({queries} random queries):");
    println!("scored (non-empty) queries: {}", r.scored);
    println!(
        "mean percent error:  Unif {:.2}  IPF {:.2}  M-SWG {:.2}",
        r.unif_mean, r.ipf_mean, r.mswg_mean
    );
    println!(
        "M-SWG beats Unif on {}/{} queries; IPF beats Unif on {}/{}",
        r.mswg_wins, r.scored, r.ipf_wins, r.scored
    );
    println!();
    println!(
        "Paper claim: on non-empty queries both M-SWG and IPF achieve lower \
         error than Unif."
    );
}
