//! Reproduces the **§3.3 visibility trade-off table**: false negatives
//! and false positives of CLOSED vs SEMI-OPEN vs OPEN queries when the
//! sample is missing several carriers entirely.
//!
//! | level | FN | FP | assumption |
//! |---|---|---|---|
//! | CLOSED | n | 0 | closed |
//! | SEMI-OPEN | n | 0 | open |
//! | OPEN | ≤ n | ≥ 0 | open |
//!
//! Usage: `cargo run --release -p mosaic-bench --bin visibility [--full]`

use mosaic_bench::experiments::visibility;
use mosaic_bench::flights::FlightsConfig;
use mosaic_swg::SwgConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let flights = if full {
        FlightsConfig {
            population: 200_000,
            marginal_bins: 16,
            ..FlightsConfig::default()
        }
    } else {
        FlightsConfig {
            population: 30_000,
            marginal_bins: 12,
            ..FlightsConfig::default()
        }
    };
    let swg = SwgConfig::default()
        .with_hidden_dim(50)
        .with_hidden_layers(3)
        .with_latent_dim(None)
        .with_lambda(1e-7)
        .with_projections(if full { 128 } else { 32 })
        .with_epochs(if full { 30 } else { 15 })
        .with_batch_size(256);
    let dropped = ["US", "F9", "HA", "VX"];
    eprintln!(
        "visibility: population={}, dropping carriers {:?} from the sample",
        flights.population, dropped
    );
    let rows = visibility(&flights, swg, &dropped);
    println!("Section 3.3 visibility trade-off (GROUP BY carrier groups):");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>12}",
        "level", "FN", "FP", "returned", "assumption"
    );
    for r in &rows {
        let assumption = match r.visibility {
            mosaic_core::Visibility::Closed => "closed",
            _ => "open",
        };
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>12}",
            r.visibility.to_string(),
            r.false_negatives,
            r.false_positives,
            r.returned,
            assumption
        );
    }
    println!();
    println!(
        "Expected shape: CLOSED and SEMI-OPEN have FN = {} (the dropped carriers) \
         and FP = 0; OPEN recovers some or all dropped carriers (FN ≤ {}) and may \
         introduce false positives.",
        dropped.len(),
        dropped.len()
    );
}
