//! `loadgen` — drive a Mosaic server with hundreds of concurrent
//! connections and report throughput + latency percentiles.
//!
//! By default it spins up an in-process `mosaic-serve` server over a
//! seeded table, opens `--connections` TCP clients, and has each of
//! them loop over the planner-oracle query templates (plus a named
//! prepared statement with cycling `?` parameters) until the duration
//! elapses. Template selection is **zipf-skewed** (frequency ∝ 1/rank^s,
//! s = 1.1) — the hot-template concentration of a real dashboard
//! workload, and exactly the shape the engine's result cache is built
//! for. The run has two phases of equal duration: `cache=off` (every
//! connection opts out via `SetOption result_cache=off`) and `cache=on`
//! — the report shows QPS both ways, the speedup, and the observed
//! cache hit rate (counted from the `result cache hit` execution notes
//! that travel in each `Done` frame).
//!
//! Every response in both phases — cache hits included — is checked
//! **bit-identical** against the expected result precomputed through an
//! in-process session: a wire round-trip or a cache hit must never
//! change an answer. At the end it prints per-phase QPS,
//! p50/p95/p99/max latency, and the observed engine worker-thread peak
//! against the admission-control budget, and exits non-zero on any
//! mismatch, zero completed queries, a budget violation, or (when
//! `--min-speedup` is given) a cache speedup below the floor.
//!
//! ```text
//! cargo run --release -p mosaic-bench --bin loadgen -- \
//!     --connections 100 --duration-secs 3 --rows 50000 --budget 8
//! ```
//!
//! Flags: `--connections N` (default 100), `--duration-secs S` (default
//! 3, per phase), `--rows R` (table size, default 50000), `--budget B`
//! (worker budget, default: the engine's configured parallelism),
//! `--min-speedup X` (fail unless cache-on QPS ≥ X × cache-off QPS),
//! `--addr HOST:PORT` (drive an external server instead; bit-identity
//! and budget checks are skipped since the data lives remotely).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mosaic_core::{MosaicEngine, Table, Value};
use mosaic_serve::{Client, ServeConfig, Server};

/// Planner-oracle query templates the clients loop over (a workload
/// subset of `tests/tests/planner_oracle.rs`, aggregate-heavy like the
/// paper's §5.3 workload, plus ORDER BY-heavy full sorts and join-heavy
/// templates that exercise the parallel sort and the partitioned
/// hash-join build under concurrency).
const TEMPLATES: &[&str] = &[
    "SELECT COUNT(*) FROM t",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT SUM(i), AVG(f), MIN(i), MAX(f) FROM t",
    "SELECT k, i FROM t WHERE i > 100 ORDER BY i DESC, k LIMIT 20",
    "SELECT k, SUM(i) AS s FROM t WHERE i > 0 GROUP BY k ORDER BY s DESC, k LIMIT 5",
    "SELECT i FROM t WHERE i BETWEEN -10 AND 50 ORDER BY i LIMIT 25",
    "SELECT COUNT(*) FROM t WHERE f > 0.0 OR i < 0",
    "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY k",
    // ORDER BY-heavy: sorts over every row, capped so the response
    // stays small (wire streaming would otherwise dominate both the
    // cached and uncached cost and hide the execution savings).
    "SELECT k, i, f FROM t ORDER BY f DESC, i, k LIMIT 50",
    "SELECT i, k FROM t WHERE i IS NOT NULL ORDER BY i, k DESC LIMIT 100",
    // Join-heavy: fact-dim equi-joins with aggregation and a full
    // ORDER BY over the joined rows.
    "SELECT d.grp AS grp, COUNT(*) AS c, SUM(t.i) AS s FROM t JOIN d ON t.k = d.k \
     GROUP BY d.grp ORDER BY grp",
    "SELECT t.k, d.boost, t.i FROM t JOIN d ON t.k = d.k \
     WHERE t.i > 200 ORDER BY t.i DESC, t.k, d.boost LIMIT 30",
];

/// The named prepared statement every connection registers, with the
/// `?` values it cycles through.
const PREPARED_SQL: &str = "SELECT k, COUNT(*) AS c FROM t WHERE i > ? GROUP BY k ORDER BY k";
const PREPARED_PARAMS: &[i64] = &[0, 50, 100, 250];

/// Zipf exponent for template selection: rank k is drawn with
/// probability ∝ 1/k^ZIPF_S.
const ZIPF_S: f64 = 1.1;

struct Args {
    connections: usize,
    duration: Duration,
    rows: usize,
    budget: Option<usize>,
    min_speedup: Option<f64>,
    addr: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let num = |flag: &str, default: usize| -> usize {
        match get(flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} requires a positive integer");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    Args {
        connections: num("--connections", 100).max(1),
        duration: Duration::from_secs(num("--duration-secs", 3).max(1) as u64),
        rows: num("--rows", 50_000).max(1),
        budget: get("--budget").map(|v| {
            v.parse::<usize>().map(|n| n.max(1)).unwrap_or_else(|_| {
                eprintln!("error: --budget requires a positive integer");
                std::process::exit(2);
            })
        }),
        min_speedup: get("--min-speedup").map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0)
                .unwrap_or_else(|| {
                    eprintln!("error: --min-speedup requires a positive number");
                    std::process::exit(2);
                })
        }),
        addr: get("--addr"),
    }
}

/// The seeded workload: a multi-morsel fact table `t` (NULLs and a
/// skewed group column — the planner-oracle shape) plus a small
/// dimension table `d` the join-heavy templates probe against.
fn build_table_sql(rows: usize) -> String {
    let mut sql = String::from("CREATE TABLE t (k TEXT, i INT, f FLOAT);\n");
    sql.push_str("CREATE TABLE d (k TEXT, grp TEXT, boost INT);\n");
    let dims: Vec<String> = (0..23)
        .map(|j| format!("('g{j}', 'h{}', {})", j % 5, j % 7))
        .collect();
    sql.push_str(&format!("INSERT INTO d VALUES {};\n", dims.join(", ")));
    let mut values = Vec::with_capacity(rows);
    for r in 0..rows {
        let k = format!("'g{}'", r % 23);
        let i = if r % 11 == 0 {
            "NULL".to_string()
        } else {
            ((r % 1000) as i64 - 300).to_string()
        };
        let f = if r % 13 == 0 {
            "NULL".to_string()
        } else {
            format!("{:.2}", (r as f64) * 0.25 - 100.0)
        };
        values.push(format!("({k}, {i}, {f})"));
    }
    // Chunked INSERTs keep each statement's parse cost reasonable.
    for chunk in values.chunks(4096) {
        sql.push_str("INSERT INTO t VALUES ");
        sql.push_str(&chunk.join(", "));
        sql.push_str(";\n");
    }
    sql
}

fn tables_identical(a: &Table, b: &Table) -> bool {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return false;
    }
    for c in 0..a.num_columns() {
        let (fa, fb) = (a.schema().field(c), b.schema().field(c));
        if fa.name != fb.name || fa.data_type != fb.data_type {
            return false;
        }
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            // Value equality is total (floats by bit pattern), so this
            // is literal bit-identity.
            if a.value(r, c) != b.value(r, c) {
                return false;
            }
        }
    }
    true
}

/// A tiny deterministic PRNG (splitmix64) — no vendored rand needed and
/// every run draws the same skewed sequence per (connection, phase).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The zipf CDF over `n` ranks (rank k drawn ∝ 1/(k+1)^ZIPF_S).
fn zipf_cdf(n: usize) -> Vec<f64> {
    let weights: Vec<f64> = (0..n)
        .map(|k| 1.0 / ((k + 1) as f64).powf(ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn draw(cdf: &[f64], state: &mut u64) -> usize {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// One measured phase: all connections loop zipf-skewed over the
/// workload until the deadline, with the result cache either opted out
/// of or left on. Returns (sorted latencies, cache hits seen).
fn run_phase(
    addr: &str,
    args: &Args,
    expected: &Option<Arc<Vec<Table>>>,
    cache_on: bool,
    failed: &Arc<AtomicBool>,
    mismatches: &Arc<AtomicU64>,
) -> (Vec<Duration>, u64) {
    let deadline = Instant::now() + args.duration;
    let total_work = TEMPLATES.len() + PREPARED_PARAMS.len();
    let cdf = Arc::new(zipf_cdf(total_work));
    let hits = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..args.connections)
        .map(|ci| {
            let addr = addr.to_string();
            let expected = expected.clone();
            let failed = Arc::clone(failed);
            let mismatches = Arc::clone(mismatches);
            let hits = Arc::clone(&hits);
            let cdf = Arc::clone(&cdf);
            std::thread::spawn(move || -> Vec<Duration> {
                let mut latencies = Vec::new();
                let mut client = match Client::connect(addr.as_str()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("connection {ci}: connect failed: {e}");
                        failed.store(true, Ordering::Relaxed);
                        return latencies;
                    }
                };
                if let Err(e) = client.prepare("hot", PREPARED_SQL) {
                    eprintln!("connection {ci}: prepare failed: {e}");
                    failed.store(true, Ordering::Relaxed);
                    return latencies;
                }
                if !cache_on {
                    if let Err(e) = client.set_option("result_cache", "off") {
                        eprintln!("connection {ci}: set_option failed: {e}");
                        failed.store(true, Ordering::Relaxed);
                        return latencies;
                    }
                }
                // Distinct deterministic stream per (connection, phase).
                let mut rng = (ci as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(cache_on as u64);
                while Instant::now() < deadline {
                    let w = draw(&cdf, &mut rng);
                    let started = Instant::now();
                    let result = if w < TEMPLATES.len() {
                        client.query(TEMPLATES[w])
                    } else {
                        let p = PREPARED_PARAMS[w - TEMPLATES.len()];
                        client.execute_prepared("hot", &[Value::Int(p)])
                    };
                    let elapsed = started.elapsed();
                    match result {
                        Ok(r) => {
                            latencies.push(elapsed);
                            if r.notes.iter().any(|n| n.starts_with("result cache hit")) {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            if let Some(exp) = &expected {
                                if !tables_identical(&r.table, &exp[w]) {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                    failed.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e) => {
                            eprintln!("connection {ci}: query failed: {e}");
                            failed.store(true, Ordering::Relaxed);
                            return latencies;
                        }
                    }
                }
                let _ = client.close();
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("worker thread panicked"));
    }
    latencies.sort_unstable();
    (latencies, hits.load(Ordering::Relaxed))
}

fn report_phase(label: &str, latencies: &[Duration], wall: Duration, hits: u64) -> f64 {
    let total = latencies.len();
    let qps = total as f64 / wall.as_secs_f64();
    let pct = |p: f64| -> Duration {
        if total == 0 {
            return Duration::ZERO;
        }
        latencies[(((total - 1) as f64) * p).round() as usize]
    };
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    println!("phase {label}:");
    println!("  queries:        {total}");
    println!("  throughput:     {qps:.1} QPS");
    println!(
        "  latency:        p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms   max {:.2} ms",
        ms(pct(0.50)),
        ms(pct(0.95)),
        ms(pct(0.99)),
        ms(pct(1.0)),
    );
    let hit_rate = if total == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total as f64
    };
    println!("  cache hits:     {hits} ({hit_rate:.1}% of responses)");
    qps
}

fn main() {
    let args = parse_args();
    let external = args.addr.is_some();

    // In-process mode: build the engine, seed the table, start a server
    // on an OS-assigned port, and precompute the expected result of
    // every template through an in-process session.
    let (addr, expected, handle) = if let Some(addr) = &args.addr {
        (addr.clone(), None, None)
    } else {
        let engine = Arc::new(MosaicEngine::new());
        engine
            .session()
            .execute(&build_table_sql(args.rows))
            .expect("seeding the workload table failed");
        let session = engine.session();
        let mut expected: Vec<Table> = TEMPLATES
            .iter()
            .map(|sql| session.query(sql).expect("template must run in-process"))
            .collect();
        for &p in PREPARED_PARAMS {
            let sql = PREPARED_SQL.replacen('?', &p.to_string(), 1);
            expected.push(session.query(&sql).expect("prepared template must run"));
        }
        let mut config = ServeConfig::default().with_max_connections(args.connections + 8);
        if let Some(b) = args.budget {
            config = config.with_worker_budget(b);
        }
        let server = Server::bind(engine, "127.0.0.1:0", config).expect("bind 127.0.0.1:0 failed");
        let addr = server.local_addr().to_string();
        let (handle, _join) = server.spawn();
        // Measure worker threads from a clean slate: everything before
        // this point (seeding, expected results) doesn't count.
        mosaic_core::reset_worker_thread_peak();
        (addr, Some(Arc::new(expected)), Some(handle))
    };

    eprintln!(
        "loadgen: {} connections x {:?} x 2 phases (cache off/on) against {addr} \
         ({} templates + 1 prepared x {} params, zipf s={ZIPF_S}, {} rows)",
        args.connections,
        args.duration,
        TEMPLATES.len(),
        PREPARED_PARAMS.len(),
        args.rows,
    );

    let failed = Arc::new(AtomicBool::new(false));
    let mismatches = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    let (lat_off, hits_off) = run_phase(&addr, &args, &expected, false, &failed, &mismatches);
    let wall_off = started.elapsed().max(args.duration);
    let started = Instant::now();
    let (lat_on, hits_on) = run_phase(&addr, &args, &expected, true, &failed, &mismatches);
    let wall_on = started.elapsed().max(args.duration);

    println!("connections:      {}", args.connections);
    let qps_off = report_phase("cache=off", &lat_off, wall_off, hits_off);
    let qps_on = report_phase("cache=on", &lat_on, wall_on, hits_on);
    let speedup = if qps_off > 0.0 { qps_on / qps_off } else { 0.0 };
    println!("cache speedup:    {speedup:.1}x QPS (on vs off)");

    let total = lat_off.len() + lat_on.len();
    let mut budget_violated = false;
    if let Some(handle) = &handle {
        let peak = mosaic_core::worker_thread_peak();
        let budget = handle.worker_budget();
        budget_violated = peak > budget;
        println!(
            "worker threads:   peak {peak} (budget {budget}, permit peak {})",
            handle.permit_peak()
        );
        println!(
            "connections seen: {} accepted, {} rejected, {} permits leaked",
            handle.total_connections(),
            handle.rejected_connections(),
            handle.permits_in_use(),
        );
        budget_violated |= handle.permits_in_use() != 0;
    }

    let bad = mismatches.load(Ordering::Relaxed);
    if bad > 0 {
        eprintln!("FAIL: {bad} responses differed from in-process execution");
    }
    if budget_violated {
        eprintln!("FAIL: worker-thread budget violated (or permits leaked)");
    }
    if total == 0 {
        eprintln!("FAIL: no queries completed");
    }
    let mut too_slow = false;
    if let Some(floor) = args.min_speedup {
        if speedup < floor {
            too_slow = true;
            eprintln!("FAIL: cache speedup {speedup:.1}x below the {floor:.1}x floor");
        }
    }
    if failed.load(Ordering::Relaxed) || budget_violated || total == 0 || too_slow {
        std::process::exit(1);
    }
    if !external {
        println!("bit-identity:     all {total} responses identical to in-process execution");
    }
}
