//! Reproduces **Fig. 5**: the spiral population, the biased sample, and
//! the M-SWG generated sample.
//!
//! The paper's figure is a scatter plot; this harness writes the three
//! point clouds as CSV (for plotting) and prints quantitative versions of
//! the figure's two visual claims: (1) the generated data matches the
//! population marginals much better than the biased sample, and (2) it
//! stays on the spiral manifold (small nearest-population-point
//! distance).
//!
//! Usage: `cargo run --release -p mosaic-bench --bin fig5 [--full] [--out DIR]`

use std::io::Write;

use mosaic_bench::spiral::{self, SpiralConfig};
use mosaic_stats::{wasserstein_1d, Marginal, WassersteinOrder, WeightedEmpirical};
use mosaic_storage::Table;
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn marginal_w1(sample: &Table, attr: &str, marginal: &Marginal) -> f64 {
    let col = sample.column_by_name(attr).expect("attr");
    let a = WeightedEmpirical::from_values((0..sample.num_rows()).filter_map(|r| col.f64_at(r)));
    // Binned marginal cells are keyed by bin midpoints — directly usable
    // as coordinates.
    let pairs = marginal.to_numeric_pairs().expect("numeric 1-D marginal");
    let b = WeightedEmpirical::from_pairs(pairs);
    wasserstein_1d(&a, &b, WassersteinOrder::W1)
}

fn mean_nn_distance(points: &Table, reference: &Table, limit: usize) -> f64 {
    let px = points.column_by_name("x").unwrap();
    let py = points.column_by_name("y").unwrap();
    let rx = reference.column_by_name("x").unwrap();
    let ry = reference.column_by_name("y").unwrap();
    let n = points.num_rows().min(limit);
    let m = reference.num_rows().min(5000);
    let mut total = 0.0;
    for i in 0..n {
        let (x, y) = (px.f64_at(i).unwrap(), py.f64_at(i).unwrap());
        let mut best = f64::INFINITY;
        for j in 0..m {
            let dx = x - rx.f64_at(j).unwrap();
            let dy = y - ry.f64_at(j).unwrap();
            best = best.min(dx * dx + dy * dy);
        }
        total += best.sqrt();
    }
    total / n as f64
}

fn write_csv(path: &std::path::Path, table: &Table) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "x,y")?;
    for r in 0..table.num_rows() {
        writeln!(f, "{},{}", table.value(r, 0), table.value(r, 1))?;
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_string())
        .unwrap_or_else(|| "target/fig5".to_string());

    let spiral_cfg = if full {
        SpiralConfig::default()
    } else {
        SpiralConfig {
            population: 20_000,
            sample: 2_000,
            ..SpiralConfig::default()
        }
    };
    // Paper §5.3 footnote 3: 3 ReLU FC layers × 100 nodes, λ=0.04, ℓ=2,
    // batch 500.
    let swg_cfg = if full {
        SwgConfig::paper_spiral().with_epochs(60)
    } else {
        SwgConfig::paper_spiral()
            .with_epochs(25)
            .with_batch_size(256)
    };

    eprintln!(
        "fig5: spiral population={} sample={} (use --full for paper scale)",
        spiral_cfg.population, spiral_cfg.sample
    );
    let data = spiral::generate(&spiral_cfg);
    let model = MSwg::fit_with_progress(&data.sample, &data.marginals, swg_cfg, |epoch, loss| {
        if epoch % 5 == 0 {
            eprintln!("  epoch {epoch}: loss {loss:.5}");
        }
    })
    .expect("M-SWG fits");
    let mut rng = StdRng::seed_from_u64(99);
    let generated = model.generate(data.sample.num_rows(), &mut rng);

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let dir = std::path::Path::new(&out_dir);
    write_csv(&dir.join("population.csv"), &data.population).expect("write");
    write_csv(&dir.join("biased_sample.csv"), &data.sample).expect("write");
    write_csv(&dir.join("mswg_sample.csv"), &generated).expect("write");
    eprintln!("wrote {out_dir}/population.csv, biased_sample.csv, mswg_sample.csv");

    println!("Figure 5 (quantitative): marginal fit and manifold fit");
    println!(
        "{:<18} {:>12} {:>12} {:>16}",
        "dataset", "W1(x)", "W1(y)", "mean NN->pop"
    );
    for (name, table) in [
        ("biased sample", &data.sample),
        ("M-SWG sample", &generated),
    ] {
        let wx = marginal_w1(table, "x", &data.marginals[0]);
        let wy = marginal_w1(table, "y", &data.marginals[1]);
        let nn = mean_nn_distance(table, &data.population, 2000);
        println!("{name:<18} {wx:>12.5} {wy:>12.5} {nn:>16.5}");
    }
    println!();
    println!(
        "Paper claim: \"the generated data more closely matches the marginals while \
         maintaining the spiral shape\" — expect both W1 columns to drop \
         substantially for the M-SWG sample while mean NN distance stays small."
    );
}
