//! Reproduces **Table 1**: the flights attributes, their abbreviations,
//! and their M-SWG encoded dimensionality (number of distinct values for
//! categoricals, 1 for scaled numerics).
//!
//! Usage: `cargo run --release -p mosaic-bench --bin table1 [--full]`

use std::collections::HashMap;

use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_swg::Encoder;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        FlightsConfig::paper_scale()
    } else {
        FlightsConfig::default()
    };
    eprintln!(
        "table1: generating {} flights (use --full for the paper's 426,411)",
        config.population
    );
    let data = flights::generate(&config);
    let encoder = Encoder::fit(&data.sample, &HashMap::new());
    let abbrev: HashMap<&str, &str> = [
        ("carrier", "C"),
        ("taxi_out", "O"),
        ("taxi_in", "I"),
        ("elapsed_time", "E"),
        ("distance", "D"),
    ]
    .into_iter()
    .collect();
    println!("Table 1: Flights attributes");
    println!("{:<16} {:>6} {:>10}", "Flights", "Abbrv", "M-SWG Dim");
    for spec in encoder.specs() {
        println!(
            "{:<16} {:>6} {:>10}",
            spec.name(),
            abbrev.get(spec.name()).copied().unwrap_or("?"),
            spec.width()
        );
    }
    println!();
    println!("Paper values: carrier 14, taxi_out 1, taxi_in 1, elapsed_time 1, distance 1.");
    println!(
        "population rows: {} | sample rows: {} (5% biased, 95% long flights)",
        data.population.num_rows(),
        data.sample.num_rows()
    );
}
