//! **Ablation A2** — the coverage weight λ: "a tuning parameter that
//! trades off between fitting the population marginals and respecting the
//! structure of the sample data" (paper §5.2).
//!
//! For each λ we train on the spiral and report (a) the 1-D Wasserstein
//! distance of the generated data to the population marginals (marginal
//! fit) and (b) the mean distance from generated points to their nearest
//! population point (manifold fit). Small λ should win on (a), large λ on
//! (b).
//!
//! Usage: `cargo run --release -p mosaic-bench --bin ablation_lambda [--full]`

use mosaic_bench::spiral::{self, SpiralConfig};
use mosaic_stats::{wasserstein_1d, WassersteinOrder, WeightedEmpirical};
use mosaic_storage::Table;
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn column_empirical(t: &Table, attr: &str) -> WeightedEmpirical {
    let c = t.column_by_name(attr).expect("attr");
    WeightedEmpirical::from_values((0..t.num_rows()).filter_map(|r| c.f64_at(r)))
}

fn mean_nn(points: &Table, reference: &Table) -> f64 {
    let px = points.column_by_name("x").unwrap();
    let py = points.column_by_name("y").unwrap();
    let rx = reference.column_by_name("x").unwrap();
    let ry = reference.column_by_name("y").unwrap();
    let n = points.num_rows().min(1000);
    let m = reference.num_rows().min(4000);
    let mut total = 0.0;
    for i in 0..n {
        let (x, y) = (px.f64_at(i).unwrap(), py.f64_at(i).unwrap());
        let mut best = f64::INFINITY;
        for j in 0..m {
            let dx = x - rx.f64_at(j).unwrap();
            let dy = y - ry.f64_at(j).unwrap();
            best = best.min(dx * dx + dy * dy);
        }
        total += best.sqrt();
    }
    total / n as f64
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let spiral_cfg = if full {
        SpiralConfig::default()
    } else {
        SpiralConfig {
            population: 20_000,
            sample: 2_000,
            ..SpiralConfig::default()
        }
    };
    let data = spiral::generate(&spiral_cfg);
    let pop_x = column_empirical(&data.population, "x");
    let pop_y = column_empirical(&data.population, "y");
    let lambdas = [0.0, 0.004, 0.04, 0.4, 4.0];
    println!("Ablation A2: coverage weight λ (spiral workload)");
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "lambda", "W1(x)", "W1(y)", "mean NN->pop"
    );
    // The per-λ trainings are independent; run them on scoped threads.
    let results: Vec<(f64, f64, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = lambdas
            .iter()
            .map(|&lambda| {
                let data = &data;
                let pop_x = &pop_x;
                let pop_y = &pop_y;
                s.spawn(move || {
                    let cfg = SwgConfig::paper_spiral()
                        .with_lambda(lambda)
                        .with_epochs(if full { 50 } else { 25 })
                        .with_batch_size(256);
                    let model = MSwg::fit(&data.sample, &data.marginals, cfg).expect("fit");
                    let mut rng = StdRng::seed_from_u64(5);
                    let gen = model.generate(data.sample.num_rows(), &mut rng);
                    let wx =
                        wasserstein_1d(&column_empirical(&gen, "x"), pop_x, WassersteinOrder::W1);
                    let wy =
                        wasserstein_1d(&column_empirical(&gen, "y"), pop_y, WassersteinOrder::W1);
                    let nn = mean_nn(&gen, &data.population);
                    (lambda, wx, wy, nn)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("λ run"))
            .collect()
    });
    for (lambda, wx, wy, nn) in results {
        println!("{lambda:>8.3} {wx:>12.5} {wy:>12.5} {nn:>14.5}");
    }
    println!();
    println!(
        "Expected shape: marginal fit (W1) degrades as λ grows; manifold fit \
         (NN distance) improves. The paper's λ=0.04 sits at the knee."
    );
}
