//! Reproduces **Fig. 6**: average percent difference of uniform
//! reweighting vs the M-SWG on 100 random 2-D range queries per
//! box-width coverage (0.1–0.8), box-plot statistics with 3rd/97th
//! percentile whiskers.
//!
//! Usage: `cargo run --release -p mosaic-bench --bin fig6 [--full]`

use mosaic_bench::experiments::{fig6, Fig6Config};
use mosaic_bench::spiral::SpiralConfig;
use mosaic_swg::SwgConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        Fig6Config {
            swg: SwgConfig::paper_spiral().with_epochs(60),
            ..Fig6Config::default()
        }
    } else {
        Fig6Config {
            spiral: SpiralConfig {
                population: 20_000,
                sample: 2_000,
                ..SpiralConfig::default()
            },
            swg: SwgConfig::paper_spiral()
                .with_epochs(25)
                .with_batch_size(256),
            queries: 100,
            generated_samples: 10,
            ..Fig6Config::default()
        }
    };
    eprintln!(
        "fig6: population={} sample={} queries={} generated={} (use --full for paper scale)",
        config.spiral.population, config.spiral.sample, config.queries, config.generated_samples
    );
    let rows = fig6(&config);
    println!("Figure 6: avg fractional difference of 2-D range COUNT queries");
    println!("(values are fractions, matching the paper's 0–2.0 y-axis)");
    println!();
    for row in &rows {
        println!("coverage {:.1}:", row.coverage);
        println!("  Unif   {}", row.unif.row());
        println!("  M-SWG  {}", row.mswg.row());
    }
    println!();
    println!(
        "Paper claim: M-SWG outperforms Unif at every coverage except the \
         narrowest boxes, where both methods have high error."
    );
    let wins = rows.iter().filter(|r| r.mswg.mean < r.unif.mean).count();
    println!(
        "M-SWG wins {wins}/{} coverage levels on mean error.",
        rows.len()
    );
}
