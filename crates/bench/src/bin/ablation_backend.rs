//! **Ablation A5** — generative backend for OPEN queries: the implicit
//! M-SWG (paper §5) vs the explicit Chow–Liu Bayesian network fitted on
//! the IPF-reweighted sample (§4.2 / Themis). Scores the continuous
//! Table 2 queries against the ground truth.
//!
//! Usage: `cargo run --release -p mosaic-bench --bin ablation_backend [--full]`

use mosaic_bench::experiments::{
    answer, answer_error, combine_generated_answers, fig7_prepare, Fig7Config,
};
use mosaic_bench::flights::{table2_queries, FlightsConfig};
use mosaic_bn::{BayesNet, BnConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        Fig7Config {
            flights: FlightsConfig::paper_scale(),
            ..Fig7Config::default()
        }
    } else {
        Fig7Config {
            flights: FlightsConfig {
                population: 50_000,
                ..FlightsConfig::default()
            },
            ..Fig7Config::default()
        }
    };
    let art = fig7_prepare(&config);
    let data = &art.data;
    let n = data.sample.num_rows();
    let pop_n = data.population.num_rows() as f64;
    let w = pop_n / n as f64;

    // Bayesian network on the IPF-reweighted sample.
    let bn =
        BayesNet::fit(&data.sample, Some(&art.ipf_weights), &BnConfig::default()).expect("bn fits");
    let mut rng = StdRng::seed_from_u64(13);
    let bn_tables: Vec<_> = (0..config.generated_samples)
        .map(|_| bn.sample(n, &mut rng))
        .collect();

    println!("Ablation A5: OPEN backend, percent error on Table 2 queries");
    println!("{:<4} {:>10} {:>10}", "Id", "M-SWG", "BayesNet");
    for (id, sql) in table2_queries() {
        let truth = answer(&sql, &data.population, None);
        let mswg_ans = combine_generated_answers(
            &art.generated
                .iter()
                .map(|g| answer(&sql, g, Some(&vec![w; g.num_rows()])))
                .collect::<Vec<_>>(),
        );
        let bn_ans = combine_generated_answers(
            &bn_tables
                .iter()
                .map(|g| answer(&sql, g, Some(&vec![w; g.num_rows()])))
                .collect::<Vec<_>>(),
        );
        let cell = |v: Option<f64>| v.map_or("empty".to_string(), |x| format!("{x:.2}"));
        println!(
            "{:<4} {:>10} {:>10}",
            id,
            cell(answer_error(&mswg_ans, &truth)),
            cell(answer_error(&bn_ans, &truth))
        );
    }
    println!();
    println!("Tree edges learned by the Bayesian network:");
    for (c, p) in bn.edges() {
        println!("  {c} -> {p}");
    }
    println!();
    println!(
        "Expected shape: the BN (explicit model, fits the reweighted joint \
         exactly up to its tree independence assumptions) is competitive on \
         the continuous queries; the M-SWG avoids the independence assumption \
         entirely (paper §4.2 trade-off discussion)."
    );
}
