//! **Ablation A1** — number of random projections `p` for the sliced
//! Wasserstein terms (paper: p = 1000; DESIGN.md defaults lower).
//! Accuracy on the continuous Table 2 queries vs training wall time.
//!
//! Usage: `cargo run --release -p mosaic-bench --bin ablation_projections [--full]`

use std::time::Instant;

use mosaic_bench::experiments::{fig7_prepare, fig7_rows, Fig7Config};
use mosaic_bench::flights::FlightsConfig;
use mosaic_swg::SwgConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let flights = if full {
        FlightsConfig {
            population: 200_000,
            ..FlightsConfig::default()
        }
    } else {
        FlightsConfig {
            population: 30_000,
            marginal_bins: 16,
            ..FlightsConfig::default()
        }
    };
    let ps = if full {
        vec![16usize, 64, 256, 1000]
    } else {
        vec![8, 32, 128]
    };
    println!("Ablation A1: sliced-Wasserstein projection count");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "p", "Q1", "Q2", "Q3", "Q4", "train (s)"
    );
    for p in ps {
        let config = Fig7Config {
            flights: flights.clone(),
            swg: SwgConfig::paper_flights()
                .with_projections(p)
                .with_epochs(if full { 30 } else { 12 }),
            generated_samples: 5,
            ..Fig7Config::default()
        };
        let t0 = Instant::now();
        let art = fig7_prepare(&config);
        let elapsed = t0.elapsed().as_secs_f64();
        let rows = fig7_rows(&config, &art);
        let cell = |v: Option<f64>| v.map_or("empty".to_string(), |x| format!("{x:.2}"));
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
            p,
            cell(rows[0].mswg),
            cell(rows[1].mswg),
            cell(rows[2].mswg),
            cell(rows[3].mswg),
            elapsed
        );
    }
    println!();
    println!(
        "Expected shape: error stabilizes once p is large enough to cover the \
         2-D marginal directions; training time grows linearly in p."
    );
}
