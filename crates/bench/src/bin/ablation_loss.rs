//! **Ablation A3** — W1 vs squared-W2 quantile matching in the M-SWG loss.
//! The paper's formulation uses `W` (W1); sliced Wasserstein generators
//! commonly use W2². We compare both on the Fig. 6 range-query workload.
//!
//! Usage: `cargo run --release -p mosaic-bench --bin ablation_loss [--full]`

use mosaic_bench::experiments::{fig6, Fig6Config};
use mosaic_bench::spiral::SpiralConfig;
use mosaic_stats::WassersteinOrder;
use mosaic_swg::SwgConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let spiral = if full {
        SpiralConfig::default()
    } else {
        SpiralConfig {
            population: 20_000,
            sample: 2_000,
            ..SpiralConfig::default()
        }
    };
    println!("Ablation A3: matching loss (spiral, Fig. 6 protocol)");
    for (name, order) in [
        ("W1", WassersteinOrder::W1),
        ("W2^2", WassersteinOrder::W2Squared),
    ] {
        let config = Fig6Config {
            spiral: spiral.clone(),
            swg: SwgConfig::paper_spiral()
                .with_order(order)
                .with_epochs(if full { 50 } else { 25 })
                .with_batch_size(256),
            queries: 60,
            generated_samples: 5,
            coverages: vec![0.2, 0.4, 0.6],
            seed: 11,
        };
        let rows = fig6(&config);
        println!("loss = {name}:");
        for r in &rows {
            println!(
                "  coverage {:.1}: mswg mean {:.4} median {:.4} (unif mean {:.4})",
                r.coverage, r.mswg.mean, r.mswg.median, r.unif.mean
            );
        }
    }
    println!();
    println!(
        "Expected shape: both losses beat Unif; W2^2 typically converges more \
         smoothly (smaller spread) at equal epochs."
    );
}
