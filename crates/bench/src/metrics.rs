//! Error metrics and summary statistics for the experiment harnesses.

pub use mosaic_stats::percent_diff;

/// Box-plot style summary: the paper's Fig. 6 "box plots (X is average) …
/// where the whiskers show the 3rd and 97th percentiles".
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// 3rd percentile (lower whisker).
    pub p3: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub p75: f64,
    /// 97th percentile (upper whisker).
    pub p97: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a set of observations (NaNs dropped).
    pub fn of(values: &[f64]) -> Summary {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary {
                n: 0,
                mean: f64::NAN,
                p3: f64::NAN,
                p25: f64::NAN,
                median: f64::NAN,
                p75: f64::NAN,
                p97: f64::NAN,
                max: f64::NAN,
            };
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| {
            let idx = (p * (v.len() - 1) as f64).round() as usize;
            v[idx.min(v.len() - 1)]
        };
        Summary {
            n: v.len(),
            mean: v.iter().sum::<f64>() / v.len() as f64,
            p3: q(0.03),
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            p97: q(0.97),
            max: *v.last().expect("non-empty"),
        }
    }

    /// One-line rendering for harness output.
    pub fn row(&self) -> String {
        format!(
            "n={:<4} mean={:>8.3} p3={:>8.3} p25={:>8.3} med={:>8.3} p75={:>8.3} p97={:>8.3} max={:>8.3}",
            self.n, self.mean, self.p3, self.p25, self.median, self.p75, self.p97, self.max
        )
    }
}

/// Relative-difference helper for comparing two aggregate answers where
/// either may be missing (group absent → false negative).
pub fn group_percent_diff(estimate: Option<f64>, truth: Option<f64>) -> Option<f64> {
    match (estimate, truth) {
        (Some(e), Some(t)) => Some(percent_diff(e, t)),
        // Group missing from the estimate: count as 100% error.
        (None, Some(_)) => Some(100.0),
        // Spurious group or both missing: not scored against truth.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[2.0; 10]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p97, 2.0);
        assert_eq!(s.n, 10);
    }

    #[test]
    fn summary_orders_percentiles() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&v);
        assert!(s.p3 <= s.p25 && s.p25 <= s.median);
        assert!(s.median <= s.p75 && s.p75 <= s.p97 && s.p97 <= s.max);
        assert_eq!(s.median, 50.0);
    }

    #[test]
    fn summary_drops_nans() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn group_diff_missing_group_is_full_error() {
        assert_eq!(group_percent_diff(None, Some(5.0)), Some(100.0));
        assert_eq!(group_percent_diff(Some(5.0), None), None);
        assert_eq!(group_percent_diff(Some(110.0), Some(100.0)), Some(10.0));
    }
}
