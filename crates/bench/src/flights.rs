//! Synthetic IDEBench-style flights workload (paper §5.3, Table 1).
//!
//! The paper evaluates on US domestic flights from IDEBench (426,411 rows
//! after filtering to 2015–16), with the five attributes of Table 1 and a
//! biased 5 % sample in which 95 % of tuples have `elapsed_time > 200`
//! minutes. The real CSV is not available offline, so this module
//! generates a population with the same structure:
//!
//! * `carrier` — 14 carriers with a skewed distribution; `WN`/`AA` are the
//!   popular carriers of queries 5–7, `US`/`F9` the rare ones of query 8,
//! * `distance` — whole-number miles, carrier-dependent mixture of short
//!   hops and long hauls,
//! * `elapsed_time` — `distance / cruise speed + taxi + noise` (whole
//!   minutes), so distance and elapsed time are strongly correlated (the
//!   correlation behind the paper's query-3 observation),
//! * `taxi_out` / `taxi_in` — whole minutes, mildly carrier-dependent.
//!
//! The marginals are the paper's four attribute pairs (C,E), (O,E), (I,E),
//! (D,E), built with explicit binners (the paper uses raw whole-number
//! projections; we bin to keep cell counts laptop-friendly — see
//! DESIGN.md).

use std::collections::HashMap;

use mosaic_stats::{standard_normal, Binner, Marginal};
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 14 carriers; indices 0/1 are the popular `WN`/`AA`, 10/11 the rare
/// `US`/`F9` of query 8.
pub const CARRIERS: [&str; 14] = [
    "WN", "AA", "DL", "UA", "OO", "EV", "B6", "AS", "NK", "HA", "US", "F9", "VX", "MQ",
];

/// Carrier probabilities (sum to 1); skewed like the real data, with `US`
/// and `F9` rare.
pub const CARRIER_PROBS: [f64; 14] = [
    0.21, 0.18, 0.15, 0.11, 0.09, 0.07, 0.05, 0.04, 0.025, 0.02, 0.012, 0.008, 0.015, 0.02,
];

/// Flights workload parameters.
#[derive(Debug, Clone)]
pub struct FlightsConfig {
    /// Population rows (paper: 426,411).
    pub population: usize,
    /// Sample fraction (paper: 0.05).
    pub sample_fraction: f64,
    /// Fraction of sampled tuples with `elapsed_time > 200` (paper: 0.95).
    pub long_flight_bias: f64,
    /// Bins per numeric attribute for the 2-D marginals.
    pub marginal_bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlightsConfig {
    fn default() -> Self {
        FlightsConfig {
            population: 100_000,
            sample_fraction: 0.05,
            long_flight_bias: 0.95,
            marginal_bins: 32,
            seed: 7,
        }
    }
}

impl FlightsConfig {
    /// Paper-scale population (426,411 rows).
    pub fn paper_scale() -> FlightsConfig {
        FlightsConfig {
            population: 426_411,
            ..FlightsConfig::default()
        }
    }
}

/// The generated flights workload.
pub struct FlightsData {
    /// Ground-truth population.
    pub population: Table,
    /// Biased 5 % sample (95 % long flights).
    pub sample: Table,
    /// The paper's four marginal pairs (C,E) (O,E) (I,E) (D,E), binned.
    pub marginals: Vec<Marginal>,
    /// Binners for the numeric attributes (shared by marginals and IPF).
    pub binners: HashMap<String, Binner>,
}

/// Flights schema: Table 1's attributes.
pub fn flights_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        Field::new("carrier", DataType::Str),
        Field::new("taxi_out", DataType::Int),
        Field::new("taxi_in", DataType::Int),
        Field::new("elapsed_time", DataType::Int),
        Field::new("distance", DataType::Int),
    ])
}

fn sample_carrier<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let mut u: f64 = rng.random();
    for (i, &p) in CARRIER_PROBS.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    CARRIER_PROBS.len() - 1
}

/// Generate one flight row: `(carrier_idx, taxi_out, taxi_in, elapsed,
/// distance)`.
fn generate_row<R: Rng + ?Sized>(rng: &mut R) -> (usize, i64, i64, i64, i64) {
    let c = sample_carrier(rng);
    // Carrier flavor: low-cost short-haul carriers fly shorter routes.
    let long_haul_share = match c {
        0 => 0.25,     // WN: mostly short hops
        1..=3 => 0.45, // AA/DL/UA: mixed networks
        9 => 0.70,     // HA: island long hauls
        10 => 0.30,    // US
        11 => 0.35,    // F9
        _ => 0.30,
    };
    let distance = if rng.random::<f64>() < long_haul_share {
        // Long haul: 800–2,800 miles.
        (800.0 + 2000.0 * rng.random::<f64>().powf(1.3)).round()
    } else {
        // Short hop: 100–900 miles.
        (100.0 + 800.0 * rng.random::<f64>().powf(1.6)).round()
    };
    // Hub congestion: big networks taxi longer.
    let taxi_base = match c {
        1..=3 => 18.0,
        0 => 13.0,
        _ => 15.0,
    };
    let taxi_out = (taxi_base + 4.0 * standard_normal(rng))
        .clamp(3.0, 60.0)
        .round();
    let taxi_in = (6.0 + 0.3 * taxi_base + 2.5 * standard_normal(rng))
        .clamp(2.0, 40.0)
        .round();
    // elapsed = air time + taxi + noise; cruise ~7.3 miles/min + 18 min
    // overhead for climb/descent.
    let air = distance / 7.3 + 18.0;
    let elapsed = (air + taxi_out + taxi_in + 6.0 * standard_normal(rng))
        .max(20.0)
        .round();
    (
        c,
        taxi_out as i64,
        taxi_in as i64,
        elapsed as i64,
        distance as i64,
    )
}

/// Generate the population, the biased sample, and the paper's marginals.
pub fn generate(config: &FlightsConfig) -> FlightsData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = flights_schema();
    let mut b = TableBuilder::with_capacity(schema.clone(), config.population);
    for _ in 0..config.population {
        let (c, o, ti, e, d) = generate_row(&mut rng);
        b.push_row(vec![
            Value::Str(CARRIERS[c].to_string()),
            o.into(),
            ti.into(),
            e.into(),
            d.into(),
        ])
        .expect("schema");
    }
    from_population(b.finish(), config)
}

/// Build the biased sample and marginals from an *existing* population
/// table — e.g. the real IDEBench flights CSV loaded via
/// `mosaic_storage::csv::read_csv_path` (it must carry the Table 1
/// attributes: carrier, taxi_out, taxi_in, elapsed_time, distance).
pub fn from_population(population: Table, config: &FlightsConfig) -> FlightsData {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let elapsed = population
        .column_by_name("elapsed_time")
        .expect("elapsed_time column");
    let mut long_rows: Vec<usize> = Vec::new();
    let mut short_rows: Vec<usize> = Vec::new();
    for i in 0..population.num_rows() {
        if elapsed.f64_at(i).unwrap_or(0.0) > 200.0 {
            long_rows.push(i);
        } else {
            short_rows.push(i);
        }
    }

    // Biased sample: `long_flight_bias` of the rows come from flights with
    // elapsed_time > 200 (paper: "a biased 5 percent sample … with a 95
    // percent bias"). Within each stratum the selection is additionally
    // tilted toward long distances and congested airports — real-world
    // selection bias is never a clean one-attribute cut, and this tilt is
    // exactly what the published (D,E)/(O,E) marginals let IPF and the
    // M-SWG correct while Unif cannot.
    let sample_size = ((population.num_rows() as f64) * config.sample_fraction).round() as usize;
    let n_long = ((sample_size as f64) * config.long_flight_bias).round() as usize;
    let n_short = sample_size.saturating_sub(n_long);
    let dist_col = population.column_by_name("distance").expect("distance");
    let taxi_col = population.column_by_name("taxi_out").expect("taxi_out");
    let mut chosen = Vec::with_capacity(sample_size);
    let pick = |pool: &[usize], k: usize, rng: &mut StdRng, out: &mut Vec<usize>| {
        // Weighted sampling without replacement (Efraimidis–Spirakis
        // exponential race): key = Exp(1)/w, keep the k smallest.
        let mut keyed: Vec<(f64, usize)> = pool
            .iter()
            .map(|&i| {
                let d = dist_col.f64_at(i).unwrap_or(0.0);
                let o = taxi_col.f64_at(i).unwrap_or(0.0);
                let w = (0.0012 * d + 0.06 * o).exp();
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                (-u.ln() / w, i)
            })
            .collect();
        let k = k.min(keyed.len());
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        out.extend(keyed[..k].iter().map(|&(_, i)| i));
    };
    pick(&long_rows, n_long, &mut rng, &mut chosen);
    pick(&short_rows, n_short, &mut rng, &mut chosen);
    let sample = population.take(&chosen);

    // Binners sized to each attribute's population range.
    let mut binners = HashMap::new();
    for attr in ["taxi_out", "taxi_in", "elapsed_time", "distance"] {
        let (lo, hi) = population
            .column_by_name(attr)
            .expect("attr")
            .numeric_range()
            .expect("non-empty");
        binners.insert(
            attr.to_string(),
            Binner::equal_width(lo, hi + 1.0, config.marginal_bins),
        );
    }
    let pairs = [
        ("carrier", "elapsed_time"),
        ("taxi_out", "elapsed_time"),
        ("taxi_in", "elapsed_time"),
        ("distance", "elapsed_time"),
    ];
    let marginals = pairs
        .iter()
        .map(|(a, b)| Marginal::from_table(&population, &[a, b], None, &binners).expect("marginal"))
        .collect();
    FlightsData {
        population,
        sample,
        marginals,
        binners,
    }
}

/// The eight aggregate queries of Table 2 (GROUP BY clauses restored; the
/// paper omits them for space).
pub fn table2_queries() -> Vec<(&'static str, String)> {
    vec![
        ("Q1", "SELECT AVG(distance) FROM F WHERE elapsed_time > 200".into()),
        ("Q2", "SELECT AVG(taxi_in) FROM F WHERE elapsed_time < 200".into()),
        ("Q3", "SELECT AVG(elapsed_time) FROM F WHERE distance > 1000".into()),
        ("Q4", "SELECT AVG(taxi_out) FROM F WHERE distance < 1000".into()),
        (
            "Q5",
            "SELECT carrier, AVG(distance) FROM F WHERE elapsed_time > 200 AND carrier IN ('WN','AA') GROUP BY carrier".into(),
        ),
        (
            "Q6",
            "SELECT carrier, AVG(taxi_in) FROM F WHERE elapsed_time < 200 AND carrier IN ('WN','AA') GROUP BY carrier".into(),
        ),
        (
            "Q7",
            "SELECT carrier, AVG(elapsed_time) FROM F WHERE distance > 1000 AND carrier IN ('WN','AA') GROUP BY carrier".into(),
        ),
        (
            "Q8",
            "SELECT carrier, AVG(taxi_out) FROM F WHERE distance < 1000 AND carrier IN ('US','F9') GROUP BY carrier".into(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlightsData {
        generate(&FlightsConfig {
            population: 20_000,
            ..FlightsConfig::default()
        })
    }

    #[test]
    fn carrier_probs_sum_to_one() {
        let s: f64 = CARRIER_PROBS.iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sum {s}");
    }

    #[test]
    fn sample_has_the_declared_bias() {
        let d = tiny();
        assert_eq!(d.sample.num_rows(), 1000);
        let e = d.sample.column_by_name("elapsed_time").unwrap();
        let long = (0..d.sample.num_rows())
            .filter(|&r| e.f64_at(r).unwrap() > 200.0)
            .count() as f64;
        let frac = long / d.sample.num_rows() as f64;
        assert!((frac - 0.95).abs() < 0.02, "long fraction {frac}");
    }

    #[test]
    fn population_is_unbiased_by_comparison() {
        let d = tiny();
        let e = d.population.column_by_name("elapsed_time").unwrap();
        let long = (0..d.population.num_rows())
            .filter(|&r| e.f64_at(r).unwrap() > 200.0)
            .count() as f64;
        let frac = long / d.population.num_rows() as f64;
        assert!(
            (0.15..0.75).contains(&frac),
            "population long fraction {frac} suspicious"
        );
    }

    #[test]
    fn distance_elapsed_strongly_correlated() {
        let d = tiny();
        let dist = d.population.column_by_name("distance").unwrap();
        let el = d.population.column_by_name("elapsed_time").unwrap();
        let n = d.population.num_rows() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for r in 0..d.population.num_rows() {
            let x = dist.f64_at(r).unwrap();
            let y = el.f64_at(r).unwrap();
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let corr = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        assert!(corr > 0.9, "corr {corr}");
    }

    #[test]
    fn rare_carriers_are_rare_but_present() {
        let d = tiny();
        let c = d.population.column_by_name("carrier").unwrap();
        let count = |name: &str| {
            (0..d.population.num_rows())
                .filter(|&r| c.value(r) == Value::Str(name.into()))
                .count() as f64
                / d.population.num_rows() as f64
        };
        assert!(count("WN") > 0.15);
        let us = count("US");
        let f9 = count("F9");
        assert!(us > 0.001 && us < 0.03, "US freq {us}");
        assert!(f9 > 0.001 && f9 < 0.03, "F9 freq {f9}");
    }

    #[test]
    fn marginals_cover_the_four_pairs() {
        let d = tiny();
        assert_eq!(d.marginals.len(), 4);
        assert_eq!(
            d.marginals[0].attrs(),
            &["carrier".to_string(), "elapsed_time".into()]
        );
        for m in &d.marginals {
            assert!((m.total() - 20_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn queries_parse() {
        for (id, q) in table2_queries() {
            assert!(mosaic_sql::parse(&q).is_ok(), "{id} failed to parse");
        }
    }
}
