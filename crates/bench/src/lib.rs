//! # mosaic-bench
//!
//! Workload generators, metrics, and experiment harnesses that regenerate
//! **every table and figure** of the Mosaic paper's evaluation (§5.3):
//!
//! | Paper artifact | Module / binary |
//! |---|---|
//! | Fig. 5 (spiral population, biased vs M-SWG sample) | [`spiral`], `bin/fig5` |
//! | Fig. 6 (range-query error vs box width, Unif vs M-SWG) | [`experiments::fig6`], `bin/fig6` |
//! | Table 1 (flights attributes + encoded dims) | [`flights`], `bin/table1` |
//! | Table 2 + Fig. 7 (queries 1–8, Unif vs IPF vs M-SWG) | [`experiments::fig7`], `bin/fig7` |
//! | §3.3 visibility trade-off table | [`experiments::visibility`], `bin/visibility` |
//! | §5.3 model-selection protocol (200 random queries) | [`experiments::selection`], `bin/selection` |
//!
//! Since the IDEBench flights CSV is not available offline, [`flights`]
//! generates a synthetic population with the same five attributes, the
//! same skewed carrier distribution (including the rare `US`/`F9`
//! carriers the paper calls out), the same correlations
//! (elapsed_time ≈ distance/speed + taxi), and the same biased-sample
//! construction (5 % sample, 95 % of tuples with `elapsed_time > 200`).
//! See DESIGN.md for the substitution rationale.

pub mod experiments;
pub mod flights;
pub mod metrics;
pub mod spiral;
