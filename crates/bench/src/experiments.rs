//! Experiment runners, one per paper artifact. Each returns plain structs
//! the harness binaries render; everything is deterministic given the
//! seeds in the configs.

use std::collections::HashMap;

use mosaic_core::{run_select, MosaicDb, OpenBackend, Visibility};
use mosaic_sql::{parse, SelectItem, SelectStmt, Statement};
use mosaic_stats::{Ipf, IpfConfig};
use mosaic_storage::Table;
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::flights::{self, FlightsConfig};
use crate::metrics::{group_percent_diff, percent_diff, Summary};
use crate::spiral::{self, SpiralConfig};

/// Parse a single SELECT statement.
fn select_stmt(sql: &str) -> SelectStmt {
    match parse(sql).expect("query parses").pop().expect("one stmt") {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

/// Run an aggregate query over a table and flatten the answer to
/// `(group key, value)` pairs (`group = None` for scalar aggregates).
pub fn answer(sql: &str, table: &Table, weights: Option<&[f64]>) -> Vec<(Option<String>, f64)> {
    let stmt = select_stmt(sql);
    let out = run_select(&stmt, table, weights).expect("query runs");
    flatten_answer(&stmt, &out)
}

fn flatten_answer(stmt: &SelectStmt, out: &Table) -> Vec<(Option<String>, f64)> {
    let is_agg: Vec<bool> = stmt
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        })
        .collect();
    let key_cols: Vec<usize> = (0..is_agg.len()).filter(|&i| !is_agg[i]).collect();
    let val_col = (0..is_agg.len())
        .find(|&i| is_agg[i])
        .expect("aggregate column");
    let mut rows = Vec::with_capacity(out.num_rows());
    for r in 0..out.num_rows() {
        let key = if key_cols.is_empty() {
            None
        } else {
            Some(
                key_cols
                    .iter()
                    .map(|&c| out.value(r, c).to_string())
                    .collect::<Vec<_>>()
                    .join("|"),
            )
        };
        if let Some(v) = out.value(r, val_col).as_f64() {
            rows.push((key, v));
        }
    }
    rows
}

/// Mean percent difference of `estimate` vs `truth` over the truth's
/// groups (missing groups count as 100 %); `None` when the truth or the
/// estimate is entirely empty (the paper's "not-empty" filter).
pub fn answer_error(
    estimate: &[(Option<String>, f64)],
    truth: &[(Option<String>, f64)],
) -> Option<f64> {
    if truth.is_empty() || estimate.is_empty() {
        return None;
    }
    let est: HashMap<&Option<String>, f64> = estimate.iter().map(|(k, v)| (k, *v)).collect();
    let diffs: Vec<f64> = truth
        .iter()
        .filter_map(|(k, t)| group_percent_diff(est.get(k).copied(), Some(*t)))
        .collect();
    if diffs.is_empty() {
        None
    } else {
        Some(diffs.iter().sum::<f64>() / diffs.len() as f64)
    }
}

// ---------------------------------------------------------------- Fig. 6

/// Fig. 6 configuration: random 2-D range queries on the spiral at
/// varying box widths.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Spiral workload parameters.
    pub spiral: SpiralConfig,
    /// M-SWG training parameters.
    pub swg: SwgConfig,
    /// Random queries per coverage level (paper: 100).
    pub queries: usize,
    /// Generated samples to average over (paper: 10).
    pub generated_samples: usize,
    /// Fractional box-width coverages (paper: 0.1 – 0.8).
    pub coverages: Vec<f64>,
    /// Query RNG seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            spiral: SpiralConfig::default(),
            swg: SwgConfig::paper_spiral(),
            queries: 100,
            generated_samples: 10,
            coverages: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            seed: 1,
        }
    }
}

/// One Fig. 6 row: error distributions at one coverage level.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Fractional box-width coverage.
    pub coverage: f64,
    /// Uniformly-reweighted biased sample (the AQP baseline).
    pub unif: Summary,
    /// M-SWG generated samples.
    pub mswg: Summary,
}

/// Run the Fig. 6 experiment.
pub fn fig6(config: &Fig6Config) -> Vec<Fig6Row> {
    let data = spiral::generate(&config.spiral);
    let pop_n = data.population.num_rows() as f64;
    let model =
        MSwg::fit(&data.sample, &data.marginals, config.swg.clone()).expect("spiral M-SWG fits");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let gen_tables: Vec<Table> = (0..config.generated_samples)
        .map(|_| model.generate(data.sample.num_rows(), &mut rng))
        .collect();
    let unif_w = vec![pop_n / data.sample.num_rows() as f64; data.sample.num_rows()];
    let gen_w = vec![pop_n / data.sample.num_rows() as f64; data.sample.num_rows()];

    let (xmin, xmax) = (0.0, 1.0);
    let (ymin, ymax) = (-0.1, 0.9);
    let mut rows = Vec::with_capacity(config.coverages.len());
    for &coverage in &config.coverages {
        let wx = coverage * (xmax - xmin);
        let wy = coverage * (ymax - ymin);
        let mut unif_err = Vec::with_capacity(config.queries);
        let mut mswg_err = Vec::with_capacity(config.queries);
        for _ in 0..config.queries {
            let x0 = xmin + rng.random::<f64>() * (xmax - xmin - wx);
            let y0 = ymin + rng.random::<f64>() * (ymax - ymin - wy);
            let truth = spiral::count_in_box(&data.population, x0, x0 + wx, y0, y0 + wy);
            let unif =
                spiral::weighted_count_in_box(&data.sample, &unif_w, x0, x0 + wx, y0, y0 + wy);
            // Average percent difference across the generated samples
            // (paper: "report the average percent difference across the
            // different samples").
            let mut gen_diffs = Vec::with_capacity(gen_tables.len());
            for g in &gen_tables {
                let est = spiral::weighted_count_in_box(g, &gen_w, x0, x0 + wx, y0, y0 + wy);
                gen_diffs.push(percent_diff(est, truth) / 100.0);
            }
            unif_err.push(percent_diff(unif, truth) / 100.0);
            mswg_err.push(gen_diffs.iter().sum::<f64>() / gen_diffs.len() as f64);
        }
        rows.push(Fig6Row {
            coverage,
            unif: Summary::of(&unif_err),
            mswg: Summary::of(&mswg_err),
        });
    }
    rows
}

// ---------------------------------------------------------------- Fig. 7

/// Fig. 7 / Table 2 configuration.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Flights workload parameters.
    pub flights: FlightsConfig,
    /// M-SWG training parameters.
    pub swg: SwgConfig,
    /// Generated samples to combine (paper: 10).
    pub generated_samples: usize,
    /// IPF settings.
    pub ipf: IpfConfig,
    /// Generation seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            flights: FlightsConfig::default(),
            // The paper's flights config, with laptop-scale projection
            // and epoch counts (see DESIGN.md). ~30 s of training on
            // one core; `--full` harness flags raise both.
            swg: SwgConfig::paper_flights()
                .with_projections(96)
                .with_epochs(60),
            generated_samples: 10,
            ipf: IpfConfig::default(),
            seed: 2,
        }
    }
}

/// Error of each method on one Table 2 query.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Query id (Q1–Q8).
    pub id: &'static str,
    /// Uniform reweighting (default AQP baseline).
    pub unif: Option<f64>,
    /// IPF (Mosaic's SEMI-OPEN technique).
    pub ipf: Option<f64>,
    /// M-SWG (Mosaic's OPEN technique).
    pub mswg: Option<f64>,
}

/// Everything fig7 needs, reusable by the ablation harnesses.
pub struct Fig7Artifacts {
    /// The generated workload.
    pub data: flights::FlightsData,
    /// IPF-fitted weights for the sample.
    pub ipf_weights: Vec<f64>,
    /// Generated tables from the trained M-SWG.
    pub generated: Vec<Table>,
}

/// Prepare the flights workload, IPF weights, and M-SWG generations.
pub fn fig7_prepare(config: &Fig7Config) -> Fig7Artifacts {
    let data = flights::generate(&config.flights);
    let ipf = Ipf::new(&data.sample, &data.marginals, &data.binners).expect("ipf indexes");
    let (ipf_weights, _report) = ipf.fit(None, &config.ipf);
    let model =
        MSwg::fit(&data.sample, &data.marginals, config.swg.clone()).expect("flights M-SWG fits");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let generated = (0..config.generated_samples)
        .map(|_| model.generate(data.sample.num_rows(), &mut rng))
        .collect();
    Fig7Artifacts {
        data,
        ipf_weights,
        generated,
    }
}

/// Combine per-generated-sample answers: groups present in all answers,
/// averaged (paper §5.3 protocol).
pub fn combine_generated_answers(
    answers: &[Vec<(Option<String>, f64)>],
) -> Vec<(Option<String>, f64)> {
    let mut acc: HashMap<Option<String>, (usize, f64)> = HashMap::new();
    for ans in answers {
        for (k, v) in ans {
            let e = acc.entry(k.clone()).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += v;
        }
    }
    acc.into_iter()
        .filter(|(_, (n, _))| *n == answers.len())
        .map(|(k, (n, s))| (k, s / n as f64))
        .collect()
}

/// Run the Fig. 7 experiment (queries 1–8 of Table 2).
pub fn fig7(config: &Fig7Config) -> Vec<Fig7Row> {
    let art = fig7_prepare(config);
    fig7_rows(config, &art)
}

/// Score the Table 2 queries against prepared artifacts.
pub fn fig7_rows(config: &Fig7Config, art: &Fig7Artifacts) -> Vec<Fig7Row> {
    let data = &art.data;
    let n = data.sample.num_rows() as f64;
    let pop_n = data.population.num_rows() as f64;
    let unif_w = vec![pop_n / n; data.sample.num_rows()];
    let gen_w = vec![pop_n / n; data.sample.num_rows()];
    let mut rows = Vec::new();
    for (id, sql) in flights::table2_queries() {
        let truth = answer(&sql, &data.population, None);
        let unif = answer(&sql, &data.sample, Some(&unif_w));
        let ipf = answer(&sql, &data.sample, Some(&art.ipf_weights));
        let per_gen: Vec<_> = art
            .generated
            .iter()
            .map(|g| {
                let w = vec![gen_w[0]; g.num_rows()];
                answer(&sql, g, Some(&w))
            })
            .collect();
        let mswg = combine_generated_answers(&per_gen);
        let _ = config;
        rows.push(Fig7Row {
            id,
            unif: answer_error(&unif, &truth),
            ipf: answer_error(&ipf, &truth),
            mswg: answer_error(&mswg, &truth),
        });
    }
    rows
}

// ------------------------------------------------------- §5.3 selection

/// The model-selection protocol of §5.3: random continuous-attribute
/// queries with the Q1–Q4 template, scored only when both the truth and
/// the estimate are non-empty.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Queries where both answers were non-empty.
    pub scored: usize,
    /// Mean percent error per method.
    pub unif_mean: f64,
    /// IPF mean percent error.
    pub ipf_mean: f64,
    /// M-SWG mean percent error.
    pub mswg_mean: f64,
    /// Queries where M-SWG beat Unif.
    pub mswg_wins: usize,
    /// Queries where IPF beat Unif.
    pub ipf_wins: usize,
}

/// Run `queries` random continuous queries (paper: 200).
pub fn selection(config: &Fig7Config, queries: usize) -> SelectionResult {
    let art = fig7_prepare(config);
    let data = &art.data;
    let n = data.sample.num_rows() as f64;
    let pop_n = data.population.num_rows() as f64;
    let unif_w = vec![pop_n / n; data.sample.num_rows()];
    let numeric = ["taxi_out", "taxi_in", "elapsed_time", "distance"];
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(77));
    let mut unif_errs = Vec::new();
    let mut ipf_errs = Vec::new();
    let mut mswg_errs = Vec::new();
    for _ in 0..queries {
        let a = numeric[rng.random_range(0..numeric.len())];
        let mut b = numeric[rng.random_range(0..numeric.len())];
        while b == a {
            b = numeric[rng.random_range(0..numeric.len())];
        }
        let (lo, hi) = data
            .population
            .column_by_name(b)
            .expect("attr")
            .numeric_range()
            .expect("non-empty");
        let thr = lo + rng.random::<f64>() * (hi - lo);
        let op = if rng.random::<bool>() { ">" } else { "<" };
        let sql = format!("SELECT AVG({a}) FROM F WHERE {b} {op} {thr:.1}");
        let truth = answer(&sql, &data.population, None);
        if truth.is_empty() {
            continue;
        }
        let unif = answer(&sql, &data.sample, Some(&unif_w));
        let ipf = answer(&sql, &data.sample, Some(&art.ipf_weights));
        let per_gen: Vec<_> = art
            .generated
            .iter()
            .map(|g| answer(&sql, g, Some(&vec![pop_n / n; g.num_rows()])))
            .collect();
        let mswg = combine_generated_answers(&per_gen);
        // The paper's filter: both the true answer and the M-SWG answer
        // non-empty.
        let (Some(ue), Some(ie), Some(me)) = (
            answer_error(&unif, &truth),
            answer_error(&ipf, &truth),
            answer_error(&mswg, &truth),
        ) else {
            continue;
        };
        unif_errs.push(ue);
        ipf_errs.push(ie);
        mswg_errs.push(me);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    SelectionResult {
        scored: unif_errs.len(),
        unif_mean: mean(&unif_errs),
        ipf_mean: mean(&ipf_errs),
        mswg_mean: mean(&mswg_errs),
        mswg_wins: mswg_errs
            .iter()
            .zip(&unif_errs)
            .filter(|(m, u)| m < u)
            .count(),
        ipf_wins: ipf_errs
            .iter()
            .zip(&unif_errs)
            .filter(|(i, u)| i < u)
            .count(),
    }
}

// --------------------------------------------- §3.3 visibility trade-off

/// False-negative / false-positive counts per visibility level, at the
/// granularity of GROUP BY carrier groups.
#[derive(Debug, Clone)]
pub struct VisibilityRow {
    /// Visibility level.
    pub visibility: Visibility,
    /// Groups in the population missing from the answer.
    pub false_negatives: usize,
    /// Groups in the answer that don't exist in the population.
    pub false_positives: usize,
    /// Groups returned.
    pub returned: usize,
}

/// §3.3 experiment: drop several carriers from the sample and compare
/// which GROUP BY groups each visibility level recovers. Exercises the
/// full SQL path through [`MosaicDb`].
pub fn visibility(
    flights_config: &FlightsConfig,
    swg: SwgConfig,
    dropped_carriers: &[&str],
) -> Vec<VisibilityRow> {
    let data = flights::generate(flights_config);
    let mut db = MosaicDb::new();
    db.options_mut().open.backend = OpenBackend::Swg(swg);
    db.options_mut().open.num_generated = 3;
    db.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT);
         CREATE SAMPLE FlightSample AS (SELECT * FROM Flights);",
    )
    .expect("ddl");
    // Metadata: the (carrier, elapsed) marginal plus the three others.
    for (i, m) in data.marginals.iter().enumerate() {
        db.add_metadata(&format!("Flights_M{i}"), "Flights", m.clone())
            .expect("metadata");
    }
    for (attr, binner) in &data.binners {
        db.register_binner(attr, binner.clone());
    }
    // Ingest the biased sample minus the dropped carriers.
    let keep: Vec<usize> = (0..data.sample.num_rows())
        .filter(|&r| {
            let c = data.sample.value(r, 0).to_string();
            !dropped_carriers.contains(&c.as_str())
        })
        .collect();
    db.ingest_sample("FlightSample", data.sample.take(&keep))
        .expect("ingest");

    let truth_groups: std::collections::HashSet<String> = answer(
        "SELECT carrier, COUNT(*) FROM F GROUP BY carrier",
        &data.population,
        None,
    )
    .into_iter()
    .filter_map(|(k, _)| k)
    .collect();

    let mut rows = Vec::new();
    for vis in [Visibility::Closed, Visibility::SemiOpen, Visibility::Open] {
        let kw = match vis {
            Visibility::Closed => "CLOSED",
            Visibility::SemiOpen => "SEMI-OPEN",
            Visibility::Open => "OPEN",
        };
        let out = db
            .execute(&format!(
                "SELECT {kw} carrier, COUNT(*) FROM Flights GROUP BY carrier"
            ))
            .expect("visibility query");
        let got: std::collections::HashSet<String> = (0..out.table.num_rows())
            .map(|r| out.table.value(r, 0).to_string())
            .collect();
        rows.push(VisibilityRow {
            visibility: vis,
            false_negatives: truth_groups.difference(&got).count(),
            false_positives: got.difference(&truth_groups).count(),
            returned: got.len(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_swg() -> SwgConfig {
        SwgConfig::default()
            .with_hidden_dim(16)
            .with_hidden_layers(1)
            .with_latent_dim(Some(2))
            .with_projections(8)
            .with_batch_size(64)
            .with_epochs(4)
            .with_steps_per_epoch(Some(2))
            .with_coverage_subsample(128)
    }

    #[test]
    fn answer_flattens_groups_and_scalars() {
        let d = flights::generate(&FlightsConfig {
            population: 2000,
            ..FlightsConfig::default()
        });
        let scalar = answer("SELECT AVG(distance) FROM F", &d.population, None);
        assert_eq!(scalar.len(), 1);
        assert!(scalar[0].0.is_none());
        let groups = answer(
            "SELECT carrier, COUNT(*) FROM F GROUP BY carrier",
            &d.population,
            None,
        );
        assert!(groups.len() > 5);
        assert!(groups.iter().all(|(k, _)| k.is_some()));
    }

    #[test]
    fn answer_error_scores_missing_groups() {
        let truth = vec![(Some("a".to_string()), 10.0), (Some("b".to_string()), 10.0)];
        let est = vec![(Some("a".to_string()), 11.0)];
        // a: 10% error, b missing: 100% -> mean 55%.
        assert_eq!(answer_error(&est, &truth), Some(55.0));
        assert_eq!(answer_error(&[], &truth), None);
    }

    #[test]
    fn combine_keeps_only_common_groups() {
        let a = vec![(Some("x".to_string()), 1.0), (Some("y".to_string()), 3.0)];
        let b = vec![(Some("x".to_string()), 3.0)];
        let c = combine_generated_answers(&[a, b]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], (Some("x".to_string()), 2.0));
    }

    #[test]
    fn fig6_smoke() {
        let cfg = Fig6Config {
            spiral: SpiralConfig {
                population: 2000,
                sample: 300,
                ..SpiralConfig::default()
            },
            swg: tiny_swg(),
            queries: 10,
            generated_samples: 2,
            coverages: vec![0.4],
            seed: 3,
        };
        let rows = fig6(&cfg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].unif.n, 10);
        assert!(rows[0].unif.mean.is_finite());
        assert!(rows[0].mswg.mean.is_finite());
    }

    #[test]
    fn fig7_smoke() {
        let cfg = Fig7Config {
            flights: FlightsConfig {
                population: 4000,
                marginal_bins: 8,
                ..FlightsConfig::default()
            },
            swg: tiny_swg(),
            generated_samples: 2,
            ..Fig7Config::default()
        };
        let rows = fig7(&cfg);
        assert_eq!(rows.len(), 8);
        // The continuous queries (Q1–Q4) are always scorable for unif and
        // ipf; Q8's rare carriers may be absent from a tiny sample (the
        // paper observes the same failure mode at full scale for M-SWG).
        for r in rows.iter().take(4) {
            assert!(r.unif.is_some(), "{} unif missing", r.id);
            assert!(r.ipf.is_some(), "{} ipf missing", r.id);
        }
    }

    #[test]
    fn visibility_smoke() {
        let rows = visibility(
            &FlightsConfig {
                population: 4000,
                marginal_bins: 8,
                ..FlightsConfig::default()
            },
            tiny_swg(),
            &["US", "F9", "HA"],
        );
        assert_eq!(rows.len(), 3);
        // CLOSED and SEMI-OPEN cannot return the dropped carriers.
        assert!(rows[0].false_negatives >= 3);
        assert_eq!(rows[0].false_positives, 0);
        assert_eq!(rows[1].false_positives, 0);
    }
}
