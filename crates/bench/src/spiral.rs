//! The 2-D spiral workload of the paper's Fig. 5/6: a spiral-shaped
//! population, a biased sample over it, and 1-D population marginals.

use std::collections::HashMap;

use mosaic_stats::{standard_normal, Binner, Marginal};
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Spiral workload parameters.
#[derive(Debug, Clone)]
pub struct SpiralConfig {
    /// Population size.
    pub population: usize,
    /// Biased sample size (paper: 10,000).
    pub sample: usize,
    /// Gaussian noise added around the spiral curve.
    pub noise: f64,
    /// Bias strength: tuples are included with probability ∝
    /// `exp(bias · (x + y))`, concentrating the sample in one arm of the
    /// spiral (the paper's sample visibly over-covers part of the curve).
    pub bias: f64,
    /// Histogram bins for the 1-D marginals over `x` and `y`.
    pub marginal_bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpiralConfig {
    fn default() -> Self {
        SpiralConfig {
            population: 100_000,
            sample: 10_000,
            noise: 0.01,
            bias: 4.0,
            marginal_bins: 50,
            seed: 42,
        }
    }
}

/// A generated spiral workload: population table, biased sample table, and
/// the 1-D marginals over both attributes.
pub struct SpiralData {
    /// The full population (ground truth for error computation).
    pub population: Table,
    /// The biased sample.
    pub sample: Table,
    /// 1-D marginals over `x` and `y`, binned with [`SpiralConfig::marginal_bins`].
    pub marginals: Vec<Marginal>,
    /// The binners used for the marginals (needed by IPF).
    pub binners: HashMap<String, Binner>,
}

fn spiral_schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        Field::new("x", DataType::Float),
        Field::new("y", DataType::Float),
    ])
}

/// Generate the spiral population, biased sample, and marginals.
///
/// The population follows the experiments of Cai et al. (paper reference
/// \[9\]): points along an Archimedean spiral with Gaussian noise, scaled
/// into roughly the unit square (matching the axes of Fig. 5).
pub fn generate(config: &SpiralConfig) -> SpiralData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = spiral_schema();
    let mut pop = TableBuilder::with_capacity(schema.clone(), config.population);
    let mut xs = Vec::with_capacity(config.population);
    let mut ys = Vec::with_capacity(config.population);
    for _ in 0..config.population {
        let t = 1.0 + 2.5 * std::f64::consts::PI * rng.random::<f64>();
        let r = t / (1.0 + 2.5 * std::f64::consts::PI);
        let x = 0.5 + 0.5 * r * t.cos() + config.noise * standard_normal(&mut rng);
        let y = 0.4 + 0.5 * r * t.sin() + config.noise * standard_normal(&mut rng);
        xs.push(x);
        ys.push(y);
        pop.push_row(vec![x.into(), y.into()]).expect("schema");
    }
    let population = pop.finish();

    // Biased inclusion: probability ∝ exp(bias·(x+y)), normalized so the
    // expected sample size matches. Rejection sampling row by row.
    let scores: Vec<f64> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (config.bias * (x + y)).exp())
        .collect();
    let max_score = scores.iter().cloned().fold(f64::MIN, f64::max);
    let mut chosen: Vec<usize> = Vec::with_capacity(config.sample);
    // Loop until we have the sample size (each pass scans the population).
    'outer: loop {
        for (i, &s) in scores.iter().enumerate() {
            if rng.random::<f64>() < s / max_score {
                chosen.push(i);
                if chosen.len() >= config.sample {
                    break 'outer;
                }
            }
        }
    }
    let sample = population.take(&chosen);

    let mut binners = HashMap::new();
    binners.insert(
        "x".to_string(),
        Binner::equal_width(-0.2, 1.2, config.marginal_bins),
    );
    binners.insert(
        "y".to_string(),
        Binner::equal_width(-0.2, 1.2, config.marginal_bins),
    );
    let marginals = vec![
        Marginal::from_table(&population, &["x"], None, &binners).expect("x marginal"),
        Marginal::from_table(&population, &["y"], None, &binners).expect("y marginal"),
    ];
    SpiralData {
        population,
        sample,
        marginals,
        binners,
    }
}

/// Count population tuples falling in an axis-aligned box (ground truth
/// for the Fig. 6 range queries).
pub fn count_in_box(table: &Table, x0: f64, x1: f64, y0: f64, y1: f64) -> f64 {
    let xs = table.column_by_name("x").expect("x");
    let ys = table.column_by_name("y").expect("y");
    let mut c = 0.0;
    for r in 0..table.num_rows() {
        let (x, y) = (
            xs.f64_at(r).unwrap_or(f64::NAN),
            ys.f64_at(r).unwrap_or(f64::NAN),
        );
        if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
            c += 1.0;
        }
    }
    c
}

/// Weighted count in a box.
#[allow(clippy::needless_range_loop)]
pub fn weighted_count_in_box(
    table: &Table,
    weights: &[f64],
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
) -> f64 {
    let xs = table.column_by_name("x").expect("x");
    let ys = table.column_by_name("y").expect("y");
    let mut c = 0.0;
    for r in 0..table.num_rows() {
        let (x, y) = (
            xs.f64_at(r).unwrap_or(f64::NAN),
            ys.f64_at(r).unwrap_or(f64::NAN),
        );
        if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
            c += weights[r];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SpiralData {
        generate(&SpiralConfig {
            population: 2000,
            sample: 400,
            ..SpiralConfig::default()
        })
    }

    #[test]
    fn sizes_match_config() {
        let d = tiny();
        assert_eq!(d.population.num_rows(), 2000);
        assert_eq!(d.sample.num_rows(), 400);
        assert_eq!(d.marginals.len(), 2);
        assert!((d.marginals[0].total() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn sample_is_biased_toward_high_xy() {
        let d = tiny();
        let mean = |t: &Table, col: &str| {
            let c = t.column_by_name(col).unwrap();
            (0..t.num_rows()).filter_map(|r| c.f64_at(r)).sum::<f64>() / t.num_rows() as f64
        };
        let pop_mean = mean(&d.population, "x") + mean(&d.population, "y");
        let samp_mean = mean(&d.sample, "x") + mean(&d.sample, "y");
        assert!(
            samp_mean > pop_mean + 0.02,
            "sample not biased: pop {pop_mean}, sample {samp_mean}"
        );
    }

    #[test]
    fn population_roughly_in_unit_square() {
        let d = tiny();
        let (minx, maxx) = d
            .population
            .column_by_name("x")
            .unwrap()
            .numeric_range()
            .unwrap();
        assert!(minx > -0.3 && maxx < 1.3, "x range [{minx}, {maxx}]");
    }

    #[test]
    fn box_counts_consistent() {
        let d = tiny();
        let all = count_in_box(&d.population, -1.0, 2.0, -1.0, 2.0);
        assert_eq!(all, 2000.0);
        let w = vec![2.0; d.sample.num_rows()];
        let wc = weighted_count_in_box(&d.sample, &w, -1.0, 2.0, -1.0, 2.0);
        assert_eq!(wc, 800.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.population.value(0, 0), b.population.value(0, 0));
        assert_eq!(a.sample.value(10, 1), b.sample.value(10, 1));
    }
}
