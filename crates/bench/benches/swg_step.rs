//! Criterion bench: M-SWG training throughput vs batch size and network
//! width (one epoch of fixed steps), plus generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_bench::spiral::{self, SpiralConfig};
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_swg(c: &mut Criterion) {
    let data = spiral::generate(&SpiralConfig {
        population: 20_000,
        sample: 2_000,
        ..SpiralConfig::default()
    });
    let mut group = c.benchmark_group("swg");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &batch in &[128usize, 512] {
        let cfg = SwgConfig::paper_spiral()
            .with_batch_size(batch)
            .with_epochs(1)
            .with_steps_per_epoch(Some(4));
        group.bench_with_input(
            BenchmarkId::new("train_4_steps_batch", batch),
            &cfg,
            |b, cfg| {
                b.iter(|| MSwg::fit(black_box(&data.sample), &data.marginals, cfg.clone()).unwrap())
            },
        );
    }
    for &hidden in &[50usize, 200] {
        let cfg = SwgConfig::paper_spiral()
            .with_hidden_dim(hidden)
            .with_epochs(1)
            .with_steps_per_epoch(Some(4))
            .with_batch_size(256);
        group.bench_with_input(
            BenchmarkId::new("train_4_steps_hidden", hidden),
            &cfg,
            |b, cfg| {
                b.iter(|| MSwg::fit(black_box(&data.sample), &data.marginals, cfg.clone()).unwrap())
            },
        );
    }
    // Generation throughput from a trained model.
    let cfg = SwgConfig::paper_spiral()
        .with_epochs(3)
        .with_batch_size(256);
    let model = MSwg::fit(&data.sample, &data.marginals, cfg).unwrap();
    group.bench_function("generate_10k_rows", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(model.generate(10_000, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_swg);
criterion_main!(benches);
