//! Criterion bench: exact 1-D Wasserstein and sliced Wasserstein
//! throughput — the inner loop of M-SWG training, whose exactness is what
//! lets Mosaic drop the discriminator network (paper §5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_stats::{
    random_unit_vectors, sliced_wasserstein, standard_normal, wasserstein_1d, WassersteinOrder,
    WeightedEmpirical,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_wasserstein(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("wasserstein");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = WeightedEmpirical::from_values((0..n).map(|_| standard_normal(&mut rng)));
        let b = WeightedEmpirical::from_values((0..n).map(|_| 1.0 + standard_normal(&mut rng)));
        group.bench_with_input(
            BenchmarkId::new("exact_1d_w1", n),
            &(a, b),
            |bch, (a, b)| {
                bch.iter(|| wasserstein_1d(black_box(a), black_box(b), WassersteinOrder::W1))
            },
        );
    }
    // Sliced W over 2-D clouds vs projection count.
    let cloud_a: Vec<(Vec<f64>, f64)> = (0..2000)
        .map(|_| {
            (
                vec![standard_normal(&mut rng), standard_normal(&mut rng)],
                1.0,
            )
        })
        .collect();
    let cloud_b: Vec<(Vec<f64>, f64)> = (0..2000)
        .map(|_| {
            (
                vec![2.0 + standard_normal(&mut rng), standard_normal(&mut rng)],
                1.0,
            )
        })
        .collect();
    for &p in &[10usize, 100, 1000] {
        let proj = random_unit_vectors(2, p, &mut rng);
        group.bench_with_input(BenchmarkId::new("sliced_2d", p), &proj, |bch, proj| {
            bch.iter(|| {
                sliced_wasserstein(
                    black_box(&cloud_a),
                    black_box(&cloud_b),
                    proj,
                    WassersteinOrder::W2Squared,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wasserstein);
criterion_main!(benches);
