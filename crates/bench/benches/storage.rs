//! Criterion bench: columnar kernel throughput (filter, take, group-by
//! aggregation) — the substrate every visibility level runs on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_core::run_select_parallel;
use mosaic_sql::{parse, Statement};
use mosaic_storage::Bitmap;
use std::hint::black_box;

fn stmt(sql: &str) -> mosaic_sql::SelectStmt {
    match parse(sql).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        _ => unreachable!(),
    }
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &n in &[10_000usize, 100_000] {
        let data = flights::generate(&FlightsConfig {
            population: n,
            marginal_bins: 8,
            ..FlightsConfig::default()
        });
        let t = &data.population;
        group.bench_with_input(BenchmarkId::new("filter_bitmap", n), t, |b, t| {
            let sel = Bitmap::from_iter((0..t.num_rows()).map(|i| i % 3 == 0));
            b.iter(|| black_box(t.filter(&sel)))
        });
        group.bench_with_input(BenchmarkId::new("take_half", n), t, |b, t| {
            let idx: Vec<usize> = (0..t.num_rows()).step_by(2).collect();
            b.iter(|| black_box(t.take(&idx)))
        });
        group.bench_with_input(BenchmarkId::new("sort_by_distance", n), t, |b, t| {
            b.iter(|| black_box(t.sort_by(&["distance"], &[false]).unwrap()))
        });
        let agg = stmt(
            "SELECT carrier, COUNT(*), AVG(distance), MAX(elapsed_time) FROM t \
             WHERE distance > 500 GROUP BY carrier",
        );
        group.bench_with_input(BenchmarkId::new("filter_group_agg", n), t, |b, t| {
            b.iter(|| black_box(run_select_parallel(&agg, t, None, 1).unwrap()))
        });
        let weights = vec![1.5; t.num_rows()];
        group.bench_with_input(BenchmarkId::new("weighted_group_agg", n), t, |b, t| {
            b.iter(|| black_box(run_select_parallel(&agg, t, Some(&weights), 1).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
