//! Criterion bench: columnar kernel throughput (filter, take, group-by
//! aggregation) — the substrate every visibility level runs on — plus
//! dictionary-encoding microbenches (encode cost, code-level group-by /
//! comparison / sort vs their plain per-row-string counterparts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_core::run_select_parallel;
use mosaic_sql::{parse, Statement};
use mosaic_storage::{Bitmap, Column, DataType, Field, Schema, Table};
use std::hint::black_box;

fn stmt(sql: &str) -> mosaic_sql::SelectStmt {
    match parse(sql).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        _ => unreachable!(),
    }
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &n in &[10_000usize, 100_000] {
        let data = flights::generate(&FlightsConfig {
            population: n,
            marginal_bins: 8,
            ..FlightsConfig::default()
        });
        let t = &data.population;
        group.bench_with_input(BenchmarkId::new("filter_bitmap", n), t, |b, t| {
            let sel = Bitmap::from_iter((0..t.num_rows()).map(|i| i % 3 == 0));
            b.iter(|| black_box(t.filter(&sel)))
        });
        group.bench_with_input(BenchmarkId::new("take_half", n), t, |b, t| {
            let idx: Vec<usize> = (0..t.num_rows()).step_by(2).collect();
            b.iter(|| black_box(t.take(&idx)))
        });
        group.bench_with_input(BenchmarkId::new("sort_by_distance", n), t, |b, t| {
            b.iter(|| black_box(t.sort_by(&["distance"], &[false]).unwrap()))
        });
        let agg = stmt(
            "SELECT carrier, COUNT(*), AVG(distance), MAX(elapsed_time) FROM t \
             WHERE distance > 500 GROUP BY carrier",
        );
        group.bench_with_input(BenchmarkId::new("filter_group_agg", n), t, |b, t| {
            b.iter(|| black_box(run_select_parallel(&agg, t, None, 1).unwrap()))
        });
        let weights = vec![1.5; t.num_rows()];
        group.bench_with_input(BenchmarkId::new("weighted_group_agg", n), t, |b, t| {
            b.iter(|| black_box(run_select_parallel(&agg, t, Some(&weights), 1).unwrap()))
        });
    }
    group.finish();
}

/// Dictionary encoding vs plain per-row strings, on the kernels the
/// encoding accelerates: group-by (hashes u32 codes instead of string
/// bytes), comparison against a literal (resolved once per dictionary
/// entry, O(1) per row), and sort (rank permutation instead of string
/// compares). Both representations are asserted bit-identical before
/// any timing starts; `dict_encode` itself is timed as the ingest cost
/// the other wins amortize.
fn bench_dict(c: &mut Criterion) {
    let mut group = c.benchmark_group("dict");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &n in &[100_000usize, 1_000_000] {
        let keys: Vec<String> = (0..n).map(|r| format!("k{:04}", (r * 17) % 4096)).collect();
        let vals = Column::from_i64((0..n).map(|r| (r % 83) as i64 - 40).collect());
        let plain = Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Str),
                Field::new("v", DataType::Int),
            ]),
            vec![Column::from_str_plain(keys, None), vals],
        )
        .unwrap();
        let dict = plain.dict_encoded();
        assert!(!plain.column(0).is_dict() && dict.column(0).is_dict());

        let agg = stmt("SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k");
        let cmp = stmt("SELECT COUNT(*) FROM t WHERE k = 'k0042'");
        let inset = stmt("SELECT COUNT(*) FROM t WHERE k IN ('k0001', 'k0042', 'k4000')");
        // Bit-identity before timing: the encoding is a physical
        // property — every query answers identically over both.
        for q in [&agg, &cmp, &inset] {
            let p = run_select_parallel(q, &plain, None, 1).unwrap();
            let d = run_select_parallel(q, &dict, None, 1).unwrap();
            assert_eq!(p.num_rows(), d.num_rows());
            for r in 0..p.num_rows() {
                for col in 0..p.num_columns() {
                    assert_eq!(p.value(r, col), d.value(r, col), "cell ({r},{col})");
                }
            }
        }
        let (ps, ds) = (
            plain.sort_by(&["k"], &[false]).unwrap(),
            dict.sort_by(&["k"], &[false]).unwrap(),
        );
        for r in (0..n).step_by(997) {
            assert_eq!(ps.value(r, 0), ds.value(r, 0), "sort row {r}");
        }

        group.bench_with_input(BenchmarkId::new("encode", n), &plain, |b, t| {
            b.iter(|| black_box(t.column(0).dict_encoded()))
        });
        group.bench_with_input(BenchmarkId::new("group_by_plain", n), &plain, |b, t| {
            b.iter(|| black_box(run_select_parallel(&agg, t, None, 1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("group_by_codes", n), &dict, |b, t| {
            b.iter(|| black_box(run_select_parallel(&agg, t, None, 1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cmp_literal_plain", n), &plain, |b, t| {
            b.iter(|| black_box(run_select_parallel(&cmp, t, None, 1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cmp_literal_codes", n), &dict, |b, t| {
            b.iter(|| black_box(run_select_parallel(&cmp, t, None, 1).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sort_plain", n), &plain, |b, t| {
            b.iter(|| black_box(t.sort_by(&["k"], &[false]).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sort_codes", n), &dict, |b, t| {
            b.iter(|| black_box(t.sort_by(&["k"], &[false]).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage, bench_dict);
criterion_main!(benches);
