//! Criterion bench: IPF convergence time vs sample size and marginal
//! count (the SEMI-OPEN hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_stats::{Ipf, IpfConfig};
use std::hint::black_box;

fn bench_ipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipf");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &pop in &[10_000usize, 50_000] {
        let data = flights::generate(&FlightsConfig {
            population: pop,
            marginal_bins: 16,
            ..FlightsConfig::default()
        });
        // Index construction (cell mapping).
        group.bench_with_input(BenchmarkId::new("index", pop), &data, |b, d| {
            b.iter(|| Ipf::new(black_box(&d.sample), &d.marginals, &d.binners).unwrap())
        });
        // Full raking to convergence.
        let ipf = Ipf::new(&data.sample, &data.marginals, &data.binners).unwrap();
        let cfg = IpfConfig::default();
        group.bench_with_input(BenchmarkId::new("fit", pop), &ipf, |b, ipf| {
            b.iter(|| ipf.fit(None, black_box(&cfg)))
        });
        // Varying marginal counts at fixed size.
        if pop == 10_000 {
            for k in 1..=4usize {
                let ipf_k = Ipf::new(&data.sample, &data.marginals[..k], &data.binners).unwrap();
                group.bench_with_input(BenchmarkId::new("fit_marginals", k), &ipf_k, |b, ipf| {
                    b.iter(|| ipf.fit(None, black_box(&cfg)))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ipf);
criterion_main!(benches);
