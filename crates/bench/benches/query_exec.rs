//! Criterion bench: end-to-end query latency through the Mosaic engine at
//! each visibility level (OPEN excluded — model training is measured in
//! `swg_step`; here the model cache is warm so OPEN measures generation +
//! combine), plus a direct vectorized-vs-row-at-a-time executor
//! comparison on a 100k-row filter + group-by aggregate.

use criterion::{criterion_group, criterion_main, Criterion};
use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_core::{
    run_select_parallel, run_select_partitioned, run_select_rowwise, run_select_with, MosaicDb,
    MosaicEngine, OpenBackend, Value,
};
use mosaic_sql::{parse, SelectStmt, Statement};
use mosaic_storage::{Column, DataType, Field, Schema, Table};
use mosaic_swg::SwgConfig;
use std::hint::black_box;
use std::sync::Arc;

fn setup_db() -> MosaicDb {
    let data = flights::generate(&FlightsConfig {
        population: 50_000,
        marginal_bins: 16,
        ..FlightsConfig::default()
    });
    let mut db = MosaicDb::new();
    db.options_mut().open.backend = OpenBackend::Swg(
        SwgConfig::default()
            .with_hidden_dim(32)
            .with_hidden_layers(2)
            .with_latent_dim(None)
            .with_projections(16)
            .with_epochs(4)
            .with_batch_size(256),
    );
    db.options_mut().open.num_generated = 3;
    db.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT);
         CREATE SAMPLE FlightSample AS (SELECT * FROM Flights);",
    )
    .unwrap();
    for (i, m) in data.marginals.iter().enumerate() {
        db.add_metadata(&format!("Flights_M{i}"), "Flights", m.clone())
            .unwrap();
    }
    for (attr, binner) in &data.binners {
        db.register_binner(attr, binner.clone());
    }
    db.ingest_sample("FlightSample", data.sample.clone())
        .unwrap();
    db
}

fn bench_queries(c: &mut Criterion) {
    let mut db = setup_db();
    let mut group = c.benchmark_group("query_exec");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let q =
        "carrier, COUNT(*), AVG(distance) FROM Flights WHERE elapsed_time > 120 GROUP BY carrier";
    group.bench_function("closed_group_by", |b| {
        b.iter(|| black_box(db.execute(&format!("SELECT CLOSED {q}")).unwrap()))
    });
    group.bench_function("semi_open_group_by", |b| {
        b.iter(|| black_box(db.execute(&format!("SELECT SEMI-OPEN {q}")).unwrap()))
    });
    // Warm the model cache, then measure OPEN (generation + combine).
    db.execute(&format!("SELECT OPEN {q}")).unwrap();
    group.bench_function("open_group_by_cached_model", |b| {
        b.iter(|| black_box(db.execute(&format!("SELECT OPEN {q}")).unwrap()))
    });
    // Raw sample scan for reference.
    group.bench_function("raw_sample_scan", |b| {
        b.iter(|| {
            black_box(
                db.execute("SELECT carrier, SUM(weight) FROM FlightSample GROUP BY carrier")
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn stmt(src: &str) -> SelectStmt {
    match parse(src).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

/// Vectorized plan vs. the retained row-at-a-time oracle on a 100k-row
/// flights table: filter + group-by aggregate (the acceptance benchmark
/// for the physical-plan layer), plus a filter-only query to isolate the
/// predicate kernels. Pinned to `parallelism = 1` so the comparison
/// measures vectorization alone — thread scaling has its own bench
/// (`bench_parallel_scaling`).
fn bench_vectorized_vs_rowwise(c: &mut Criterion) {
    let data = flights::generate(&FlightsConfig {
        population: 100_000,
        marginal_bins: 16,
        ..FlightsConfig::default()
    });
    let table = data.population;
    assert_eq!(table.num_rows(), 100_000);
    let weights = vec![1.7; table.num_rows()];
    let agg = stmt(
        "SELECT carrier, COUNT(*), AVG(distance), MAX(elapsed_time) \
         FROM t WHERE elapsed_time > 120 AND distance < 2200 GROUP BY carrier",
    );
    let filter = stmt("SELECT carrier, distance FROM t WHERE distance > 800");

    let mut group = c.benchmark_group("vectorized_vs_rowwise_100k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("filter_agg_vectorized", |b| {
        b.iter(|| black_box(run_select_parallel(&agg, &table, None, 1).unwrap()))
    });
    group.bench_function("filter_agg_rowwise", |b| {
        b.iter(|| black_box(run_select_rowwise(&agg, &table, None).unwrap()))
    });
    group.bench_function("filter_agg_weighted_vectorized", |b| {
        b.iter(|| black_box(run_select_parallel(&agg, &table, Some(&weights), 1).unwrap()))
    });
    group.bench_function("filter_agg_weighted_rowwise", |b| {
        b.iter(|| black_box(run_select_rowwise(&agg, &table, Some(&weights)).unwrap()))
    });
    group.bench_function("filter_only_vectorized", |b| {
        b.iter(|| black_box(run_select_parallel(&filter, &table, None, 1).unwrap()))
    });
    group.bench_function("filter_only_rowwise", |b| {
        b.iter(|| black_box(run_select_rowwise(&filter, &table, None).unwrap()))
    });
    group.finish();
}

/// Morsel-driven parallel executor vs. the serial vectorized path
/// (`parallelism = 1`) on filter + group-by aggregates at 100K and 1M
/// rows, swept over worker-thread counts. Before timing anything, the
/// driver's core invariant is asserted: results at every thread count
/// are bit-identical to the serial result.
fn bench_parallel_scaling(c: &mut Criterion) {
    let threads = [1usize, 2, 4, 8];
    for rows in [100_000usize, 1_000_000] {
        let data = flights::generate(&FlightsConfig {
            population: rows,
            marginal_bins: 16,
            ..FlightsConfig::default()
        });
        let table = data.population;
        assert_eq!(table.num_rows(), rows);
        let weights = vec![1.7; rows];
        let agg = stmt(
            "SELECT carrier, COUNT(*), AVG(distance), MAX(elapsed_time) \
             FROM t WHERE elapsed_time > 120 AND distance < 2200 GROUP BY carrier",
        );

        // Bit-identity across the sweep (weighted and unweighted).
        let baseline = run_select_parallel(&agg, &table, None, 1).unwrap();
        let baseline_w = run_select_parallel(&agg, &table, Some(&weights), 1).unwrap();
        for &t in &threads[1..] {
            for (base, w) in [(&baseline, None), (&baseline_w, Some(weights.as_slice()))] {
                let out = run_select_parallel(&agg, &table, w, t).unwrap();
                assert_eq!(out.num_rows(), base.num_rows(), "{rows} rows, {t} threads");
                for r in 0..out.num_rows() {
                    for col in 0..out.num_columns() {
                        assert_eq!(
                            out.value(r, col),
                            base.value(r, col),
                            "{rows} rows, {t} threads, cell ({r},{col})"
                        );
                    }
                }
            }
        }

        // High-cardinality string GROUP BY on the same row count: the
        // flights carrier key has ~10 groups, so the merge phase is
        // trivial there — this variant has rows/20 distinct string
        // groups, which is what the radix-partitioned parallel merge
        // (and dictionary-encoded key hashing) accelerates.
        let hc = high_cardinality_table(rows, rows / 20);
        let hc_agg = stmt("SELECT k, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY k");
        let hc_base = run_select_parallel(&hc_agg, &hc, None, 1).unwrap();
        assert_eq!(hc_base.num_rows(), rows / 20);
        for &t in &threads[1..] {
            let out = run_select_parallel(&hc_agg, &hc, None, t).unwrap();
            assert_tables_identical(&out, &hc_base, &format!("hc {rows} rows, {t} threads"));
        }

        let mut group = c.benchmark_group(format!("parallel_scaling_{}k", rows / 1000));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1500));
        for &t in &threads {
            group.bench_function(format!("filter_agg_{t}_threads"), |b| {
                b.iter(|| black_box(run_select_parallel(&agg, &table, None, t).unwrap()))
            });
        }
        for &t in &threads {
            group.bench_function(format!("high_card_agg_{t}_threads"), |b| {
                b.iter(|| black_box(run_select_parallel(&hc_agg, &hc, None, t).unwrap()))
            });
        }
        group.finish();
    }
}

/// `rows` rows with `groups` distinct dictionary-encoded string keys
/// (strided so consecutive rows hit different groups) and an int
/// payload.
fn high_cardinality_table(rows: usize, groups: usize) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ]),
        vec![
            Column::from_str(
                (0..rows)
                    .map(|r| format!("k{:06}", (r * 31) % groups))
                    .collect(),
            ),
            Column::from_i64((0..rows).map(|r| (r % 83) as i64 - 40).collect()),
        ],
    )
    .unwrap()
}

/// The PR's acceptance benchmark: a 10M-row × 100K-string-group
/// aggregate. `plain_t8_serial_merge` reproduces the pre-PR execution
/// shape (plain per-row string keys, single-threaded merge);
/// `dict_t8_p16` is the shipped default (dictionary-encoded keys,
/// 16-way radix-partitioned parallel merge) and must come in ≥2× faster
/// end-to-end. The two knobs are also measured in isolation
/// (`dict_t8_serial_merge`, `dict_t1_p16`). Results across thread
/// counts {1, 2, 8} × partition counts {1, 16} and across both string
/// representations are asserted bit-identical before any timing.
fn bench_agg_10m(c: &mut Criterion) {
    let rows = 10_000_000usize;
    let groups = 100_000usize;
    let dict = high_cardinality_table(rows, groups);
    assert!(dict.column(0).is_dict());
    let plain = {
        let keys: Vec<String> = (0..rows)
            .map(|r| format!("k{:06}", (r * 31) % groups))
            .collect();
        Table::new(
            Arc::clone(dict.schema()),
            vec![
                mosaic_storage::Column::from_str_plain(keys, None),
                dict.column(1).clone(),
            ],
        )
        .unwrap()
    };
    let agg = stmt("SELECT k, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY k");

    // Bit-identity across representations × threads × partitions.
    let baseline = run_select_partitioned(&agg, &dict, None, 1, true, 1).unwrap();
    assert_eq!(baseline.num_rows(), groups);
    for threads in [1usize, 2, 8] {
        for partitions in [1usize, 16] {
            let d = run_select_partitioned(&agg, &dict, None, threads, true, partitions).unwrap();
            assert_tables_identical(&d, &baseline, &format!("dict t{threads} p{partitions}"));
            let p = run_select_partitioned(&agg, &plain, None, threads, true, partitions).unwrap();
            assert_tables_identical(&p, &baseline, &format!("plain t{threads} p{partitions}"));
        }
    }

    let mut group = c.benchmark_group("agg_10m");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("plain_t8_serial_merge", |b| {
        b.iter(|| black_box(run_select_partitioned(&agg, &plain, None, 8, true, 1).unwrap()))
    });
    group.bench_function("dict_t8_p16", |b| {
        b.iter(|| black_box(run_select_partitioned(&agg, &dict, None, 8, true, 16).unwrap()))
    });
    group.bench_function("dict_t8_serial_merge", |b| {
        b.iter(|| black_box(run_select_partitioned(&agg, &dict, None, 8, true, 1).unwrap()))
    });
    group.bench_function("dict_t1_p16", |b| {
        b.iter(|| black_box(run_select_partitioned(&agg, &dict, None, 1, true, 16).unwrap()))
    });
    group.finish();
}

/// The PR's sort acceptance benchmark: a full ORDER BY (no LIMIT, so
/// TopK fusion cannot shrink it) over 10M rows — 611 per-morsel sorted
/// runs built on the worker pool + k-way merge at 8 threads, against
/// the serial single-run sort at 1 thread. Before timing, results are
/// asserted bit-identical across thread counts {1, 2, 8} × partition
/// counts {1, 16}, and the worker gauge must show the parallel run
/// build actually spawning pool workers (no serial fallback).
fn bench_sort_10m(c: &mut Criterion) {
    let rows = 10_000_000usize;
    let table = high_cardinality_table(rows, 100_000);
    let sort = stmt("SELECT k, v FROM t ORDER BY v DESC, k");

    let baseline = run_select_partitioned(&sort, &table, None, 1, true, 1).unwrap();
    assert_eq!(baseline.num_rows(), rows);
    for threads in [2usize, 8] {
        for partitions in [1usize, 16] {
            let out =
                run_select_partitioned(&sort, &table, None, threads, true, partitions).unwrap();
            assert_tables_identical(&out, &baseline, &format!("sort t{threads} p{partitions}"));
        }
    }
    mosaic_core::reset_worker_thread_peak();
    black_box(run_select_partitioned(&sort, &table, None, 8, true, 16).unwrap());
    assert!(
        mosaic_core::worker_thread_peak() >= 2,
        "10M-row ORDER BY at 8 threads spawned no pool workers"
    );

    let mut group = c.benchmark_group("sort_10m");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("order_by_t8", |b| {
        b.iter(|| black_box(run_select_partitioned(&sort, &table, None, 8, true, 16).unwrap()))
    });
    group.bench_function("order_by_t2", |b| {
        b.iter(|| black_box(run_select_partitioned(&sort, &table, None, 2, true, 16).unwrap()))
    });
    group.bench_function("order_by_t1_serial", |b| {
        b.iter(|| black_box(run_select_partitioned(&sort, &table, None, 1, true, 1).unwrap()))
    });
    group.finish();
}

/// The PR's join acceptance benchmark: a 10M-row probe × 1M-row build
/// (dictionary-encoded string keys, build side spanning 62 morsels —
/// large enough that the serial build used to dominate the join).
/// Timed at the shipped default (8 threads × 16-way partitioned build),
/// with the build serialized (`p1`), and fully serial. Results across
/// threads {1, 2, 8} × partitions {1, 16} are asserted bit-identical
/// before timing, and the worker gauge must show the join actually
/// running on the pool (the partition-phase isolation is unit-tested in
/// `mosaic-core`).
fn bench_join_10m(c: &mut Criterion) {
    let probe_rows = 10_000_000usize;
    let build_rows = 1_000_000usize;
    let fact = Table::new(
        Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("distance", DataType::Int),
        ]),
        vec![
            Column::from_str(
                (0..probe_rows)
                    .map(|r| format!("c{}", (r * 31) % 1_300_000))
                    .collect(),
            ),
            Column::from_i64((0..probe_rows).map(|r| (r % 2600) as i64).collect()),
        ],
    )
    .unwrap();
    // 1M dimension rows; ~23% of fact codes miss the dimension.
    let dim = Table::new(
        Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("region", DataType::Str),
        ]),
        vec![
            Column::from_str((0..build_rows).map(|i| format!("c{i}")).collect()),
            Column::from_str((0..build_rows).map(|i| format!("r{}", i % 7)).collect()),
        ],
    )
    .unwrap();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact).unwrap();
    engine.register_table("dim", dim).unwrap();
    let sql = "SELECT d.region AS region, COUNT(*) AS n, SUM(f.distance) AS s \
               FROM fact f JOIN dim d ON f.code = d.code GROUP BY d.region ORDER BY region";
    let session = |threads: usize, partitions: usize| {
        engine
            .session()
            .with_optimizer(true)
            .with_parallelism(threads)
            .with_agg_partitions(partitions)
    };

    let baseline = session(1, 1).query(sql).unwrap();
    assert_eq!(baseline.num_rows(), 7);
    for threads in [1usize, 2, 8] {
        for partitions in [1usize, 16] {
            let out = session(threads, partitions).query(sql).unwrap();
            assert_tables_identical(&out, &baseline, &format!("join t{threads} p{partitions}"));
        }
    }
    mosaic_core::reset_worker_thread_peak();
    black_box(session(8, 16).query(sql).unwrap());
    assert!(
        mosaic_core::worker_thread_peak() >= 2,
        "10M x 1M join at 8 threads spawned no pool workers"
    );

    let mut group = c.benchmark_group("join_10m");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let t8_p16 = session(8, 16);
    let t8_p1 = session(8, 1);
    let t1_p16 = session(1, 16);
    let t1_p1 = session(1, 1);
    group.bench_function("join_t8_p16", |b| {
        b.iter(|| black_box(t8_p16.query(sql).unwrap()))
    });
    group.bench_function("join_t8_serial_build", |b| {
        b.iter(|| black_box(t8_p1.query(sql).unwrap()))
    });
    group.bench_function("join_t1_p16", |b| {
        b.iter(|| black_box(t1_p16.query(sql).unwrap()))
    });
    group.bench_function("join_t1_p1", |b| {
        b.iter(|| black_box(t1_p1.query(sql).unwrap()))
    });
    group.finish();
}

/// Prepared vs unprepared throughput on a repeated aggregate: the
/// prepared path binds `?` values into a cached plan, skipping parse +
/// bind + lower on every execution. Measured at 100K rows (execution
/// dominates; the win is the fixed per-statement overhead) and at 1K
/// rows (fixed overhead dominates; the win is large). Before timing,
/// the prepared result is asserted bit-identical to the unprepared one.
fn bench_prepared_vs_unprepared(c: &mut Criterion) {
    for rows in [100_000usize, 1_000] {
        let data = flights::generate(&FlightsConfig {
            population: rows,
            marginal_bins: 16,
            ..FlightsConfig::default()
        });
        let engine = Arc::new(MosaicEngine::new());
        engine.register_table("flights", data.population).unwrap();
        let session = engine.session();
        let prepared = session
            .prepare(
                "SELECT carrier, COUNT(*), AVG(distance) FROM flights \
                 WHERE elapsed_time > ? GROUP BY carrier ORDER BY carrier",
            )
            .unwrap();
        let literal = "SELECT carrier, COUNT(*), AVG(distance) FROM flights \
                       WHERE elapsed_time > 120 GROUP BY carrier ORDER BY carrier";
        // Bit-identity: the prepared path must not change results.
        let base = session.query(literal).unwrap();
        let via = session
            .query_prepared(&prepared, &[Value::Int(120)])
            .unwrap();
        assert_eq!(base.num_rows(), via.num_rows());
        for r in 0..base.num_rows() {
            for col in 0..base.num_columns() {
                assert_eq!(base.value(r, col), via.value(r, col), "cell ({r},{col})");
            }
        }

        let mut group = c.benchmark_group(format!("prepared_exec_{}k", rows / 1000));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_millis(1500));
        group.bench_function("unprepared_parse_plan_execute", |b| {
            b.iter(|| black_box(session.query(literal).unwrap()))
        });
        group.bench_function("prepared_execute", |b| {
            b.iter(|| {
                black_box(
                    session
                        .query_prepared(&prepared, &[Value::Int(120)])
                        .unwrap(),
                )
            })
        });
        // The stage the prepared path skips per execution, in isolation.
        group.bench_function("parse_bind_plan_only", |b| {
            b.iter(|| {
                black_box(
                    session
                        .prepare(
                            "SELECT carrier, COUNT(*), AVG(distance) FROM flights \
                             WHERE elapsed_time > ? GROUP BY carrier ORDER BY carrier",
                        )
                        .unwrap(),
                )
            })
        });
        group.finish();
    }
}

/// Exact-equality assertion shared by the optimizer benches: the
/// optimizer must never change results, so every pair is checked
/// bit-for-bit before any timing starts.
fn assert_tables_identical(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{context}: column count");
    for c in 0..a.num_columns() {
        assert_eq!(
            a.schema().field(c).name,
            b.schema().field(c).name,
            "{context}: field {c}"
        );
        assert_eq!(
            a.schema().field(c).data_type,
            b.schema().field(c).data_type,
            "{context}: type {c}"
        );
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert_eq!(a.value(r, c), b.value(r, c), "{context}: cell ({r},{c})");
        }
    }
}

/// A wide columnar table: `g` (small-cardinality Int group key) followed
/// by `c1..c{width-1}` Float columns. Only two of the `width` columns
/// are referenced by the pruning bench query.
fn wide_table(rows: usize, width: usize) -> Table {
    let mut fields = vec![Field::new("g", DataType::Int)];
    let mut columns = vec![Column::from_i64(
        (0..rows).map(|r| (r % 9) as i64).collect(),
    )];
    for c in 1..width {
        fields.push(Field::new(format!("c{c}"), DataType::Float));
        columns.push(Column::from_f64(
            (0..rows)
                .map(|r| ((r * 31 + c * 7) % 1000) as f64 * 0.1)
                .collect(),
        ));
    }
    Table::new(Schema::new(fields), columns).unwrap()
}

/// The logical optimizer's two headline rules, measured in isolation at
/// `parallelism = 1` with pre-timing bit-identity asserts:
///
/// * projection pruning on a 20-column table where the query references
///   2 columns — unoptimized, the post-filter row gather materializes
///   all 20 columns per morsel; pruned, it touches 2;
/// * Sort+Limit fusion — `TopK` selects 10 of 100K rows with bounded
///   heaps (O(n·log k)) against the full stable sort (O(n·log n)).
fn bench_optimizer(c: &mut Criterion) {
    let rows = 100_000;
    let wide = wide_table(rows, 20);
    let prune = stmt("SELECT g, SUM(c1) FROM t WHERE c1 > 30.0 GROUP BY g ORDER BY g");
    let narrow = wide_table(rows, 3);
    let topk = stmt("SELECT g, c1 FROM t ORDER BY c1 DESC, c2 LIMIT 10");

    // The optimizer must not change results — asserted before timing.
    for (name, table, q) in [("prune", &wide, &prune), ("topk", &narrow, &topk)] {
        let unopt = run_select_with(q, table, None, 1, false).unwrap();
        let opt = run_select_with(q, table, None, 1, true).unwrap();
        assert_tables_identical(&unopt, &opt, name);
    }

    let mut group = c.benchmark_group("optimizer_100k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("wide20_ref2_unoptimized", |b| {
        b.iter(|| black_box(run_select_with(&prune, &wide, None, 1, false).unwrap()))
    });
    group.bench_function("wide20_ref2_pruned", |b| {
        b.iter(|| black_box(run_select_with(&prune, &wide, None, 1, true).unwrap()))
    });
    group.bench_function("sort_limit_unfused", |b| {
        b.iter(|| black_box(run_select_with(&topk, &narrow, None, 1, false).unwrap()))
    });
    group.bench_function("topk_fused", |b| {
        b.iter(|| black_box(run_select_with(&topk, &narrow, None, 1, true).unwrap()))
    });
    group.finish();
}

/// The INNER hash equi-join on the ISSUE's acceptance shape: a 100K-row
/// probe (fact) × 1K-row build (dimension), group-by aggregate over the
/// joined rows. Before timing, the join result is asserted bit-identical
/// to the row-wise reference (`mosaic_core::reference_join` — a
/// canonical nested loop — followed by the row-at-a-time executor over
/// the joined table). Timed at optimizer off/on (pushdown + pruning are
/// the delta) and with a filtered variant where pushdown shrinks both
/// join inputs before the build/probe.
fn bench_join(c: &mut Criterion) {
    let probe_rows = 100_000usize;
    let build_rows = 1_000usize;
    let fact = {
        let fields = vec![
            Field::new("code", DataType::Str),
            Field::new("distance", DataType::Int),
            Field::new("elapsed", DataType::Int),
        ];
        let columns = vec![
            Column::from_str((0..probe_rows).map(|r| format!("c{}", r % 1317)).collect()),
            Column::from_i64((0..probe_rows).map(|r| (r % 2600) as i64).collect()),
            Column::from_i64((0..probe_rows).map(|r| (r % 400) as i64).collect()),
        ];
        Table::new(Schema::new(fields), columns).unwrap()
    };
    // 1K dimension rows; ~24% of fact codes miss the dimension.
    let dim = Table::new(
        Schema::new(vec![
            Field::new("code", DataType::Str),
            Field::new("region", DataType::Str),
            Field::new("boost", DataType::Int),
        ]),
        vec![
            Column::from_str((0..build_rows).map(|i| format!("c{i}")).collect()),
            Column::from_str((0..build_rows).map(|i| format!("r{}", i % 7)).collect()),
            Column::from_i64((0..build_rows).map(|i| (i % 19) as i64).collect()),
        ],
    )
    .unwrap();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact.clone()).unwrap();
    engine.register_table("dim", dim.clone()).unwrap();

    let agg_sql = "SELECT d.region AS region, COUNT(*) AS n, SUM(f.distance) AS s \
                   FROM fact f JOIN dim d ON f.code = d.code \
                   GROUP BY d.region ORDER BY region";
    let filtered_sql = "SELECT d.region AS region, COUNT(*) AS n, SUM(f.distance) AS s \
                        FROM fact f JOIN dim d ON f.code = d.code \
                        WHERE f.elapsed > 200 AND d.region != 'r3' \
                        GROUP BY d.region ORDER BY region";

    // Pre-timing bit-identity: hash join (optimizer off and on, threads
    // 1 and 4) vs the row-wise reference join.
    let keys = vec![(
        mosaic_sql::parse_expr("code").unwrap(),
        mosaic_sql::parse_expr("code").unwrap(),
    )];
    let joined = mosaic_core::reference_join(&fact, "f", &dim, "d", &keys).unwrap();
    for (join_sql, flat_sql) in [
        (
            agg_sql,
            "SELECT region, COUNT(*) AS n, SUM(distance) AS s FROM j \
             GROUP BY region ORDER BY region",
        ),
        (
            filtered_sql,
            "SELECT region, COUNT(*) AS n, SUM(distance) AS s FROM j \
             WHERE elapsed > 200 AND region != 'r3' GROUP BY region ORDER BY region",
        ),
    ] {
        let reference = run_select_rowwise(&stmt(flat_sql), &joined, None).unwrap();
        for optimizer in [false, true] {
            for threads in [1usize, 4] {
                let out = engine
                    .session()
                    .with_optimizer(optimizer)
                    .with_parallelism(threads)
                    .query(join_sql)
                    .unwrap();
                assert_tables_identical(
                    &out,
                    &reference,
                    &format!("join optimizer={optimizer} threads={threads}"),
                );
            }
        }
    }

    let mut group = c.benchmark_group("join_100k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let on = engine.session().with_optimizer(true).with_parallelism(1);
    let off = engine.session().with_optimizer(false).with_parallelism(1);
    group.bench_function("join_agg_optimized", |b| {
        b.iter(|| black_box(on.query(agg_sql).unwrap()))
    });
    group.bench_function("join_agg_unoptimized", |b| {
        b.iter(|| black_box(off.query(agg_sql).unwrap()))
    });
    group.bench_function("join_filtered_pushdown", |b| {
        b.iter(|| black_box(on.query(filtered_sql).unwrap()))
    });
    group.bench_function("join_filtered_no_pushdown", |b| {
        b.iter(|| black_box(off.query(filtered_sql).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queries,
    bench_vectorized_vs_rowwise,
    bench_parallel_scaling,
    bench_agg_10m,
    bench_sort_10m,
    bench_join_10m,
    bench_prepared_vs_unprepared,
    bench_optimizer,
    bench_join
);
criterion_main!(benches);
