use std::collections::HashMap;
use std::sync::Arc;

use crate::{Bitmap, DataType, Result, StorageError, Value};

/// A deduplicated string dictionary shared by dictionary-encoded columns.
///
/// Codes are assigned in order of first appearance, so encoding the same
/// sequence of strings always yields the same `(codes, dict)` pair — the
/// determinism contract of the engine extends down to the encoding. The
/// auxiliary `sorted` / `ranks` permutations are precomputed so ordered
/// row comparison ([`Column::total_cmp_rows`]) and literal lookup
/// ([`Dictionary::code_of`]) run without any string comparison per row.
#[derive(Debug)]
pub struct Dictionary {
    /// Distinct values, indexed by code (first-appearance order).
    values: Vec<String>,
    /// Codes ordered so that `values[sorted[0]] <= values[sorted[1]] <= ..`.
    sorted: Vec<u32>,
    /// `ranks[code]` = position of `code` in `sorted` (its sort rank).
    ranks: Vec<u32>,
}

impl Dictionary {
    /// Encode `values` into per-row codes plus the shared dictionary.
    /// Strings are moved, never cloned; duplicates are dropped.
    pub fn encode(values: Vec<String>) -> (Vec<u32>, Arc<Dictionary>) {
        let mut map: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for s in values {
            let next = map.len() as u32;
            let code = *map.entry(s).or_insert(next);
            codes.push(code);
        }
        let mut dict_values = vec![String::new(); map.len()];
        for (s, c) in map {
            dict_values[c as usize] = s;
        }
        (codes, Arc::new(Dictionary::from_values(dict_values)))
    }

    /// Build from already-distinct values (codes = positions).
    fn from_values(values: Vec<String>) -> Dictionary {
        let mut sorted: Vec<u32> = (0..values.len() as u32).collect();
        sorted.sort_unstable_by(|&a, &b| values[a as usize].cmp(&values[b as usize]));
        let mut ranks = vec![0u32; values.len()];
        for (rank, &code) in sorted.iter().enumerate() {
            ranks[code as usize] = rank as u32;
        }
        Dictionary {
            values,
            sorted,
            ranks,
        }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string behind `code`.
    #[inline]
    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// All distinct values, indexed by code.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Look up the code for `s` (binary search over the sort permutation;
    /// `None` if `s` is not in the dictionary).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.sorted
            .binary_search_by(|&c| self.values[c as usize].as_str().cmp(s))
            .ok()
            .map(|pos| self.sorted[pos])
    }

    /// Sort rank of `code`: comparing ranks orders rows exactly like
    /// comparing the underlying strings.
    #[inline]
    pub fn rank(&self, code: u32) -> u32 {
        self.ranks[code as usize]
    }

    /// Approximate heap footprint of the dictionary: string bytes plus
    /// the per-value bookkeeping (`String` headers, sort permutation,
    /// rank table).
    pub fn approx_bytes(&self) -> usize {
        let strings: usize = self.values.iter().map(String::len).sum();
        strings + self.values.len() * (std::mem::size_of::<String>() + 2 * 4)
    }
}

/// A typed, contiguous column with an optional validity bitmap.
///
/// Invariant: if `validity` is `Some`, its length equals the data length and
/// a cleared bit means the slot is NULL (the slot's payload is a type default
/// and must not be observed).
///
/// The payload is shared behind an [`Arc`]: columns are immutable after
/// construction, so `Clone` is O(1) and tables can flow through the
/// physical-plan pipeline (and the engine's catalog snapshots) without
/// copying data. A column may additionally be a *view* over a window of
/// its payload (`offset`/`len`, see [`Column::slice`]): morsel-driven
/// execution slices each column into ~fixed-row morsels that share the
/// same `Arc` payload, so slicing costs O(1) per column plus a small
/// validity-bitmap copy. The stored `validity` is always relative to the
/// view, never to the full payload.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    validity: Option<Bitmap>,
    offset: usize,
    len: usize,
}

#[derive(Debug, Clone)]
enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    /// Dictionary-encoded strings: per-row u32 codes into a shared
    /// [`Dictionary`]. Reports [`DataType::Str`]; `take`/`slice`/
    /// `concat_many` move only codes, never `String`s.
    Dict {
        codes: Vec<u32>,
        dict: Arc<Dictionary>,
    },
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
        }
    }
}

impl Column {
    /// Build a column of `ty` from dynamic values, coercing `Int` into
    /// `Float` columns (and whole floats into `Int` columns).
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<Column> {
        let mut b = ColumnBuilder::new(ty);
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// Wrap a full (unsliced) payload.
    fn full(data: ColumnData, validity: Option<Bitmap>) -> Column {
        let len = data.len();
        Column {
            data: Arc::new(data),
            validity,
            offset: 0,
            len,
        }
    }

    /// Column of 64-bit integers (no NULLs).
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column::full(ColumnData::Int(values), None)
    }

    /// Column of 64-bit floats (no NULLs).
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column::full(ColumnData::Float(values), None)
    }

    /// Column of strings (no NULLs), dictionary-encoded on construction.
    #[allow(clippy::should_implement_trait)] // established inherent name
    pub fn from_str(values: Vec<String>) -> Column {
        let (codes, dict) = Dictionary::encode(values);
        Column::full(ColumnData::Dict { codes, dict }, None)
    }

    /// Column of booleans (no NULLs).
    pub fn from_bool(values: Vec<bool>) -> Column {
        Column::full(ColumnData::Bool(values), None)
    }

    /// Number of rows (of this view, not of the shared payload).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical type (dictionary-encoded columns report [`DataType::Str`]).
    pub fn data_type(&self) -> DataType {
        match self.data.as_ref() {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) | ColumnData::Dict { .. } => DataType::Str,
        }
    }

    /// True if row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v.get(i))
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match &self.validity {
            Some(v) => v.len() - v.count_ones(),
            None => 0,
        }
    }

    /// Dynamic value at row `i` (bounds-checked).
    pub fn value(&self, i: usize) -> Value {
        if i >= self.len() {
            panic!("row {i} out of bounds for column of len {}", self.len());
        }
        if self.is_null(i) {
            return Value::Null;
        }
        let i = self.offset + i;
        match self.data.as_ref() {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Dict { codes, dict } => Value::Str(dict.get(codes[i]).to_string()),
        }
    }

    /// Numeric view of row `i` (NULL → `None`; ints widen).
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        let i = self.offset + i;
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            ColumnData::Bool(v) => Some(v[i] as u8 as f64),
            ColumnData::Str(_) | ColumnData::Dict { .. } => None,
        }
    }

    /// Borrowed `i64` slice if this is a non-null Int column.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match (self.data.as_ref(), &self.validity) {
            (ColumnData::Int(v), None) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Borrowed `f64` slice if this is a non-null Float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match (self.data.as_ref(), &self.validity) {
            (ColumnData::Float(v), None) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw `i64` payload regardless of validity (NULL slots hold a type
    /// default and must be masked with [`Column::validity`]).
    pub fn i64_data(&self) -> Option<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw `f64` payload regardless of validity.
    pub fn f64_data(&self) -> Option<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Float(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw `bool` payload regardless of validity.
    pub fn bool_data(&self) -> Option<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw string payload regardless of validity. `None` for
    /// dictionary-encoded columns — use [`Column::dict_parts`] there.
    pub fn str_data(&self) -> Option<&[String]> {
        match self.data.as_ref() {
            ColumnData::Str(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Per-row codes and shared dictionary if this column is
    /// dictionary-encoded (codes windowed to this view).
    pub fn dict_parts(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match self.data.as_ref() {
            ColumnData::Dict { codes, dict } => {
                Some((&codes[self.offset..self.offset + self.len], dict))
            }
            _ => None,
        }
    }

    /// True if this column is dictionary-encoded.
    pub fn is_dict(&self) -> bool {
        matches!(self.data.as_ref(), ColumnData::Dict { .. })
    }

    /// Dictionary-encoded copy of this column: plain string columns are
    /// encoded (one pass, strings cloned once); every other
    /// representation is returned as-is (O(1) clone).
    pub fn dict_encoded(&self) -> Column {
        match self.data.as_ref() {
            ColumnData::Str(v) => {
                let window = v[self.offset..self.offset + self.len].to_vec();
                let (codes, dict) = Dictionary::encode(window);
                Column::full(ColumnData::Dict { codes, dict }, self.validity.clone())
            }
            _ => self.clone(),
        }
    }

    /// The validity bitmap (`None` = no NULLs).
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Int column from raw parts; an all-ones validity is normalized to
    /// `None` so kernel outputs are indistinguishable from builder output.
    pub fn from_i64_opt(values: Vec<i64>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Int(values), normalize_validity(validity))
    }

    /// Float column from raw parts (see [`Column::from_i64_opt`]).
    pub fn from_f64_opt(values: Vec<f64>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Float(values), normalize_validity(validity))
    }

    /// Bool column from raw parts (see [`Column::from_i64_opt`]).
    pub fn from_bool_opt(values: Vec<bool>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Bool(values), normalize_validity(validity))
    }

    /// String column from raw parts (see [`Column::from_i64_opt`]),
    /// dictionary-encoded on construction. NULL slots carry whatever
    /// payload the caller supplied (by convention the empty string), and
    /// that payload is encoded like any other value — so every code is
    /// always in bounds for the dictionary.
    pub fn from_str_opt(values: Vec<String>, validity: Option<Bitmap>) -> Column {
        let (codes, dict) = Dictionary::encode(values);
        Column::full(
            ColumnData::Dict { codes, dict },
            normalize_validity(validity),
        )
    }

    /// Plain (non-dictionary) string column from raw parts — the output
    /// representation of [`ColumnBuilder`] and the row-wise executor.
    pub fn from_str_plain(values: Vec<String>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Str(values), normalize_validity(validity))
    }

    /// Total order between two rows of this column (NULLs first, floats
    /// via `total_cmp`) without materializing [`Value`]s — the sort
    /// comparator of the physical plan layer.
    pub fn total_cmp_rows(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.is_null(a), self.is_null(b)) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {}
        }
        let (a, b) = (self.offset + a, self.offset + b);
        match self.data.as_ref() {
            ColumnData::Bool(v) => v[a].cmp(&v[b]),
            ColumnData::Int(v) => v[a].cmp(&v[b]),
            ColumnData::Float(v) => v[a].total_cmp(&v[b]),
            ColumnData::Str(v) => v[a].cmp(&v[b]),
            // Comparing sort ranks orders rows exactly like comparing the
            // underlying strings, without touching string bytes.
            ColumnData::Dict { codes, dict } => dict.rank(codes[a]).cmp(&dict.rank(codes[b])),
        }
    }

    /// All values as f64, with NULL/non-numeric as `None`.
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.f64_at(i)).collect()
    }

    /// Gather rows by index (indices may repeat and reorder).
    pub fn take(&self, indices: &[usize]) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|v| Bitmap::from_iter(indices.iter().map(|&i| v.get(i))));
        let o = self.offset;
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[o + i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[o + i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[o + i]).collect()),
            ColumnData::Str(v) => {
                let mut out = Vec::with_capacity(indices.len());
                out.extend(indices.iter().map(|&i| v[o + i].clone()));
                ColumnData::Str(out)
            }
            // Gather u32 codes only — the dictionary is shared, no string
            // is cloned no matter how many rows are taken.
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: indices.iter().map(|&i| codes[o + i]).collect(),
                dict: Arc::clone(dict),
            },
        };
        Column::full(data, validity)
    }

    /// Gather rows by optional index: `None` emits a NULL row (type
    /// default payload, cleared validity bit). This is the NULL-extending
    /// gather of LEFT OUTER joins — unmatched probe rows take `None` on
    /// the build side. Delegates to [`Column::take`] when every index is
    /// present.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        if indices.iter().all(Option::is_some) {
            let idx: Vec<usize> = indices.iter().map(|i| i.expect("checked")).collect();
            return self.take(&idx);
        }
        let validity = Some(Bitmap::from_iter(indices.iter().map(|i| match i {
            Some(i) => !self.is_null(*i),
            None => false,
        })));
        let o = self.offset;
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(
                indices
                    .iter()
                    .map(|i| i.is_some_and(|i| v[o + i]))
                    .collect(),
            ),
            ColumnData::Int(v) => {
                ColumnData::Int(indices.iter().map(|i| i.map_or(0, |i| v[o + i])).collect())
            }
            ColumnData::Float(v) => ColumnData::Float(
                indices
                    .iter()
                    .map(|i| i.map_or(0.0, |i| v[o + i]))
                    .collect(),
            ),
            ColumnData::Str(v) => ColumnData::Str(
                indices
                    .iter()
                    .map(|i| i.map_or_else(String::new, |i| v[o + i].clone()))
                    .collect(),
            ),
            ColumnData::Dict { codes, dict } => {
                // NULL slots still need an in-bounds code. An empty
                // dictionary has none to reuse, so fall back to a plain
                // payload there (only reachable when every index is None).
                if dict.is_empty() {
                    ColumnData::Str(indices.iter().map(|_| String::new()).collect())
                } else {
                    ColumnData::Dict {
                        codes: indices
                            .iter()
                            .map(|i| i.map_or(0, |i| codes[o + i]))
                            .collect(),
                        dict: Arc::clone(dict),
                    }
                }
            }
        };
        Column::full(data, normalize_validity(validity))
    }

    /// Zero-copy view of rows `[offset, offset + len)`: the payload stays
    /// shared behind the `Arc`; only the validity window is copied. This
    /// is the morsel entry point of the storage layer — every typed
    /// kernel accepts the slices such a view exposes.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        assert!(offset + len <= self.len, "column slice out of bounds");
        Column {
            data: Arc::clone(&self.data),
            validity: self
                .validity
                .as_ref()
                .map(|v| v.slice(offset, len))
                .and_then(|v| normalize_validity(Some(v))),
            offset: self.offset + offset,
            len,
        }
    }

    /// Keep rows whose selection bit is set.
    pub fn filter(&self, selection: &Bitmap) -> Column {
        assert_eq!(selection.len(), self.len(), "selection length mismatch");
        self.take(&selection.to_indices())
    }

    /// Concatenate with another column of the same type. Delegates to
    /// [`Column::concat_many`], so payload slices extend without per-cell
    /// `Value` round-trips and dictionary encodings survive (mixed
    /// plain/dict string inputs unify into a fresh dictionary).
    pub fn concat(&self, other: &Column) -> Result<Column> {
        Self::concat_many(&[self, other])
    }

    /// Vertically concatenate many same-typed columns in one pass,
    /// extending raw payload slices instead of round-tripping per-cell
    /// [`Value`]s — the merge step of morsel-driven execution. Payload
    /// bits (including float NaN payloads) are preserved exactly.
    pub fn concat_many(parts: &[&Column]) -> Result<Column> {
        let Some(first) = parts.first() else {
            return Err(StorageError::InvalidValue(
                "Column::concat_many needs at least one input".into(),
            ));
        };
        let ty = first.data_type();
        for p in parts {
            if p.data_type() != ty {
                return Err(StorageError::TypeMismatch {
                    expected: ty.to_string(),
                    actual: p.data_type().to_string(),
                    context: "Column::concat_many".into(),
                });
            }
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let validity = if parts.iter().any(|p| p.validity.is_some()) {
            let mut bits = Bitmap::zeros(total);
            let mut at = 0;
            for p in parts {
                match &p.validity {
                    Some(v) => {
                        for i in v.iter_ones() {
                            bits.set(at + i, true);
                        }
                    }
                    None => {
                        for i in 0..p.len() {
                            bits.set(at + i, true);
                        }
                    }
                }
                at += p.len();
            }
            Some(bits)
        } else {
            None
        };
        let data = match ty {
            DataType::Int => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.i64_data().expect("type-checked"));
                }
                ColumnData::Int(out)
            }
            DataType::Float => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.f64_data().expect("type-checked"));
                }
                ColumnData::Float(out)
            }
            DataType::Bool => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.bool_data().expect("type-checked"));
                }
                ColumnData::Bool(out)
            }
            DataType::Str => concat_str_parts(parts, total),
        };
        Ok(Column::full(data, normalize_validity(validity)))
    }

    /// Iterate dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Approximate heap footprint of this column *view* in bytes: the
    /// payload bytes of the visible window plus the validity bitmap. A
    /// dictionary-encoded view counts its codes plus the whole shared
    /// dictionary (the dictionary keeps the codes decodable, so an
    /// accounting that holds the view alive must charge for it; shared
    /// payloads may therefore be counted more than once — this is a
    /// cheap upper-bound estimate, not an allocator report).
    pub fn approx_bytes(&self) -> usize {
        let (o, n) = (self.offset, self.len);
        let payload = match self.data.as_ref() {
            ColumnData::Bool(_) => n,
            ColumnData::Int(_) | ColumnData::Float(_) => n * 8,
            ColumnData::Str(v) => v[o..o + n]
                .iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum(),
            ColumnData::Dict { dict, .. } => n * 4 + dict.approx_bytes(),
        };
        let validity = self.validity.as_ref().map_or(0, |v| v.len().div_ceil(8));
        payload + validity
    }

    /// Min and max over non-null numeric rows.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        for i in 0..self.len() {
            if let Some(x) = self.f64_at(i) {
                min = min.min(x);
                max = max.max(x);
                seen = true;
            }
        }
        seen.then_some((min, max))
    }
}

fn normalize_validity(validity: Option<Bitmap>) -> Option<Bitmap> {
    validity.filter(|v| !v.all())
}

/// Concatenate the string payloads of `parts` (all type-checked as Str).
///
/// Morsel outputs usually slice one shared dictionary-encoded payload, so
/// the common case concatenates u32 codes and shares the `Arc` — zero
/// string traffic. Mixed representations (or distinct dictionaries) fall
/// back to building one unified dictionary in first-appearance order,
/// translating each *distinct* code once per part rather than per row.
fn concat_str_parts(parts: &[&Column], total: usize) -> ColumnData {
    if parts.iter().all(|p| !p.is_dict()) {
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend_from_slice(p.str_data().expect("type-checked"));
        }
        return ColumnData::Str(out);
    }
    if let Some((_, d0)) = parts[0].dict_parts() {
        if parts
            .iter()
            .all(|p| p.dict_parts().is_some_and(|(_, d)| Arc::ptr_eq(d, d0)))
        {
            let mut codes = Vec::with_capacity(total);
            for p in parts {
                codes.extend_from_slice(p.dict_parts().expect("checked dict").0);
            }
            return ColumnData::Dict {
                codes,
                dict: Arc::clone(d0),
            };
        }
    }
    fn unify(map: &mut HashMap<String, u32>, s: &str) -> u32 {
        match map.get(s) {
            Some(&c) => c,
            None => {
                let c = map.len() as u32;
                map.insert(s.to_string(), c);
                c
            }
        }
    }
    let mut map: HashMap<String, u32> = HashMap::new();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        if let Some((codes, dict)) = p.dict_parts() {
            let mut remap = vec![u32::MAX; dict.len()];
            for &c in codes {
                if remap[c as usize] == u32::MAX {
                    remap[c as usize] = unify(&mut map, dict.get(c));
                }
                out.push(remap[c as usize]);
            }
        } else {
            for s in p.str_data().expect("type-checked") {
                out.push(unify(&mut map, s));
            }
        }
    }
    let mut values = vec![String::new(); map.len()];
    for (s, c) in map {
        values[c as usize] = s;
    }
    ColumnData::Dict {
        codes: out,
        dict: Arc::new(Dictionary::from_values(values)),
    }
}

/// Incremental, type-checked column construction.
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: DataType,
    data: ColumnData,
    validity: Option<Bitmap>,
    nulls: Vec<bool>,
    has_null: bool,
}

impl ColumnBuilder {
    /// New builder for type `ty`.
    pub fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        };
        ColumnBuilder {
            ty,
            data,
            validity: None,
            nulls: Vec::new(),
            has_null: false,
        }
    }

    /// New builder with row-capacity hint.
    pub fn with_capacity(ty: DataType, capacity: usize) -> Self {
        let data = match ty {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(capacity)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(capacity)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(capacity)),
        };
        ColumnBuilder {
            ty,
            data,
            validity: None,
            nulls: Vec::with_capacity(capacity),
            has_null: false,
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Append a value, coercing between Int/Float where lossless.
    pub fn push(&mut self, v: Value) -> Result<()> {
        let mismatch = |actual: &Value, ty: DataType| StorageError::TypeMismatch {
            expected: ty.to_string(),
            actual: actual
                .data_type()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "NULL".into()),
            context: "ColumnBuilder::push".into(),
        };
        if v.is_null() {
            self.has_null = true;
            self.nulls.push(true);
            match &mut self.data {
                ColumnData::Bool(d) => d.push(false),
                ColumnData::Int(d) => d.push(0),
                ColumnData::Float(d) => d.push(0.0),
                ColumnData::Str(d) => d.push(String::new()),
                ColumnData::Dict { .. } => unreachable!("builder never holds dict data"),
            }
            return Ok(());
        }
        self.nulls.push(false);
        // Match by value so string payloads move into the column instead
        // of being cloned per row.
        match (&mut self.data, v) {
            (ColumnData::Bool(d), Value::Bool(b)) => d.push(b),
            (ColumnData::Int(d), Value::Int(i)) => d.push(i),
            (ColumnData::Int(d), Value::Float(f)) if f.fract() == 0.0 => d.push(f as i64),
            (ColumnData::Float(d), Value::Float(f)) => d.push(f),
            (ColumnData::Float(d), Value::Int(i)) => d.push(i as f64),
            (ColumnData::Str(d), Value::Str(s)) => d.push(s),
            (_, v) => {
                self.nulls.pop();
                return Err(mismatch(&v, self.ty));
            }
        }
        Ok(())
    }

    /// Finish into an immutable [`Column`].
    pub fn finish(mut self) -> Column {
        if self.has_null {
            self.validity = Some(Bitmap::from_iter(self.nulls.iter().map(|&n| !n)));
        }
        Column::full(self.data, self.validity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_coerces_numerics() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Value::Int(1)).unwrap();
        b.push(Value::Float(2.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.as_f64_slice().unwrap(), &[1.0, 2.5]);
    }

    #[test]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int);
        assert!(b.push(Value::Str("x".into())).is_err());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn nulls_tracked_in_validity() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Value::Int(1)).unwrap();
        b.push(Value::Null).unwrap();
        b.push(Value::Int(3)).unwrap();
        let c = b.finish();
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
        assert_eq!(c.f64_at(1), None);
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.as_i64_slice().unwrap(), &[30, 10, 10]);
    }

    #[test]
    fn take_opt_null_extends() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take_opt(&[Some(2), None, Some(0)]);
        assert_eq!(t.value(0), Value::Int(30));
        assert_eq!(t.value(1), Value::Null);
        assert_eq!(t.value(2), Value::Int(10));
        // All-present delegates to `take` (no validity).
        assert!(c.take_opt(&[Some(1), Some(1)]).validity().is_none());
        // Dict columns keep their shared dictionary; NULL codes stay
        // in bounds.
        let s = Column::from_str(vec!["x".into(), "y".into()]);
        let t = s.take_opt(&[None, Some(1)]);
        assert_eq!(t.value(0), Value::Null);
        assert_eq!(t.value(1), Value::Str("y".into()));
        assert!(t.is_dict());
        // Source NULLs survive the gather.
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Value::Null).unwrap();
        b.push(Value::Float(1.5)).unwrap();
        let f = b.finish();
        let t = f.take_opt(&[Some(0), None, Some(1)]);
        assert_eq!(t.null_count(), 2);
        assert_eq!(t.value(2), Value::Float(1.5));
    }

    #[test]
    fn filter_by_bitmap() {
        let c = Column::from_str(vec!["a".into(), "b".into(), "c".into()]);
        let sel = Bitmap::from_iter([true, false, true]);
        let f = c.filter(&sel);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(1), Value::Str("c".into()));
    }

    #[test]
    fn concat_same_type() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_i64(vec![2, 3]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_i64_slice().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn concat_type_mismatch_errors() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_str(vec!["x".into()]);
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn slice_is_a_window() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [
            Value::Int(10),
            Value::Null,
            Value::Int(30),
            Value::Int(40),
            Value::Int(50),
        ] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let s = c.slice(1, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(0), Value::Null);
        assert_eq!(s.value(1), Value::Int(30));
        assert_eq!(s.i64_data().unwrap(), &[0, 30, 40]);
        assert_eq!(s.null_count(), 1);
        // Nested slices compose; an all-valid window drops its validity.
        let s2 = s.slice(1, 2);
        assert!(s2.validity().is_none());
        assert_eq!(s2.as_i64_slice().unwrap(), &[30, 40]);
        assert_eq!(s2.take(&[1, 0]).as_i64_slice().unwrap(), &[40, 30]);
        assert_eq!(s2.total_cmp_rows(0, 1), std::cmp::Ordering::Less);
    }

    #[test]
    fn concat_many_rebuilds_slices() {
        let mut b = ColumnBuilder::new(DataType::Float);
        for v in [
            Value::Float(1.5),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(-0.0),
        ] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let whole = Column::concat_many(&[&c.slice(0, 2), &c.slice(2, 2)]).unwrap();
        assert_eq!(whole.len(), 4);
        for i in 0..4 {
            assert_eq!(whole.value(i), c.value(i), "row {i}");
        }
        let no_nulls = Column::concat_many(&[&c.slice(0, 1), &c.slice(3, 1)]).unwrap();
        assert!(no_nulls.validity().is_none());
        assert!(Column::concat_many(&[]).is_err());
    }

    #[test]
    fn from_parts_normalizes_all_ones_validity() {
        let c = Column::from_i64_opt(vec![1, 2], Some(Bitmap::ones(2)));
        assert!(c.validity().is_none());
        assert!(c.as_i64_slice().is_some());
        let c = Column::from_f64_opt(vec![1.0, 2.0], Some(Bitmap::from_iter([true, false])));
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn total_cmp_rows_matches_value_total_cmp() {
        let mut b = ColumnBuilder::new(DataType::Float);
        for v in [
            Value::Float(2.0),
            Value::Null,
            Value::Float(-1.0),
            Value::Float(2.0),
        ] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    c.total_cmp_rows(a, b),
                    c.value(a).total_cmp(&c.value(b)),
                    "rows {a},{b}"
                );
            }
        }
    }

    #[test]
    fn from_str_builds_dictionary() {
        let c = Column::from_str(vec!["b".into(), "a".into(), "b".into(), "c".into()]);
        assert!(c.is_dict());
        assert_eq!(c.data_type(), DataType::Str);
        let (codes, dict) = c.dict_parts().unwrap();
        // Codes are assigned in first-appearance order.
        assert_eq!(codes, &[0, 1, 0, 2]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.get(0), "b");
        assert_eq!(dict.code_of("c"), Some(2));
        assert_eq!(dict.code_of("zzz"), None);
        assert_eq!(c.value(2), Value::Str("b".into()));
        assert!(c.str_data().is_none());
    }

    #[test]
    fn dict_rank_orders_like_strings() {
        let c = Column::from_str(vec!["pear".into(), "apple".into(), "mango".into()]);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(
                    c.total_cmp_rows(a, b),
                    c.value(a).total_cmp(&c.value(b)),
                    "rows {a},{b}"
                );
            }
        }
    }

    #[test]
    fn dict_take_and_slice_share_dictionary() {
        let c = Column::from_str(vec!["x".into(), "y".into(), "x".into(), "z".into()]);
        let (_, d0) = c.dict_parts().unwrap();
        let d0 = Arc::clone(d0);
        let t = c.take(&[3, 0, 0]);
        assert!(Arc::ptr_eq(t.dict_parts().unwrap().1, &d0));
        assert_eq!(t.value(0), Value::Str("z".into()));
        let s = c.slice(1, 2);
        assert_eq!(s.dict_parts().unwrap().0, &[1, 0]);
        assert_eq!(s.value(1), Value::Str("x".into()));
    }

    #[test]
    fn concat_many_shared_dict_concats_codes() {
        let c = Column::from_str(vec!["a".into(), "b".into(), "a".into(), "c".into()]);
        let whole = Column::concat_many(&[&c.slice(0, 2), &c.slice(2, 2)]).unwrap();
        assert!(Arc::ptr_eq(
            whole.dict_parts().unwrap().1,
            c.dict_parts().unwrap().1
        ));
        for i in 0..4 {
            assert_eq!(whole.value(i), c.value(i), "row {i}");
        }
    }

    #[test]
    fn concat_many_mixed_representations_unifies() {
        let dict = Column::from_str(vec!["a".into(), "b".into()]);
        let mut b = ColumnBuilder::new(DataType::Str);
        b.push(Value::Str("b".into())).unwrap();
        b.push(Value::Null).unwrap();
        b.push(Value::Str("c".into())).unwrap();
        let plain = b.finish();
        assert!(!plain.is_dict());
        let other = Column::from_str(vec!["c".into(), "d".into()]);
        let whole = Column::concat_many(&[&dict, &plain, &other]).unwrap();
        assert!(whole.is_dict());
        assert_eq!(whole.len(), 7);
        let expect = ["a", "b", "b", "", "c", "c", "d"];
        for (i, e) in expect.iter().enumerate() {
            if i == 3 {
                assert_eq!(whole.value(i), Value::Null);
            } else {
                assert_eq!(whole.value(i), Value::Str((*e).to_string()), "row {i}");
            }
        }
    }

    #[test]
    fn dict_encoded_roundtrips_plain() {
        let mut b = ColumnBuilder::new(DataType::Str);
        for v in [Value::Str("q".into()), Value::Null, Value::Str("p".into())] {
            b.push(v).unwrap();
        }
        let plain = b.finish();
        let dict = plain.dict_encoded();
        assert!(dict.is_dict());
        assert_eq!(dict.null_count(), 1);
        for i in 0..3 {
            assert_eq!(dict.value(i), plain.value(i), "row {i}");
        }
        // Already-dict and non-string columns pass through unchanged.
        assert!(dict.dict_encoded().is_dict());
        assert!(!Column::from_i64(vec![1]).dict_encoded().is_dict());
    }

    #[test]
    fn numeric_range_skips_nulls() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Value::Null).unwrap();
        b.push(Value::Float(-2.0)).unwrap();
        b.push(Value::Float(5.0)).unwrap();
        let c = b.finish();
        assert_eq!(c.numeric_range(), Some((-2.0, 5.0)));
    }
}
