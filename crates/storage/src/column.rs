use std::sync::Arc;

use crate::{Bitmap, DataType, Result, StorageError, Value};

/// A typed, contiguous column with an optional validity bitmap.
///
/// Invariant: if `validity` is `Some`, its length equals the data length and
/// a cleared bit means the slot is NULL (the slot's payload is a type default
/// and must not be observed).
///
/// The payload is shared behind an [`Arc`]: columns are immutable after
/// construction, so `Clone` is O(1) and tables can flow through the
/// physical-plan pipeline (and the engine's catalog snapshots) without
/// copying data. A column may additionally be a *view* over a window of
/// its payload (`offset`/`len`, see [`Column::slice`]): morsel-driven
/// execution slices each column into ~fixed-row morsels that share the
/// same `Arc` payload, so slicing costs O(1) per column plus a small
/// validity-bitmap copy. The stored `validity` is always relative to the
/// view, never to the full payload.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    validity: Option<Bitmap>,
    offset: usize,
    len: usize,
}

#[derive(Debug, Clone)]
enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }
}

impl Column {
    /// Build a column of `ty` from dynamic values, coercing `Int` into
    /// `Float` columns (and whole floats into `Int` columns).
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<Column> {
        let mut b = ColumnBuilder::new(ty);
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// Wrap a full (unsliced) payload.
    fn full(data: ColumnData, validity: Option<Bitmap>) -> Column {
        let len = data.len();
        Column {
            data: Arc::new(data),
            validity,
            offset: 0,
            len,
        }
    }

    /// Column of 64-bit integers (no NULLs).
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column::full(ColumnData::Int(values), None)
    }

    /// Column of 64-bit floats (no NULLs).
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column::full(ColumnData::Float(values), None)
    }

    /// Column of strings (no NULLs).
    #[allow(clippy::should_implement_trait)] // established inherent name
    pub fn from_str(values: Vec<String>) -> Column {
        Column::full(ColumnData::Str(values), None)
    }

    /// Column of booleans (no NULLs).
    pub fn from_bool(values: Vec<bool>) -> Column {
        Column::full(ColumnData::Bool(values), None)
    }

    /// Number of rows (of this view, not of the shared payload).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical type.
    pub fn data_type(&self) -> DataType {
        match self.data.as_ref() {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// True if row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v.get(i))
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match &self.validity {
            Some(v) => v.len() - v.count_ones(),
            None => 0,
        }
    }

    /// Dynamic value at row `i` (bounds-checked).
    pub fn value(&self, i: usize) -> Value {
        if i >= self.len() {
            panic!("row {i} out of bounds for column of len {}", self.len());
        }
        if self.is_null(i) {
            return Value::Null;
        }
        let i = self.offset + i;
        match self.data.as_ref() {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Numeric view of row `i` (NULL → `None`; ints widen).
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        let i = self.offset + i;
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            ColumnData::Bool(v) => Some(v[i] as u8 as f64),
            ColumnData::Str(_) => None,
        }
    }

    /// Borrowed `i64` slice if this is a non-null Int column.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match (self.data.as_ref(), &self.validity) {
            (ColumnData::Int(v), None) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Borrowed `f64` slice if this is a non-null Float column.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match (self.data.as_ref(), &self.validity) {
            (ColumnData::Float(v), None) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw `i64` payload regardless of validity (NULL slots hold a type
    /// default and must be masked with [`Column::validity`]).
    pub fn i64_data(&self) -> Option<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw `f64` payload regardless of validity.
    pub fn f64_data(&self) -> Option<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Float(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw `bool` payload regardless of validity.
    pub fn bool_data(&self) -> Option<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// Raw string payload regardless of validity.
    pub fn str_data(&self) -> Option<&[String]> {
        match self.data.as_ref() {
            ColumnData::Str(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The validity bitmap (`None` = no NULLs).
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Int column from raw parts; an all-ones validity is normalized to
    /// `None` so kernel outputs are indistinguishable from builder output.
    pub fn from_i64_opt(values: Vec<i64>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Int(values), normalize_validity(validity))
    }

    /// Float column from raw parts (see [`Column::from_i64_opt`]).
    pub fn from_f64_opt(values: Vec<f64>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Float(values), normalize_validity(validity))
    }

    /// Bool column from raw parts (see [`Column::from_i64_opt`]).
    pub fn from_bool_opt(values: Vec<bool>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Bool(values), normalize_validity(validity))
    }

    /// String column from raw parts (see [`Column::from_i64_opt`]).
    pub fn from_str_opt(values: Vec<String>, validity: Option<Bitmap>) -> Column {
        Column::full(ColumnData::Str(values), normalize_validity(validity))
    }

    /// Total order between two rows of this column (NULLs first, floats
    /// via `total_cmp`) without materializing [`Value`]s — the sort
    /// comparator of the physical plan layer.
    pub fn total_cmp_rows(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.is_null(a), self.is_null(b)) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {}
        }
        let (a, b) = (self.offset + a, self.offset + b);
        match self.data.as_ref() {
            ColumnData::Bool(v) => v[a].cmp(&v[b]),
            ColumnData::Int(v) => v[a].cmp(&v[b]),
            ColumnData::Float(v) => v[a].total_cmp(&v[b]),
            ColumnData::Str(v) => v[a].cmp(&v[b]),
        }
    }

    /// All values as f64, with NULL/non-numeric as `None`.
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.f64_at(i)).collect()
    }

    /// Gather rows by index (indices may repeat and reorder).
    pub fn take(&self, indices: &[usize]) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|v| Bitmap::from_iter(indices.iter().map(|&i| v.get(i))));
        let o = self.offset;
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[o + i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[o + i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[o + i]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(indices.iter().map(|&i| v[o + i].clone()).collect())
            }
        };
        Column::full(data, validity)
    }

    /// Zero-copy view of rows `[offset, offset + len)`: the payload stays
    /// shared behind the `Arc`; only the validity window is copied. This
    /// is the morsel entry point of the storage layer — every typed
    /// kernel accepts the slices such a view exposes.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        assert!(offset + len <= self.len, "column slice out of bounds");
        Column {
            data: Arc::clone(&self.data),
            validity: self
                .validity
                .as_ref()
                .map(|v| v.slice(offset, len))
                .and_then(|v| normalize_validity(Some(v))),
            offset: self.offset + offset,
            len,
        }
    }

    /// Keep rows whose selection bit is set.
    pub fn filter(&self, selection: &Bitmap) -> Column {
        assert_eq!(selection.len(), self.len(), "selection length mismatch");
        self.take(&selection.to_indices())
    }

    /// Concatenate with another column of the same type.
    pub fn concat(&self, other: &Column) -> Result<Column> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                expected: self.data_type().to_string(),
                actual: other.data_type().to_string(),
                context: "Column::concat".into(),
            });
        }
        let mut b = ColumnBuilder::new(self.data_type());
        for i in 0..self.len() {
            b.push(self.value(i))?;
        }
        for i in 0..other.len() {
            b.push(other.value(i))?;
        }
        Ok(b.finish())
    }

    /// Vertically concatenate many same-typed columns in one pass,
    /// extending raw payload slices instead of round-tripping per-cell
    /// [`Value`]s — the merge step of morsel-driven execution. Payload
    /// bits (including float NaN payloads) are preserved exactly.
    pub fn concat_many(parts: &[&Column]) -> Result<Column> {
        let Some(first) = parts.first() else {
            return Err(StorageError::InvalidValue(
                "Column::concat_many needs at least one input".into(),
            ));
        };
        let ty = first.data_type();
        for p in parts {
            if p.data_type() != ty {
                return Err(StorageError::TypeMismatch {
                    expected: ty.to_string(),
                    actual: p.data_type().to_string(),
                    context: "Column::concat_many".into(),
                });
            }
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let validity = if parts.iter().any(|p| p.validity.is_some()) {
            let mut bits = Bitmap::zeros(total);
            let mut at = 0;
            for p in parts {
                match &p.validity {
                    Some(v) => {
                        for i in v.iter_ones() {
                            bits.set(at + i, true);
                        }
                    }
                    None => {
                        for i in 0..p.len() {
                            bits.set(at + i, true);
                        }
                    }
                }
                at += p.len();
            }
            Some(bits)
        } else {
            None
        };
        let data = match ty {
            DataType::Int => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.i64_data().expect("type-checked"));
                }
                ColumnData::Int(out)
            }
            DataType::Float => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.f64_data().expect("type-checked"));
                }
                ColumnData::Float(out)
            }
            DataType::Bool => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.bool_data().expect("type-checked"));
                }
                ColumnData::Bool(out)
            }
            DataType::Str => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.str_data().expect("type-checked"));
                }
                ColumnData::Str(out)
            }
        };
        Ok(Column::full(data, normalize_validity(validity)))
    }

    /// Iterate dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Min and max over non-null numeric rows.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        for i in 0..self.len() {
            if let Some(x) = self.f64_at(i) {
                min = min.min(x);
                max = max.max(x);
                seen = true;
            }
        }
        seen.then_some((min, max))
    }
}

fn normalize_validity(validity: Option<Bitmap>) -> Option<Bitmap> {
    validity.filter(|v| !v.all())
}

/// Incremental, type-checked column construction.
#[derive(Debug)]
pub struct ColumnBuilder {
    ty: DataType,
    data: ColumnData,
    validity: Option<Bitmap>,
    nulls: Vec<bool>,
    has_null: bool,
}

impl ColumnBuilder {
    /// New builder for type `ty`.
    pub fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        };
        ColumnBuilder {
            ty,
            data,
            validity: None,
            nulls: Vec::new(),
            has_null: false,
        }
    }

    /// New builder with row-capacity hint.
    pub fn with_capacity(ty: DataType, capacity: usize) -> Self {
        let data = match ty {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(capacity)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(capacity)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(capacity)),
        };
        ColumnBuilder {
            ty,
            data,
            validity: None,
            nulls: Vec::with_capacity(capacity),
            has_null: false,
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Append a value, coercing between Int/Float where lossless.
    pub fn push(&mut self, v: Value) -> Result<()> {
        let mismatch = |actual: &Value, ty: DataType| StorageError::TypeMismatch {
            expected: ty.to_string(),
            actual: actual
                .data_type()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "NULL".into()),
            context: "ColumnBuilder::push".into(),
        };
        if v.is_null() {
            self.has_null = true;
            self.nulls.push(true);
            match &mut self.data {
                ColumnData::Bool(d) => d.push(false),
                ColumnData::Int(d) => d.push(0),
                ColumnData::Float(d) => d.push(0.0),
                ColumnData::Str(d) => d.push(String::new()),
            }
            return Ok(());
        }
        self.nulls.push(false);
        match (&mut self.data, &v) {
            (ColumnData::Bool(d), Value::Bool(b)) => d.push(*b),
            (ColumnData::Int(d), Value::Int(i)) => d.push(*i),
            (ColumnData::Int(d), Value::Float(f)) if f.fract() == 0.0 => d.push(*f as i64),
            (ColumnData::Float(d), Value::Float(f)) => d.push(*f),
            (ColumnData::Float(d), Value::Int(i)) => d.push(*i as f64),
            (ColumnData::Str(d), Value::Str(s)) => d.push(s.clone()),
            _ => {
                self.nulls.pop();
                return Err(mismatch(&v, self.ty));
            }
        }
        Ok(())
    }

    /// Finish into an immutable [`Column`].
    pub fn finish(mut self) -> Column {
        if self.has_null {
            self.validity = Some(Bitmap::from_iter(self.nulls.iter().map(|&n| !n)));
        }
        Column::full(self.data, self.validity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_coerces_numerics() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Value::Int(1)).unwrap();
        b.push(Value::Float(2.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.as_f64_slice().unwrap(), &[1.0, 2.5]);
    }

    #[test]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int);
        assert!(b.push(Value::Str("x".into())).is_err());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn nulls_tracked_in_validity() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Value::Int(1)).unwrap();
        b.push(Value::Null).unwrap();
        b.push(Value::Int(3)).unwrap();
        let c = b.finish();
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
        assert_eq!(c.f64_at(1), None);
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64(vec![10, 20, 30]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.as_i64_slice().unwrap(), &[30, 10, 10]);
    }

    #[test]
    fn filter_by_bitmap() {
        let c = Column::from_str(vec!["a".into(), "b".into(), "c".into()]);
        let sel = Bitmap::from_iter([true, false, true]);
        let f = c.filter(&sel);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(1), Value::Str("c".into()));
    }

    #[test]
    fn concat_same_type() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_i64(vec![2, 3]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_i64_slice().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn concat_type_mismatch_errors() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_str(vec!["x".into()]);
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn slice_is_a_window() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [
            Value::Int(10),
            Value::Null,
            Value::Int(30),
            Value::Int(40),
            Value::Int(50),
        ] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let s = c.slice(1, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(0), Value::Null);
        assert_eq!(s.value(1), Value::Int(30));
        assert_eq!(s.i64_data().unwrap(), &[0, 30, 40]);
        assert_eq!(s.null_count(), 1);
        // Nested slices compose; an all-valid window drops its validity.
        let s2 = s.slice(1, 2);
        assert!(s2.validity().is_none());
        assert_eq!(s2.as_i64_slice().unwrap(), &[30, 40]);
        assert_eq!(s2.take(&[1, 0]).as_i64_slice().unwrap(), &[40, 30]);
        assert_eq!(s2.total_cmp_rows(0, 1), std::cmp::Ordering::Less);
    }

    #[test]
    fn concat_many_rebuilds_slices() {
        let mut b = ColumnBuilder::new(DataType::Float);
        for v in [
            Value::Float(1.5),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(-0.0),
        ] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        let whole = Column::concat_many(&[&c.slice(0, 2), &c.slice(2, 2)]).unwrap();
        assert_eq!(whole.len(), 4);
        for i in 0..4 {
            assert_eq!(whole.value(i), c.value(i), "row {i}");
        }
        let no_nulls = Column::concat_many(&[&c.slice(0, 1), &c.slice(3, 1)]).unwrap();
        assert!(no_nulls.validity().is_none());
        assert!(Column::concat_many(&[]).is_err());
    }

    #[test]
    fn from_parts_normalizes_all_ones_validity() {
        let c = Column::from_i64_opt(vec![1, 2], Some(Bitmap::ones(2)));
        assert!(c.validity().is_none());
        assert!(c.as_i64_slice().is_some());
        let c = Column::from_f64_opt(vec![1.0, 2.0], Some(Bitmap::from_iter([true, false])));
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn total_cmp_rows_matches_value_total_cmp() {
        let mut b = ColumnBuilder::new(DataType::Float);
        for v in [
            Value::Float(2.0),
            Value::Null,
            Value::Float(-1.0),
            Value::Float(2.0),
        ] {
            b.push(v).unwrap();
        }
        let c = b.finish();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    c.total_cmp_rows(a, b),
                    c.value(a).total_cmp(&c.value(b)),
                    "rows {a},{b}"
                );
            }
        }
    }

    #[test]
    fn numeric_range_skips_nulls() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Value::Null).unwrap();
        b.push(Value::Float(-2.0)).unwrap();
        b.push(Value::Float(5.0)).unwrap();
        let c = b.finish();
        assert_eq!(c.numeric_range(), Some((-2.0, 5.0)));
    }
}
