use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::schema::DataType;

/// A dynamically typed SQL scalar value.
///
/// `Value` is the unit of exchange between the parser, the executor, and the
/// statistics layer (marginal cells are keyed by tuples of `Value`s). It
/// implements a *total* equality and hash (floats compared by bit pattern) so
/// it can key hash maps, plus SQL-flavoured comparison helpers that coerce
/// between [`Value::Int`] and [`Value::Float`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The [`DataType`] of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (ints widen to floats); `None` for
    /// non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value; floats are rejected unless they are whole.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison with numeric coercion. Returns `None` when either side
    /// is NULL or the types are incomparable (SQL three-valued logic).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering for sorting: NULLs first, then by type, then by value
    /// (floats via `total_cmp`, numerics coerced).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            // Heterogeneous non-numeric pairs: order by type tag for stability.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Coerce this value to the given data type if losslessly possible.
    pub fn coerce_to(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Some(Value::Int(*f as i64)),
            (v, ty) if v.data_type() == Some(ty) => Some(v.clone()),
            _ => None,
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *b == *a as f64 && b.fract() == 0.0
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and whole floats must hash identically because they
            // compare equal (see PartialEq above).
            Value::Int(i) => {
                state.write_u8(2);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < i64::MAX as f64 {
                    state.write_u8(2);
                    state.write_i64(*f as i64);
                } else {
                    state.write_u8(3);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn numeric_coercion_eq_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, 1);
        assert!(m.contains_key(&b));
    }

    #[test]
    fn null_compares_as_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_coerces_int_float() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vs = [Value::Int(2), Value::Null, Value::Int(1)];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(1));
    }

    #[test]
    fn display_round_trips_simply() {
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn coerce_to_float_widens_int() {
        assert_eq!(
            Value::Int(7).coerce_to(DataType::Float),
            Some(Value::Float(7.0))
        );
        assert_eq!(Value::Float(7.5).coerce_to(DataType::Int), None);
    }
}
