//! Vectorized compute kernels over typed column data.
//!
//! These are the hot loops of the query executor: comparison, arithmetic,
//! gather/filter, and grouped-aggregation primitives that operate
//! directly on `&[i64]` / `&[f64]` / `&[String]` slices plus [`Bitmap`]s,
//! never materializing a per-cell [`crate::Value`]. The planner in
//! `mosaic-core` lowers expression trees onto these kernels and falls
//! back to row-at-a-time evaluation only for shapes the kernels don't
//! cover.
//!
//! Every kernel takes plain slices, so all of them are *morsel-sliceable*:
//! a caller may hand in any window of a column's payload (see
//! `Column::slice`) and combine the per-window results afterwards. For
//! aggregation that combination is explicit — workers accumulate into a
//! mergeable [`AggState`] per morsel and the final pass folds the partial
//! states together in morsel order.
//!
//! Numeric comparison semantics intentionally mirror `Value::sql_cmp`:
//! *all* numeric comparisons (including Int vs Int) coerce through `f64`,
//! so kernel results are bit-identical to the row-at-a-time reference
//! oracle.
//!
//! ```
//! use mosaic_storage::kernels::{self, CmpOp};
//!
//! // Predicate kernel: `v > 2` over a typed slice → selection bitmap.
//! let data = [1i64, 5, 3];
//! let sel = kernels::cmp_i64_scalar(&data, CmpOp::Gt, 2.0);
//! assert_eq!(sel.to_indices(), vec![1, 2]);
//! // Gather kernel: keep the selected rows.
//! assert_eq!(kernels::filter_i64(&data, &sel), vec![5, 3]);
//! ```

use std::cmp::Ordering;

use crate::Bitmap;

/// Comparison operator for the `cmp_*` kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether an `Ordering` satisfies this operator.
    #[inline]
    pub fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

// ---- comparison kernels (truth bitmaps; NULL handling is the caller's
// ---- job via validity intersection) ----

macro_rules! cmp_scalar_kernel {
    ($name:ident, $t:ty) => {
        /// Compare every element against a scalar, producing a truth
        /// bitmap. Numeric inputs coerce through `f64` (SQL semantics).
        pub fn $name(data: &[$t], op: CmpOp, rhs: f64) -> Bitmap {
            match op {
                CmpOp::Eq => Bitmap::from_iter(data.iter().map(|&v| v as f64 == rhs)),
                CmpOp::Ne => Bitmap::from_iter(data.iter().map(|&v| v as f64 != rhs)),
                CmpOp::Lt => Bitmap::from_iter(data.iter().map(|&v| (v as f64) < rhs)),
                CmpOp::Le => Bitmap::from_iter(data.iter().map(|&v| v as f64 <= rhs)),
                CmpOp::Gt => Bitmap::from_iter(data.iter().map(|&v| v as f64 > rhs)),
                CmpOp::Ge => Bitmap::from_iter(data.iter().map(|&v| v as f64 >= rhs)),
            }
        }
    };
}

cmp_scalar_kernel!(cmp_i64_scalar, i64);
cmp_scalar_kernel!(cmp_f64_scalar, f64);

macro_rules! cmp_binary_kernel {
    ($name:ident, $ta:ty, $tb:ty) => {
        /// Element-wise comparison of two equal-length slices.
        pub fn $name(a: &[$ta], b: &[$tb], op: CmpOp) -> Bitmap {
            assert_eq!(a.len(), b.len(), "kernel length mismatch");
            let pairs = a.iter().zip(b.iter());
            match op {
                CmpOp::Eq => Bitmap::from_iter(pairs.map(|(&x, &y)| x as f64 == y as f64)),
                CmpOp::Ne => Bitmap::from_iter(pairs.map(|(&x, &y)| x as f64 != y as f64)),
                CmpOp::Lt => Bitmap::from_iter(pairs.map(|(&x, &y)| (x as f64) < y as f64)),
                CmpOp::Le => Bitmap::from_iter(pairs.map(|(&x, &y)| x as f64 <= y as f64)),
                CmpOp::Gt => Bitmap::from_iter(pairs.map(|(&x, &y)| x as f64 > y as f64)),
                CmpOp::Ge => Bitmap::from_iter(pairs.map(|(&x, &y)| x as f64 >= y as f64)),
            }
        }
    };
}

cmp_binary_kernel!(cmp_i64, i64, i64);
cmp_binary_kernel!(cmp_f64, f64, f64);
cmp_binary_kernel!(cmp_i64_f64, i64, f64);
cmp_binary_kernel!(cmp_f64_i64, f64, i64);

/// Compare every string against a scalar.
pub fn cmp_str_scalar(data: &[String], op: CmpOp, rhs: &str) -> Bitmap {
    Bitmap::from_iter(data.iter().map(|v| op.holds(v.as_str().cmp(rhs))))
}

/// Element-wise comparison of two string slices.
pub fn cmp_str(a: &[String], b: &[String], op: CmpOp) -> Bitmap {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    Bitmap::from_iter(a.iter().zip(b).map(|(x, y)| op.holds(x.cmp(y))))
}

/// Membership of every numeric element in a literal set (`IN` lists).
/// The set is tiny in practice, so a linear scan beats hashing.
pub fn in_f64_set(data: &[f64], set: &[f64]) -> Bitmap {
    Bitmap::from_iter(data.iter().map(|&v| set.contains(&v)))
}

/// Membership of every integer element in a numeric literal set.
pub fn in_i64_set(data: &[i64], set: &[f64]) -> Bitmap {
    Bitmap::from_iter(data.iter().map(|&v| set.contains(&(v as f64))))
}

/// Membership of every string element in a literal set.
pub fn in_str_set(data: &[String], set: &[&str]) -> Bitmap {
    Bitmap::from_iter(data.iter().map(|v| set.iter().any(|s| s == v)))
}

/// Per-row truth lookup for dictionary-encoded strings: `lut[code]` is
/// the predicate's answer for that dictionary entry, precomputed once per
/// dictionary (O(K) string comparisons), so the per-row cost is one
/// indexed load. Codes beyond `lut` (impossible for a well-formed
/// column) read as `false`.
pub fn lookup_codes(codes: &[u32], lut: &[bool]) -> Bitmap {
    Bitmap::from_iter(
        codes
            .iter()
            .map(|&c| lut.get(c as usize).copied().unwrap_or(false)),
    )
}

/// Element-wise comparison of two borrowed string slices — the
/// column-vs-column path when at least one side is dictionary-encoded
/// (each side materializes `&str` views, never owned `String`s).
pub fn cmp_str_pairs(a: &[&str], b: &[&str], op: CmpOp) -> Bitmap {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    Bitmap::from_iter(a.iter().zip(b).map(|(x, y)| op.holds(x.cmp(y))))
}

/// `low <= v <= high` for every element (numeric `BETWEEN`).
pub fn between_f64(data: &[f64], low: f64, high: f64) -> Bitmap {
    Bitmap::from_iter(data.iter().map(|&v| v >= low && v <= high))
}

/// `low <= v <= high` for every integer element.
pub fn between_i64(data: &[i64], low: f64, high: f64) -> Bitmap {
    Bitmap::from_iter(data.iter().map(|&v| v as f64 >= low && v as f64 <= high))
}

// ---- arithmetic kernels ----

/// Integer arithmetic operator for [`arith_i64`] (division is excluded:
/// SQL division always produces a float — see [`div_f64`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntArithOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
}

/// Element-wise wrapping integer arithmetic.
pub fn arith_i64(a: &[i64], op: IntArithOp, b: &[i64]) -> Vec<i64> {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    let pairs = a.iter().zip(b.iter());
    match op {
        IntArithOp::Add => pairs.map(|(&x, &y)| x.wrapping_add(y)).collect(),
        IntArithOp::Sub => pairs.map(|(&x, &y)| x.wrapping_sub(y)).collect(),
        IntArithOp::Mul => pairs.map(|(&x, &y)| x.wrapping_mul(y)).collect(),
    }
}

/// Wrapping integer arithmetic against a scalar right-hand side.
pub fn arith_i64_scalar(a: &[i64], op: IntArithOp, b: i64) -> Vec<i64> {
    match op {
        IntArithOp::Add => a.iter().map(|&x| x.wrapping_add(b)).collect(),
        IntArithOp::Sub => a.iter().map(|&x| x.wrapping_sub(b)).collect(),
        IntArithOp::Mul => a.iter().map(|&x| x.wrapping_mul(b)).collect(),
    }
}

/// Float arithmetic operator for [`arith_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

/// Element-wise float arithmetic.
pub fn arith_f64(a: &[f64], op: FloatArithOp, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    let pairs = a.iter().zip(b.iter());
    match op {
        FloatArithOp::Add => pairs.map(|(&x, &y)| x + y).collect(),
        FloatArithOp::Sub => pairs.map(|(&x, &y)| x - y).collect(),
        FloatArithOp::Mul => pairs.map(|(&x, &y)| x * y).collect(),
    }
}

/// Float arithmetic against a scalar right-hand side.
pub fn arith_f64_scalar(a: &[f64], op: FloatArithOp, b: f64) -> Vec<f64> {
    match op {
        FloatArithOp::Add => a.iter().map(|&x| x + b).collect(),
        FloatArithOp::Sub => a.iter().map(|&x| x - b).collect(),
        FloatArithOp::Mul => a.iter().map(|&x| x * b).collect(),
    }
}

/// Float arithmetic with a scalar *left*-hand side (`2 - x`).
pub fn arith_scalar_f64(a: f64, op: FloatArithOp, b: &[f64]) -> Vec<f64> {
    match op {
        FloatArithOp::Add => b.iter().map(|&y| a + y).collect(),
        FloatArithOp::Sub => b.iter().map(|&y| a - y).collect(),
        FloatArithOp::Mul => b.iter().map(|&y| a * y).collect(),
    }
}

/// SQL division: always float, divisor zero ⇒ NULL. Returns the quotients
/// plus a bitmap of rows that stay valid (cleared where the divisor is
/// zero).
pub fn div_f64(a: &[f64], b: &[f64]) -> (Vec<f64>, Bitmap) {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    let valid = Bitmap::from_iter(b.iter().map(|&y| y != 0.0));
    let out = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| if y == 0.0 { 0.0 } else { x / y })
        .collect();
    (out, valid)
}

/// SQL modulo over floats: divisor zero ⇒ NULL.
pub fn mod_f64(a: &[f64], b: &[f64]) -> (Vec<f64>, Bitmap) {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    let valid = Bitmap::from_iter(b.iter().map(|&y| y != 0.0));
    let out = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| if y == 0.0 { 0.0 } else { x % y })
        .collect();
    (out, valid)
}

/// SQL modulo over integers (stays integral): divisor zero ⇒ NULL.
pub fn mod_i64(a: &[i64], b: &[i64]) -> (Vec<i64>, Bitmap) {
    assert_eq!(a.len(), b.len(), "kernel length mismatch");
    let valid = Bitmap::from_iter(b.iter().map(|&y| y != 0));
    let out = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| if y == 0 { 0 } else { x % y })
        .collect();
    (out, valid)
}

/// Widen an integer slice to `f64` (for mixed-type arithmetic).
pub fn widen_i64(data: &[i64]) -> Vec<f64> {
    data.iter().map(|&v| v as f64).collect()
}

/// Negate every integer.
pub fn neg_i64(data: &[i64]) -> Vec<i64> {
    data.iter().map(|&v| v.wrapping_neg()).collect()
}

/// Negate every float.
pub fn neg_f64(data: &[f64]) -> Vec<f64> {
    data.iter().map(|&v| -v).collect()
}

// ---- gather / filter kernels ----

/// Gather `data[indices[i]]` (indices may repeat and reorder).
pub fn take_i64(data: &[i64], indices: &[usize]) -> Vec<i64> {
    indices.iter().map(|&i| data[i]).collect()
}

/// Gather floats by index.
pub fn take_f64(data: &[f64], indices: &[usize]) -> Vec<f64> {
    indices.iter().map(|&i| data[i]).collect()
}

/// Gather strings by index (payload gather for join output columns).
pub fn take_str(data: &[String], indices: &[usize]) -> Vec<String> {
    indices.iter().map(|&i| data[i].clone()).collect()
}

// ---- join-key kernels ----
//
// Equi-join keys compare with `Value::sql_cmp` equality: every numeric
// value (Int, Float, Bool) coerces through `f64`, strings compare
// exactly, and NULL / NaN never match anything. The kernels normalize
// numeric key columns into 64-bit tokens such that two values are
// join-equal iff their tokens are equal — `-0.0` folds onto `0.0`
// (`sql_cmp` calls them equal) and NaN rows are marked invalid.

/// Normalized join-key token of one `f64`; `None` for NaN (a NaN key
/// never matches, like NULL).
#[inline]
pub fn join_key_f64(v: f64) -> Option<u64> {
    if v.is_nan() {
        return None;
    }
    // -0.0 == 0.0 under sql_cmp but differs in bit pattern; normalize.
    let v = if v == 0.0 { 0.0 } else { v };
    Some(v.to_bits())
}

/// Join-key tokens of an integer key column. Ints coerce through `f64`
/// first — `sql_cmp` compares all numerics that way, so integers beyond
/// 2^53 that collapse to one double are join-equal by design.
pub fn join_keys_i64(data: &[i64]) -> Vec<u64> {
    data.iter().map(|&v| (v as f64).to_bits()).collect()
}

/// Join-key tokens of a float key column, plus the bitmap of rows whose
/// key is usable (cleared for NaN — those rows never match).
pub fn join_keys_f64(data: &[f64]) -> (Vec<u64>, Bitmap) {
    let mut out = Vec::with_capacity(data.len());
    let mut valid = Bitmap::ones(data.len());
    for (i, &v) in data.iter().enumerate() {
        match join_key_f64(v) {
            Some(bits) => out.push(bits),
            None => {
                out.push(0);
                valid.set(i, false);
            }
        }
    }
    (out, valid)
}

/// Join-key tokens of a boolean key column (`sql_cmp` coerces booleans
/// numerically, so `true` join-matches `1` and `1.0`).
pub fn join_keys_bool(data: &[bool]) -> Vec<u64> {
    data.iter().map(|&b| (b as u8 as f64).to_bits()).collect()
}

/// Keep elements whose selection bit is set.
pub fn filter_i64(data: &[i64], selection: &Bitmap) -> Vec<i64> {
    assert_eq!(data.len(), selection.len(), "selection length mismatch");
    selection.iter_ones().map(|i| data[i]).collect()
}

/// Keep floats whose selection bit is set.
pub fn filter_f64(data: &[f64], selection: &Bitmap) -> Vec<f64> {
    assert_eq!(data.len(), selection.len(), "selection length mismatch");
    selection.iter_ones().map(|i| data[i]).collect()
}

/// Intersect two optional validity bitmaps (`None` = all valid).
pub fn combine_validity(a: Option<&Bitmap>, b: Option<&Bitmap>) -> Option<Bitmap> {
    match (a, b) {
        (None, None) => None,
        (Some(v), None) | (None, Some(v)) => Some(v.clone()),
        (Some(x), Some(y)) => Some(x.and(y)),
    }
}

// ---- grouped aggregation kernels ----
//
// `group_ids` assigns every row to a dense group index; the accumulator
// slices are indexed by group. `weights` (when present) realize the
// paper's §5.3 weighted-aggregate rewrite without any per-row branching
// in the unweighted case.

/// Mergeable partial-aggregate state for SUM / AVG / COUNT over one set
/// of groups: `Σ x·w` (`sums`), `Σ w` (`wsums`, 1-weights when
/// unweighted), and the qualifying row count (`counts`), each indexed by
/// dense group id.
///
/// Morsel-driven execution gives every worker its own `AggState` filled
/// through [`group_sum_f64`] / [`group_sum_i64`] / [`group_count`] over
/// that worker's morsels, then folds the states together with
/// [`AggState::merge_from`] **in morsel order** — fixed morsel boundaries
/// plus an ordered merge make the result independent of how many threads
/// ran the morsels.
///
/// ```
/// use mosaic_storage::kernels::{self, AggState};
///
/// // Two morsels of `SUM(x) GROUP BY g` with groups appearing in
/// // different local orders.
/// let mut m0 = AggState::new(2); // local groups: [a, b]
/// kernels::group_sum_f64(
///     &[1.0, 2.0, 4.0],
///     None,
///     &[0, 1, 0],
///     None,
///     &mut m0.sums,
///     &mut m0.wsums,
///     &mut m0.counts,
/// );
/// let mut m1 = AggState::new(2); // local groups: [b, a]
/// kernels::group_sum_f64(
///     &[10.0, 20.0],
///     None,
///     &[0, 1],
///     None,
///     &mut m1.sums,
///     &mut m1.wsums,
///     &mut m1.counts,
/// );
/// // Global group order is first-appearance order: [a, b].
/// let mut global = AggState::new(2);
/// global.merge_from(&m0, &[0, 1]); // local a→0, b→1
/// global.merge_from(&m1, &[1, 0]); // local b→1, a→0
/// assert_eq!(global.sums, vec![25.0, 12.0]);
/// assert_eq!(global.counts, vec![3, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AggState {
    /// Per-group `Σ x·w` (plain `Σ x` when unweighted).
    pub sums: Vec<f64>,
    /// Per-group `Σ w` (the qualifying row count as `f64` when
    /// unweighted) — the denominator of weighted AVG.
    pub wsums: Vec<f64>,
    /// Per-group count of qualifying (non-NULL) rows.
    pub counts: Vec<u64>,
}

impl AggState {
    /// Zeroed state for `n_groups` groups.
    pub fn new(n_groups: usize) -> AggState {
        AggState {
            sums: vec![0.0; n_groups],
            wsums: vec![0.0; n_groups],
            counts: vec![0u64; n_groups],
        }
    }

    /// Number of groups this state covers.
    pub fn n_groups(&self) -> usize {
        self.counts.len()
    }

    /// Fold another state's accumulators into this one. `group_map[l]`
    /// is the index in `self` of the other state's local group `l`;
    /// mapped indices must be in bounds.
    pub fn merge_from(&mut self, other: &AggState, group_map: &[u32]) {
        assert_eq!(
            other.n_groups(),
            group_map.len(),
            "group map length mismatch"
        );
        for (l, &g) in group_map.iter().enumerate() {
            let g = g as usize;
            self.sums[g] += other.sums[l];
            self.wsums[g] += other.wsums[l];
            self.counts[g] += other.counts[l];
        }
    }

    /// Sparse variant of [`AggState::merge_from`] for partitioned merge:
    /// fold only the listed `(local, target)` pairs. Because each local
    /// group appears at most once per source state, per-target addition
    /// order equals the order sources are folded — identical to
    /// `merge_from`, so partitioning never changes float results.
    pub fn merge_pairs(&mut self, other: &AggState, pairs: &[(u32, u32)]) {
        for &(l, g) in pairs {
            let (l, g) = (l as usize, g as usize);
            self.sums[g] += other.sums[l];
            self.wsums[g] += other.wsums[l];
            self.counts[g] += other.counts[l];
        }
    }
}

/// Weighted/unweighted grouped sum over floats. Accumulates `Σ w·x` into
/// `sums` and the qualifying row count into `counts`, skipping invalid
/// (NULL) rows.
pub fn group_sum_f64(
    data: &[f64],
    validity: Option<&Bitmap>,
    group_ids: &[u32],
    weights: Option<&[f64]>,
    sums: &mut [f64],
    wsums: &mut [f64],
    counts: &mut [u64],
) {
    assert_eq!(data.len(), group_ids.len(), "kernel length mismatch");
    match (validity, weights) {
        (None, None) => {
            for (i, &x) in data.iter().enumerate() {
                let g = group_ids[i] as usize;
                sums[g] += x;
                wsums[g] += 1.0;
                counts[g] += 1;
            }
        }
        (None, Some(w)) => {
            for (i, &x) in data.iter().enumerate() {
                let g = group_ids[i] as usize;
                sums[g] += w[i] * x;
                wsums[g] += w[i];
                counts[g] += 1;
            }
        }
        (Some(v), None) => {
            for i in v.iter_ones() {
                let g = group_ids[i] as usize;
                sums[g] += data[i];
                wsums[g] += 1.0;
                counts[g] += 1;
            }
        }
        (Some(v), Some(w)) => {
            for i in v.iter_ones() {
                let g = group_ids[i] as usize;
                sums[g] += w[i] * data[i];
                wsums[g] += w[i];
                counts[g] += 1;
            }
        }
    }
}

/// Grouped sum over integers (unweighted fast path for `SUM(int_col)`).
pub fn group_sum_i64(
    data: &[i64],
    validity: Option<&Bitmap>,
    group_ids: &[u32],
    sums: &mut [f64],
    counts: &mut [u64],
) {
    assert_eq!(data.len(), group_ids.len(), "kernel length mismatch");
    match validity {
        None => {
            for (i, &x) in data.iter().enumerate() {
                let g = group_ids[i] as usize;
                sums[g] += x as f64;
                counts[g] += 1;
            }
        }
        Some(v) => {
            for i in v.iter_ones() {
                let g = group_ids[i] as usize;
                sums[g] += data[i] as f64;
                counts[g] += 1;
            }
        }
    }
}

/// Grouped COUNT: weighted count (`Σ w`) plus raw qualifying-row count
/// for every group, skipping invalid rows.
pub fn group_count(
    validity: Option<&Bitmap>,
    group_ids: &[u32],
    weights: Option<&[f64]>,
    wsums: &mut [f64],
    counts: &mut [u64],
) {
    match (validity, weights) {
        (None, None) => {
            for &g in group_ids {
                wsums[g as usize] += 1.0;
                counts[g as usize] += 1;
            }
        }
        (None, Some(w)) => {
            for (i, &g) in group_ids.iter().enumerate() {
                wsums[g as usize] += w[i];
                counts[g as usize] += 1;
            }
        }
        (Some(v), None) => {
            for i in v.iter_ones() {
                wsums[group_ids[i] as usize] += 1.0;
                counts[group_ids[i] as usize] += 1;
            }
        }
        (Some(v), Some(w)) => {
            for i in v.iter_ones() {
                wsums[group_ids[i] as usize] += w[i];
                counts[group_ids[i] as usize] += 1;
            }
        }
    }
}

/// Grouped min/max over floats (weights never change extrema).
/// `mins`/`maxs` must be seeded with `INFINITY`/`NEG_INFINITY`.
pub fn group_min_max_f64(
    data: &[f64],
    validity: Option<&Bitmap>,
    group_ids: &[u32],
    mins: &mut [f64],
    maxs: &mut [f64],
    counts: &mut [u64],
) {
    assert_eq!(data.len(), group_ids.len(), "kernel length mismatch");
    let mut visit = |i: usize| {
        let g = group_ids[i] as usize;
        let x = data[i];
        if x < mins[g] {
            mins[g] = x;
        }
        if x > maxs[g] {
            maxs[g] = x;
        }
        counts[g] += 1;
    };
    match validity {
        None => (0..data.len()).for_each(&mut visit),
        Some(v) => v.iter_ones().for_each(&mut visit),
    }
}

/// Grouped min/max over integers.
pub fn group_min_max_i64(
    data: &[i64],
    validity: Option<&Bitmap>,
    group_ids: &[u32],
    mins: &mut [i64],
    maxs: &mut [i64],
    counts: &mut [u64],
) {
    assert_eq!(data.len(), group_ids.len(), "kernel length mismatch");
    let mut visit = |i: usize| {
        let g = group_ids[i] as usize;
        let x = data[i];
        if x < mins[g] {
            mins[g] = x;
        }
        if x > maxs[g] {
            maxs[g] = x;
        }
        counts[g] += 1;
    };
    match validity {
        None => (0..data.len()).for_each(&mut visit),
        Some(v) => v.iter_ones().for_each(&mut visit),
    }
}

/// Merge `K` sorted runs of row indices into one globally sorted index
/// vector — the merge half of the parallel sort: runs are built
/// (sorted) independently on a worker pool, then this kernel performs
/// the deterministic k-way merge on the calling thread.
///
/// `less` must be a **strict total order** over the indices appearing
/// in the runs (callers break key ties on the index itself), each run
/// must be sorted under it, and no index may appear twice. Under those
/// preconditions the output is exactly the order a stable sort of the
/// concatenated runs by the original keys produces — independent of how
/// the indices were split into runs.
///
/// The merge is a binary min-heap of run cursors keyed on each run's
/// current head; ties cannot arise (the order is strict over distinct
/// indices), so the pop sequence — and therefore the result — is a pure
/// function of `less`.
pub fn merge_sorted_runs<F>(runs: &[Vec<usize>], less: F) -> Vec<usize>
where
    F: Fn(usize, usize) -> bool,
{
    fn sift<F: Fn(usize, usize) -> bool>(
        heap: &mut [usize],
        mut i: usize,
        runs: &[Vec<usize>],
        pos: &[usize],
        less: &F,
    ) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            let head = |k: usize| runs[k][pos[k]];
            if l < heap.len() && less(head(heap[l]), head(heap[m])) {
                m = l;
            }
            if r < heap.len() && less(head(heap[r]), head(heap[m])) {
                m = r;
            }
            if m == i {
                return;
            }
            heap.swap(i, m);
            i = m;
        }
    }

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut pos = vec![0usize; runs.len()];
    let mut heap: Vec<usize> = (0..runs.len()).filter(|&r| !runs[r].is_empty()).collect();
    for i in (0..heap.len() / 2).rev() {
        sift(&mut heap, i, runs, &pos, &less);
    }
    while let Some(&r) = heap.first() {
        out.push(runs[r][pos[r]]);
        pos[r] += 1;
        if pos[r] == runs[r].len() {
            let last = heap.len() - 1;
            heap.swap(0, last);
            heap.pop();
        }
        if !heap.is_empty() {
            sift(&mut heap, 0, runs, &pos, &less);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_scalar_matches_manual() {
        let data = [1i64, 5, 3, 5, -2];
        let bm = cmp_i64_scalar(&data, CmpOp::Gt, 2.0);
        assert_eq!(bm.to_indices(), vec![1, 2, 3]);
        let bm = cmp_f64_scalar(&[1.0, 2.5, 2.5], CmpOp::Eq, 2.5);
        assert_eq!(bm.to_indices(), vec![1, 2]);
    }

    #[test]
    fn merge_sorted_runs_matches_stable_sort() {
        // Duplicate keys; the strict total order is (key, index), so the
        // merge must reproduce a stable sort by the keys alone no matter
        // how the indices are cut into runs.
        let keys = [5i64, 1, 3, 3, 2, 5, 1, 4, 3, 0, 2, 5];
        let less = |a: usize, b: usize| (keys[a], a) < (keys[b], b);
        let ord = |a: &usize, b: &usize| {
            if less(*a, *b) {
                std::cmp::Ordering::Less
            } else if less(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        };
        let mut expect: Vec<usize> = (0..keys.len()).collect();
        expect.sort_by_key(|&i| keys[i]); // stable
        for chunk in [1usize, 2, 5, 12] {
            let all: Vec<usize> = (0..keys.len()).collect();
            let runs: Vec<Vec<usize>> = all
                .chunks(chunk)
                .map(|c| {
                    let mut run = c.to_vec();
                    run.sort_unstable_by(ord);
                    run
                })
                .collect();
            assert_eq!(merge_sorted_runs(&runs, less), expect, "chunk {chunk}");
        }
        let empty: [Vec<usize>; 0] = [];
        assert!(merge_sorted_runs(&empty, |a: usize, b: usize| a < b).is_empty());
        assert!(merge_sorted_runs(&[vec![], vec![]], |a, b| a < b).is_empty());
    }

    #[test]
    fn cmp_mixed_int_float() {
        let bm = cmp_i64_f64(&[1, 2, 3], &[1.5, 2.0, 2.5], CmpOp::Ge);
        assert_eq!(bm.to_indices(), vec![1, 2]);
    }

    #[test]
    fn cmp_str_kernels() {
        let data: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            cmp_str_scalar(&data, CmpOp::Ne, "b").to_indices(),
            vec![0, 2]
        );
        assert_eq!(cmp_str(&data, &data, CmpOp::Eq).count_ones(), 3);
    }

    #[test]
    fn in_set_kernels() {
        assert_eq!(in_i64_set(&[1, 2, 3], &[2.0, 9.0]).to_indices(), vec![1]);
        let strs: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        assert_eq!(in_str_set(&strs, &["y", "z"]).to_indices(), vec![1]);
    }

    #[test]
    fn between_inclusive() {
        assert_eq!(
            between_i64(&[1, 2, 3, 4], 2.0, 3.0).to_indices(),
            vec![1, 2]
        );
    }

    #[test]
    fn int_arith_wraps() {
        assert_eq!(
            arith_i64(&[1, i64::MAX], IntArithOp::Add, &[2, 1]),
            vec![3, i64::MIN]
        );
        assert_eq!(arith_i64_scalar(&[5, 6], IntArithOp::Mul, 3), vec![15, 18]);
    }

    #[test]
    fn div_by_zero_invalidates() {
        let (q, valid) = div_f64(&[6.0, 1.0], &[2.0, 0.0]);
        assert_eq!(q[0], 3.0);
        assert!(valid.get(0) && !valid.get(1));
        let (m, valid) = mod_i64(&[7, 7], &[4, 0]);
        assert_eq!(m[0], 3);
        assert!(!valid.get(1));
    }

    #[test]
    fn take_and_filter() {
        assert_eq!(take_i64(&[10, 20, 30], &[2, 0, 0]), vec![30, 10, 10]);
        let sel = Bitmap::from_iter([true, false, true]);
        assert_eq!(filter_f64(&[1.0, 2.0, 3.0], &sel), vec![1.0, 3.0]);
    }

    #[test]
    fn join_key_tokens_follow_sql_equality() {
        // Int 2 and Float 2.0 must produce the same token.
        let ints = join_keys_i64(&[2, -1, 0]);
        let (floats, valid) = join_keys_f64(&[2.0, -0.0, f64::NAN]);
        assert_eq!(ints[0], floats[0]);
        // -0.0 normalizes onto 0.0 (they are sql-equal).
        assert_eq!(floats[1], join_keys_i64(&[0])[0]);
        assert_eq!(ints[2], floats[1]);
        // NaN keys are invalid — they never match.
        assert!(valid.get(0) && valid.get(1) && !valid.get(2));
        assert_eq!(join_key_f64(f64::NAN), None);
        // Booleans coerce numerically, like sql_cmp.
        assert_eq!(join_keys_bool(&[true, false]), join_keys_i64(&[1, 0]));
    }

    #[test]
    fn take_str_reorders_and_repeats() {
        let data: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_str(&data, &[2, 0, 0]), vec!["c", "a", "a"]);
    }

    #[test]
    fn validity_combines_as_and() {
        let a = Bitmap::from_iter([true, true, false]);
        let b = Bitmap::from_iter([true, false, true]);
        assert_eq!(
            combine_validity(Some(&a), Some(&b)).unwrap().to_indices(),
            vec![0]
        );
        assert_eq!(combine_validity(None, Some(&b)).unwrap(), b);
        assert!(combine_validity(None, None).is_none());
    }

    #[test]
    fn grouped_sum_weighted() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let gids = [0u32, 1, 0, 1];
        let w = [10.0, 1.0, 10.0, 1.0];
        let mut sums = [0.0; 2];
        let mut wsums = [0.0; 2];
        let mut counts = [0u64; 2];
        group_sum_f64(
            &data,
            None,
            &gids,
            Some(&w),
            &mut sums,
            &mut wsums,
            &mut counts,
        );
        assert_eq!(sums, [40.0, 6.0]);
        assert_eq!(wsums, [20.0, 2.0]);
        assert_eq!(counts, [2, 2]);
    }

    #[test]
    fn grouped_sum_skips_nulls() {
        let data = [1.0, 99.0, 3.0];
        let validity = Bitmap::from_iter([true, false, true]);
        let gids = [0u32, 0, 0];
        let mut sums = [0.0; 1];
        let mut wsums = [0.0; 1];
        let mut counts = [0u64; 1];
        group_sum_f64(
            &data,
            Some(&validity),
            &gids,
            None,
            &mut sums,
            &mut wsums,
            &mut counts,
        );
        assert_eq!(sums, [4.0]);
        assert_eq!(counts, [2]);
    }

    #[test]
    fn grouped_min_max() {
        let data = [5i64, -1, 9, 0];
        let gids = [0u32, 0, 1, 1];
        let mut mins = [i64::MAX; 2];
        let mut maxs = [i64::MIN; 2];
        let mut counts = [0u64; 2];
        group_min_max_i64(&data, None, &gids, &mut mins, &mut maxs, &mut counts);
        assert_eq!(mins, [-1, 0]);
        assert_eq!(maxs, [5, 9]);
    }

    #[test]
    fn grouped_count_weighted_null_aware() {
        let validity = Bitmap::from_iter([true, false, true, true]);
        let gids = [0u32, 0, 1, 1];
        let w = [2.0, 3.0, 4.0, 5.0];
        let mut wsums = [0.0; 2];
        let mut counts = [0u64; 2];
        group_count(Some(&validity), &gids, Some(&w), &mut wsums, &mut counts);
        assert_eq!(wsums, [2.0, 9.0]);
        assert_eq!(counts, [1, 2]);
    }

    #[test]
    fn lookup_codes_applies_lut() {
        let codes = [0u32, 2, 1, 5];
        let lut = [true, false, true];
        let out = lookup_codes(&codes, &lut);
        // Code 5 is beyond the LUT and reads as false.
        assert_eq!(out.to_indices(), vec![0, 1]);
    }

    #[test]
    fn cmp_str_pairs_matches_cmp_str() {
        let a = vec!["a".to_string(), "b".into(), "c".into()];
        let b = vec!["b".to_string(), "b".into(), "a".into()];
        let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
        let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            assert_eq!(
                cmp_str_pairs(&ar, &br, op).to_indices(),
                cmp_str(&a, &b, op).to_indices(),
                "{op:?}"
            );
        }
    }

    #[test]
    fn merge_pairs_matches_merge_from() {
        let mut local = AggState::new(3);
        for g in 0..3 {
            local.sums[g] = (g + 1) as f64;
            local.wsums[g] = 1.0;
            local.counts[g] = g as u64;
        }
        let map = [2u32, 0, 1];
        let mut a = AggState::new(3);
        a.merge_from(&local, &map);
        let mut b = AggState::new(3);
        let pairs: Vec<(u32, u32)> = map
            .iter()
            .enumerate()
            .map(|(l, &g)| (l as u32, g))
            .collect();
        b.merge_pairs(&local, &pairs);
        assert_eq!(a.sums, b.sums);
        assert_eq!(a.wsums, b.wsums);
        assert_eq!(a.counts, b.counts);
    }
}
