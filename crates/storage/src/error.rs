use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A value's runtime type did not match the column/schema type.
    TypeMismatch {
        /// What the schema expected.
        expected: String,
        /// What was actually provided.
        actual: String,
        /// Where the mismatch happened (column name or context).
        context: String,
    },
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// Two collections that must be the same length were not.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
        /// Where the mismatch happened.
        context: String,
    },
    /// Schemas of two tables that must match did not.
    SchemaMismatch(String),
    /// A row or index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Collection length.
        len: usize,
    },
    /// A value could not be parsed or converted.
    InvalidValue(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, got {actual}"
            ),
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::LengthMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "length mismatch in {context}: expected {expected}, got {actual}"
            ),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            StorageError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}
