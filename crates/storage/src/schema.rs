use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{Result, StorageError};

/// Physical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Parse a SQL-ish type name (`INT`, `BIGINT`, `FLOAT`, `DOUBLE`,
    /// `REAL`, `TEXT`, `VARCHAR`, `BOOL`, ...).
    pub fn parse_sql(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Str),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "TEXT",
        };
        f.write_str(s)
    }
}

/// A named, typed column in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (matched case-insensitively by the SQL layer).
    pub name: String,
    /// Physical type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A non-nullable field.
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// An ordered collection of [`Field`]s with O(1) name lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from fields. Duplicate names (case-insensitive) keep
    /// the first occurrence in the lookup index.
    pub fn new(fields: Vec<Field>) -> Arc<Schema> {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            index.entry(f.name.to_ascii_lowercase()).or_insert(i);
        }
        Arc::new(Schema { fields, index })
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Case-insensitive lookup of a column's position.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.index
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_owned()))
    }

    /// Case-insensitive lookup of a field by name.
    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// True if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(&name.to_ascii_lowercase())
    }

    /// Structural equality on (name, type) pairs, ignoring nullability.
    pub fn compatible_with(&self, other: &Schema) -> bool {
        self.fields.len() == other.fields.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.name.eq_ignore_ascii_case(&b.name) && a.data_type == b.data_type)
    }

    /// Project a subset of columns (by name) into a new schema.
    pub fn project(&self, names: &[&str]) -> Result<Arc<Schema>> {
        let fields = names
            .iter()
            .map(|n| self.field_by_name(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("B", DataType::Str),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("A").unwrap(), 0);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("c").is_err());
    }

    #[test]
    fn project_preserves_types() {
        let s = schema();
        let p = s.project(&["b"]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.field(0).data_type, DataType::Str);
    }

    #[test]
    fn parse_sql_types() {
        assert_eq!(DataType::parse_sql("double"), Some(DataType::Float));
        assert_eq!(DataType::parse_sql("VARCHAR"), Some(DataType::Str));
        assert_eq!(DataType::parse_sql("blob"), None);
    }

    #[test]
    fn compatible_ignores_case_and_nullability() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]);
        let b = Schema::new(vec![Field::required("X", DataType::Int)]);
        assert!(a.compatible_with(&b));
    }
}
