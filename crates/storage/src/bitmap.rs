/// A fixed-length packed bitmap used for column validity and row selections.
///
/// Filters evaluate predicates into a `Bitmap`; downstream kernels consume
/// either the bitmap directly or the index list from [`Bitmap::iter_ones`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of length `len`.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Build from an iterator of booleans.
    #[allow(clippy::should_implement_trait)] // established inherent name
    pub fn from_iter(iter: impl IntoIterator<Item = bool>) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut current = 0u64;
        for (i, bit) in iter.into_iter().enumerate() {
            let off = i % 64;
            if off == 0 && i > 0 {
                words.push(current);
                current = 0;
            }
            if bit {
                current |= 1 << off;
            }
            len = i + 1;
        }
        if len > 0 {
            words.push(current);
        }
        Bitmap { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// True iff no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise AND with another bitmap of the same length.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise OR with another bitmap of the same length.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Bitmap {
        let mut b = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        b.mask_tail();
        b
    }

    /// Iterate the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let len = self.len;
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let tz = w.trailing_zeros() as usize;
                w &= w - 1;
                let idx = wi * 64 + tz;
                (idx < len).then_some(idx)
            })
        })
    }

    /// Collect indices of set bits into a `Vec`.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter_ones());
        out
    }

    /// Copy bits `[offset, offset + len)` into a new bitmap (the morsel
    /// view of a validity bitmap: ~len/8 bytes, negligible next to the
    /// column payload it masks, which is shared rather than copied).
    pub fn slice(&self, offset: usize, len: usize) -> Bitmap {
        assert!(offset + len <= self.len, "bitmap slice out of bounds");
        if offset.is_multiple_of(64) {
            // Word-aligned fast path: copy whole words and mask the tail.
            let words = offset / 64;
            let mut b = Bitmap {
                words: self.words[words..words + len.div_ceil(64)].to_vec(),
                len,
            };
            b.mask_tail();
            return b;
        }
        Bitmap::from_iter((offset..offset + len).map(|i| self.get(i)))
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_zeros() {
        let z = Bitmap::zeros(70);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.all());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::zeros(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_matches_gets() {
        let b = Bitmap::from_iter((0..200).map(|i| i % 7 == 0));
        let idx: Vec<_> = b.iter_ones().collect();
        let expect: Vec<_> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(idx, expect);
    }

    #[test]
    fn not_masks_tail_bits() {
        let b = Bitmap::zeros(65);
        let n = b.not();
        assert_eq!(n.count_ones(), 65);
        assert!(n.all());
    }

    #[test]
    fn and_or_combine() {
        let a = Bitmap::from_iter((0..10).map(|i| i % 2 == 0));
        let b = Bitmap::from_iter((0..10).map(|i| i % 3 == 0));
        assert_eq!(a.and(&b).to_indices(), vec![0, 6]);
        assert_eq!(a.or(&b).count_ones(), 7);
    }

    #[test]
    fn slice_windows() {
        let b = Bitmap::from_iter((0..200).map(|i| i % 7 == 0));
        for (off, len) in [(0, 200), (64, 100), (3, 70), (199, 1), (200, 0)] {
            let s = b.slice(off, len);
            assert_eq!(s.len(), len, "slice ({off},{len})");
            for i in 0..len {
                assert_eq!(s.get(i), b.get(off + i), "bit {i} of slice ({off},{len})");
            }
        }
    }

    #[test]
    fn from_iter_empty() {
        let b = Bitmap::from_iter(std::iter::empty());
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
