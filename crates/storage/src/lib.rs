//! # mosaic-storage
//!
//! Columnar in-memory storage substrate for the Mosaic open-world database
//! system (Orr et al., CIDR 2020).
//!
//! Mosaic's query engine operates over three kinds of relations (population,
//! sample, auxiliary — see the paper, §3.1). All of them bottom out in the
//! same physical representation provided by this crate:
//!
//! * [`Value`] — a dynamically typed SQL scalar,
//! * [`Schema`] / [`Field`] / [`DataType`] — relation schemas,
//! * [`Column`] — a typed, contiguous column with an optional validity
//!   [`Bitmap`],
//! * [`Table`] — an immutable bundle of equal-length columns,
//! * [`TableBuilder`] — row-oriented construction with type checking.
//!
//! The layout is deliberately Arrow-like (typed vectors + validity bitmaps)
//! so filters produce selection bitmaps and aggregates run vectorized, per
//! the database-engine idioms this project follows. The [`kernels`] module
//! holds the vectorized compute primitives (comparison, arithmetic,
//! filter/take, grouped aggregation) that the `mosaic-core` planner lowers
//! query expressions onto. Columns and tables support zero-copy windowed
//! views ([`Column::slice`], [`Table::slice`]) so the executor can split
//! a scan into Arc-shared morsels, and mergeable partial-aggregate states
//! ([`kernels::AggState`]) so per-morsel results combine deterministically.

#![warn(missing_docs)]

mod bitmap;
mod column;
pub mod csv;
mod error;
pub mod kernels;
mod schema;
mod table;
mod value;

pub use bitmap::Bitmap;
pub use column::{Column, ColumnBuilder, Dictionary};
pub use error::StorageError;
pub use schema::{DataType, Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
