use std::fmt;
use std::sync::Arc;

use crate::{Bitmap, Column, ColumnBuilder, Result, Schema, StorageError, Value};

/// An immutable, in-memory, columnar table.
///
/// All of Mosaic's relations (auxiliary tables, sample data, generated
/// populations, query results) are `Table`s.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Assemble a table from a schema and matching columns.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Table> {
        if schema.len() != columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != num_rows {
                return Err(StorageError::LengthMismatch {
                    expected: num_rows,
                    actual: c.len(),
                    context: format!("column {} ({})", i, schema.field(i).name),
                });
            }
            if c.data_type() != schema.field(i).data_type {
                return Err(StorageError::TypeMismatch {
                    expected: schema.field(i).data_type.to_string(),
                    actual: c.data_type().to_string(),
                    context: format!("column {} ({})", i, schema.field(i).name),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            num_rows,
        })
    }

    /// Empty table with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Table {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type).finish())
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by (case-insensitive) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Dynamic value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `row` as a `Vec<Value>`.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Iterate rows as `Vec<Value>` (materializing; prefer columnar access
    /// in hot paths).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.num_rows).map(move |i| self.row(i))
    }

    /// Approximate heap footprint of the table in bytes: the sum of its
    /// columns' [`Column::approx_bytes`]. Shared payloads may be counted
    /// once per referencing column — this is the cheap upper-bound
    /// estimate cache admission and eviction budgets use, not an
    /// allocator report.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(Column::approx_bytes).sum()
    }

    /// Gather rows by index into a new table.
    pub fn take(&self, indices: &[usize]) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            num_rows: indices.len(),
        }
    }

    /// Keep rows with a set selection bit.
    pub fn filter(&self, selection: &Bitmap) -> Table {
        assert_eq!(selection.len(), self.num_rows, "selection length mismatch");
        self.take(&selection.to_indices())
    }

    /// Zero-copy view of rows `[offset, offset + len)`: every column
    /// keeps sharing its payload (see [`Column::slice`]). This is how the
    /// morsel-driven executor splits a scan into worker-sized units.
    pub fn slice(&self, offset: usize, len: usize) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.slice(offset, len)).collect(),
            num_rows: len,
        }
    }

    /// Vertically concatenate many schema-compatible tables in one pass
    /// per column ([`Column::concat_many`]) — the materializing merge of
    /// per-morsel outputs. With a single input this is an O(1) clone.
    pub fn vstack(parts: &[&Table]) -> Result<Table> {
        let Some(first) = parts.first() else {
            return Err(StorageError::SchemaMismatch(
                "Table::vstack needs at least one input".into(),
            ));
        };
        if parts.len() == 1 {
            return Ok((*first).clone());
        }
        for p in &parts[1..] {
            if !first.schema.compatible_with(p.schema()) {
                return Err(StorageError::SchemaMismatch(format!(
                    "cannot vstack {} with {}",
                    first.schema, p.schema
                )));
            }
        }
        let columns = (0..first.num_columns())
            .map(|c| {
                let cols: Vec<&Column> = parts.iter().map(|p| p.column(c)).collect();
                Column::concat_many(&cols)
            })
            .collect::<Result<Vec<_>>>()?;
        Table::new(Arc::clone(&first.schema), columns)
    }

    /// Table with every plain string column dictionary-encoded (see
    /// [`Column::dict_encoded`]); non-string columns pass through as O(1)
    /// clones. Applied at CSV ingest and usable on any table built
    /// row-wise.
    pub fn dict_encoded(&self) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.dict_encoded()).collect(),
            num_rows: self.num_rows,
        }
    }

    /// Project columns by name into a new table.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| self.column_by_name(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Table::new(schema, columns)
    }

    /// Vertically concatenate with a schema-compatible table.
    pub fn concat(&self, other: &Table) -> Result<Table> {
        if !self.schema.compatible_with(other.schema()) {
            return Err(StorageError::SchemaMismatch(format!(
                "cannot concat {} with {}",
                self.schema, other.schema
            )));
        }
        let columns = self
            .columns
            .iter()
            .zip(other.columns.iter())
            .map(|(a, b)| a.concat(b))
            .collect::<Result<Vec<_>>>()?;
        Table::new(Arc::clone(&self.schema), columns)
    }

    /// Stable sort by the given columns (`descending[i]` flips column `i`).
    /// NULLs sort first (ascending).
    pub fn sort_by(&self, keys: &[&str], descending: &[bool]) -> Result<Table> {
        let key_cols = keys
            .iter()
            .map(|k| self.column_by_name(k))
            .collect::<Result<Vec<_>>>()?;
        let mut indices: Vec<usize> = (0..self.num_rows).collect();
        indices.sort_by(|&a, &b| {
            for (ci, col) in key_cols.iter().enumerate() {
                // total_cmp_rows avoids materializing Values (and for
                // dictionary columns compares precomputed sort ranks).
                let ord = col.total_cmp_rows(a, b);
                let ord = if descending.get(ci).copied().unwrap_or(false) {
                    ord.reverse()
                } else {
                    ord
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&indices))
    }

    /// First `n` rows.
    pub fn limit(&self, n: usize) -> Table {
        let indices: Vec<usize> = (0..self.num_rows.min(n)).collect();
        self.take(&indices)
    }

    /// Render as an aligned ASCII table (used by examples and the REPL-style
    /// output of `MosaicDb`).
    pub fn to_pretty_string(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.num_rows);
        for r in 0..self.num_rows {
            let row: Vec<String> = (0..self.num_columns())
                .map(|c| match self.value(r, c) {
                    Value::Float(f) => format!("{f:.4}"),
                    v => v.to_string(),
                })
                .collect();
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

/// Row-oriented, type-checked table construction.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    builders: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// New builder for `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        TableBuilder { schema, builders }
    }

    /// New builder with a row-capacity hint.
    pub fn with_capacity(schema: Arc<Schema>, capacity: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.data_type, capacity))
            .collect();
        TableBuilder { schema, builders }
    }

    /// Append one row; its arity and types must match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.schema.len(),
                actual: row.len(),
                context: "TableBuilder::push_row".into(),
            });
        }
        for (i, v) in row.into_iter().enumerate() {
            if v.is_null() && !self.schema.field(i).nullable {
                return Err(StorageError::InvalidValue(format!(
                    "NULL in non-nullable column {}",
                    self.schema.field(i).name
                )));
            }
            self.builders[i].push(v)?;
        }
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// True if no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish into an immutable [`Table`].
    pub fn finish(self) -> Table {
        let num_rows = self.len();
        Table {
            schema: self.schema,
            columns: self
                .builders
                .into_iter()
                .map(ColumnBuilder::finish)
                .collect(),
            num_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Field};

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("score", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![1.into(), "alice".into(), 3.5.into()])
            .unwrap();
        b.push_row(vec![2.into(), "bob".into(), 1.0.into()])
            .unwrap();
        b.push_row(vec![3.into(), "carol".into(), 2.25.into()])
            .unwrap();
        b.finish()
    }

    #[test]
    fn build_and_access() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(1, 1), Value::Str("bob".into()));
        assert_eq!(t.column_by_name("SCORE").unwrap().f64_at(2), Some(2.25));
    }

    #[test]
    fn push_row_arity_checked() {
        let t = sample_table();
        let mut b = TableBuilder::new(Arc::clone(t.schema()));
        assert!(b.push_row(vec![1.into()]).is_err());
    }

    #[test]
    fn sort_by_descending() {
        let t = sample_table();
        let s = t.sort_by(&["score"], &[true]).unwrap();
        assert_eq!(s.value(0, 1), Value::Str("alice".into()));
        assert_eq!(s.value(2, 1), Value::Str("bob".into()));
    }

    #[test]
    fn filter_and_project() {
        let t = sample_table();
        let sel = Bitmap::from_iter([true, false, true]);
        let f = t.filter(&sel);
        assert_eq!(f.num_rows(), 2);
        let p = f.project(&["name"]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.value(1, 0), Value::Str("carol".into()));
    }

    #[test]
    fn concat_compatible() {
        let t = sample_table();
        let c = t.concat(&t).unwrap();
        assert_eq!(c.num_rows(), 6);
    }

    #[test]
    fn slice_then_vstack_roundtrips() {
        let t = sample_table();
        let (a, b) = (t.slice(0, 2), t.slice(2, 1));
        assert_eq!(a.num_rows(), 2);
        assert_eq!(b.value(0, 1), Value::Str("carol".into()));
        let whole = Table::vstack(&[&a, &b]).unwrap();
        assert_eq!(whole.num_rows(), 3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(whole.value(r, c), t.value(r, c), "cell ({r},{c})");
            }
        }
        assert!(Table::vstack(&[]).is_err());
    }

    #[test]
    fn table_new_validates_lengths() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let cols = vec![Column::from_i64(vec![1, 2]), Column::from_i64(vec![1])];
        assert!(Table::new(schema, cols).is_err());
    }

    #[test]
    fn table_new_validates_types() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let cols = vec![Column::from_f64(vec![1.0])];
        assert!(Table::new(schema, cols).is_err());
    }

    #[test]
    fn pretty_print_contains_headers() {
        let t = sample_table();
        let s = t.to_pretty_string();
        assert!(s.contains("name"));
        assert!(s.contains("alice"));
    }

    #[test]
    fn limit_truncates() {
        let t = sample_table();
        assert_eq!(t.limit(2).num_rows(), 2);
        assert_eq!(t.limit(10).num_rows(), 3);
    }

    #[test]
    fn non_nullable_rejects_null() {
        let schema = Schema::new(vec![Field::required("a", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        assert!(b.push_row(vec![Value::Null]).is_err());
    }
}
