//! Minimal CSV reader/writer for [`Table`]s — no external dependencies.
//!
//! Mosaic's experiment substitutions generate synthetic workloads, but a
//! user with the real IDEBench flights CSV (or any other sample file) can
//! ingest it directly with [`read_csv`] / [`read_csv_str`]; results export
//! with [`write_csv`]. Quoting follows RFC 4180 (double quotes, `""`
//! escape); type inference per column tries Int → Float → Bool → Str,
//! with empty fields as NULL.

use std::io::{BufRead, Write};
use std::sync::Arc;

use crate::{DataType, Field, Result, Schema, StorageError, Table, TableBuilder, Value};

/// Parse one CSV record (handles quoted fields and embedded commas).
fn split_record(line: &str) -> std::result::Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    fields.push(cur);
    Ok(fields)
}

fn infer_value(s: &str) -> Value {
    if s.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    match s.to_ascii_lowercase().as_str() {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(s.to_string()),
    }
}

/// Read a CSV with a header row from any reader, inferring column types.
pub fn read_csv(reader: impl BufRead) -> Result<Table> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .transpose()
        .map_err(|e| StorageError::InvalidValue(format!("io error: {e}")))?
        .ok_or_else(|| StorageError::InvalidValue("empty CSV input".into()))?;
    let names = split_record(header.trim_end_matches('\r')).map_err(StorageError::InvalidValue)?;
    // First pass: collect raw values and infer types.
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| StorageError::InvalidValue(format!("io error: {e}")))?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let fields = split_record(line)
            .map_err(|e| StorageError::InvalidValue(format!("line {}: {e}", lineno + 2)))?;
        if fields.len() != names.len() {
            return Err(StorageError::LengthMismatch {
                expected: names.len(),
                actual: fields.len(),
                context: format!("CSV line {}", lineno + 2),
            });
        }
        rows.push(fields.iter().map(|f| infer_value(f)).collect());
    }
    // Column type = widest type observed (Int ⊂ Float; anything mixed with
    // Str becomes Str).
    let mut types: Vec<Option<DataType>> = vec![None; names.len()];
    for row in &rows {
        for (c, v) in row.iter().enumerate() {
            let vt = match v.data_type() {
                None => continue,
                Some(t) => t,
            };
            types[c] = Some(match (types[c], vt) {
                (None, t) => t,
                (Some(a), b) if a == b => a,
                (Some(DataType::Int), DataType::Float) | (Some(DataType::Float), DataType::Int) => {
                    DataType::Float
                }
                _ => DataType::Str,
            });
        }
    }
    let fields: Vec<Field> = names
        .iter()
        .zip(&types)
        .map(|(n, t)| Field::new(n.clone(), t.unwrap_or(DataType::Str)))
        .collect();
    let schema = Schema::new(fields);
    let mut b = TableBuilder::with_capacity(Arc::clone(&schema), rows.len());
    for row in rows {
        let coerced: Vec<Value> = row
            .into_iter()
            .enumerate()
            .map(|(c, v)| match (schema.field(c).data_type, v) {
                (_, Value::Null) => Value::Null,
                (DataType::Str, v) => Value::Str(v.to_string()),
                (DataType::Float, Value::Int(i)) => Value::Float(i as f64),
                (_, v) => v,
            })
            .collect();
        b.push_row(coerced)?;
    }
    // String columns dictionary-encode at ingest so every downstream
    // kernel (filter, group-by, join, sort) runs over u32 codes.
    Ok(b.finish().dict_encoded())
}

/// Read a CSV from an in-memory string.
pub fn read_csv_str(data: &str) -> Result<Table> {
    read_csv(std::io::BufReader::new(data.as_bytes()))
}

/// Read a CSV from a file path.
pub fn read_csv_path(path: impl AsRef<std::path::Path>) -> Result<Table> {
    let f = std::fs::File::open(path)
        .map_err(|e| StorageError::InvalidValue(format!("cannot open CSV: {e}")))?;
    read_csv(std::io::BufReader::new(f))
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write a table as CSV (header + rows; NULLs as empty fields).
pub fn write_csv(table: &Table, mut writer: impl Write) -> Result<()> {
    let io_err = |e: std::io::Error| StorageError::InvalidValue(format!("io error: {e}"));
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for r in 0..table.num_rows() {
        let row: Vec<String> = (0..table.num_columns())
            .map(|c| match table.value(r, c) {
                Value::Null => String::new(),
                Value::Str(s) => escape(&s),
                other => other.to_string(),
            })
            .collect();
        writeln!(writer, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Render a table as a CSV string.
pub fn write_csv_string(table: &Table) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf)?;
    String::from_utf8(buf).map_err(|e| StorageError::InvalidValue(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_inferred_types() {
        let t =
            read_csv_str("name,age,score,member\nalice,30,1.5,true\nbob,41,2.0,false\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field(0).data_type, DataType::Str);
        assert_eq!(t.schema().field(1).data_type, DataType::Int);
        assert_eq!(t.schema().field(2).data_type, DataType::Float);
        assert_eq!(t.schema().field(3).data_type, DataType::Bool);
        let s = write_csv_string(&t).unwrap();
        let t2 = read_csv_str(&s).unwrap();
        assert_eq!(t2.value(1, 1), Value::Int(41));
        assert_eq!(t2.value(0, 3), Value::Bool(true));
    }

    #[test]
    fn quoted_fields_with_commas() {
        let t = read_csv_str("a,b\n\"x, y\",1\n\"he said \"\"hi\"\"\",2\n").unwrap();
        assert_eq!(t.value(0, 0), Value::Str("x, y".into()));
        assert_eq!(t.value(1, 0), Value::Str("he said \"hi\"".into()));
        // Round trip preserves quoting.
        let s = write_csv_string(&t).unwrap();
        let t2 = read_csv_str(&s).unwrap();
        assert_eq!(t2.value(0, 0), t.value(0, 0));
    }

    #[test]
    fn empty_fields_are_null() {
        let t = read_csv_str("a,b\n1,\n,2\n").unwrap();
        assert!(t.column(1).is_null(0));
        assert!(t.column(0).is_null(1));
        assert_eq!(t.value(0, 0), Value::Int(1));
    }

    #[test]
    fn mixed_int_float_widens() {
        let t = read_csv_str("x\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().field(0).data_type, DataType::Float);
        assert_eq!(t.value(0, 0), Value::Float(1.0));
    }

    #[test]
    fn mixed_numeric_string_becomes_string() {
        let t = read_csv_str("x\n1\nabc\n").unwrap();
        assert_eq!(t.schema().field(0).data_type, DataType::Str);
        assert_eq!(t.value(0, 0), Value::Str("1".into()));
    }

    #[test]
    fn arity_mismatch_is_error() {
        assert!(read_csv_str("a,b\n1\n").is_err());
        assert!(read_csv_str("").is_err());
        assert!(read_csv_str("a\n\"unterminated\n").is_err());
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_csv_str("a,b\r\n1,x\r\n").unwrap();
        assert_eq!(t.value(0, 1), Value::Str("x".into()));
    }
}
