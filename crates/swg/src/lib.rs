//! # mosaic-swg
//!
//! The **Marginal-Constrained Sliced Wasserstein Generator (M-SWG)** — the
//! Mosaic paper's primary machine-learning contribution (§5) and the engine
//! behind `OPEN` query processing.
//!
//! Given a biased sample and a set of published 1-/2-dimensional population
//! marginals, the M-SWG trains a generator network whose outputs
//!
//! 1. match every marginal in (sliced) Wasserstein distance, and
//! 2. stay close to the sample manifold via a λ-weighted nearest-sample
//!    penalty (`λ·E_{x∼G} min_{y∈S} ‖x−y‖²`),
//!
//! so generated tuples *look like* real sample tuples but are *distributed
//! like* the population. No discriminator network is needed: the 1-D
//! Wasserstein distance is computed exactly by quantile matching, and ≥2-D
//! marginals are reduced to 1-D by random projections (the *sliced*
//! Wasserstein distance).
//!
//! The three pieces:
//!
//! * [`Encoder`] — min-max scaling for numeric attributes and one-hot
//!   blocks (with a softmax head during training and argmax
//!   discretization at generation time) for categoricals, exactly as in
//!   §5.3 ("we one-hot encode the categorical variables and scale all
//!   attributes to be between 0 and 1").
//! * [`loss`] — the marginal-matching and coverage loss terms with
//!   closed-form gradients.
//! * [`MSwg`] — configuration, training loop (Adam + plateau LR decay),
//!   and batch generation.

mod encoder;
pub mod loss;
mod model;

pub use encoder::{AttrSpec, EncodedMarginal, Encoder};
pub use model::{MSwg, SwgConfig, SwgError, TrainReport};
