//! Loss terms of the M-SWG objective (paper §5.2, Eq. 1) with closed-form
//! gradients:
//!
//! ```text
//! min_G  k·Σ_{i∈I₁} W(P_i, Q_i)
//!      + (1/p)·Σ_{{i,j}∈I₂} Σ_{ω∈Ω} W(P_{i,j}ω, Q_{i,j}ω)
//!      + λ·E_{x∼G}[ min_{y∈S} ‖x−y‖² ]
//! ```
//!
//! 1-D marginals use the exact Wasserstein distance via sorted quantile
//! matching; ≥2-D marginals are first projected by random unit vectors
//! (the sliced Wasserstein distance). The last term keeps generated points
//! on the sample manifold (the paper's sample-coverage assumption).

use mosaic_nn::Matrix;
use mosaic_stats::{WassersteinOrder, WeightedEmpirical};

use crate::EncodedMarginal;

/// Exact 1-D Wasserstein matching between a generated batch column and a
/// weighted target distribution.
///
/// Sorted generated value `x₍ₖ₎` is matched to the target quantile at CDF
/// position `(k+0.5)/n`. Under `W2Squared` the contribution is
/// `(x−q)²/n` with gradient `2(x−q)/n`; under `W1` it is `|x−q|/n` with
/// gradient `sign(x−q)/n`. Returns the loss and writes per-generated-value
/// gradients into `grad` (aligned with `values`).
pub fn quantile_matching_1d(
    values: &[f64],
    target: &WeightedEmpirical,
    order: WassersteinOrder,
    grad: &mut [f64],
) -> f64 {
    debug_assert_eq!(values.len(), grad.len());
    let n = values.len();
    if n == 0 || target.is_empty() {
        grad.fill(0.0);
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let nf = n as f64;
    let mut loss = 0.0;
    for (rank, &i) in idx.iter().enumerate() {
        let q = target.quantile((rank as f64 + 0.5) / nf);
        let d = values[i] - q;
        match order {
            WassersteinOrder::W2Squared => {
                loss += d * d / nf;
                grad[i] = 2.0 * d / nf;
            }
            WassersteinOrder::W1 => {
                loss += d.abs() / nf;
                grad[i] = d.signum() / nf;
            }
        }
    }
    loss
}

/// One marginal's contribution to the loss and to `grad_output`.
///
/// * encoded dim 1 → exact 1-D Wasserstein (no projections needed),
/// * encoded dim ≥ 2 → sliced Wasserstein over `projections` random unit
///   vectors, averaged.
///
/// `scale` multiplies both the loss and the gradient (the `k` coefficient
/// of Eq. 1, or `1` for 2-D terms).
#[allow(clippy::needless_range_loop)]
pub fn marginal_loss_grad(
    output: &Matrix,
    marginal: &EncodedMarginal,
    projections: &[Vec<f64>],
    order: WassersteinOrder,
    scale: f64,
    grad_output: &mut Matrix,
) -> f64 {
    let n = output.rows();
    if n == 0 || marginal.points.is_empty() {
        return 0.0;
    }
    let mut values = vec![0.0; n];
    let mut grad1d = vec![0.0; n];
    if marginal.dim() == 1 {
        let col = marginal.cols[0];
        for r in 0..n {
            values[r] = output.get(r, col);
        }
        let target = WeightedEmpirical::from_pairs(
            marginal
                .points
                .iter()
                .zip(&marginal.weights)
                .map(|(p, &w)| (p[0], w)),
        );
        let loss = quantile_matching_1d(&values, &target, order, &mut grad1d);
        for r in 0..n {
            let g = grad_output.get(r, col) + scale * grad1d[r];
            grad_output.set(r, col, g);
        }
        return scale * loss;
    }
    assert!(
        !projections.is_empty(),
        "multi-dimensional marginal requires projections"
    );
    let mut total = 0.0;
    let pf = projections.len() as f64;
    for omega in projections {
        debug_assert_eq!(omega.len(), marginal.dim());
        // Project generated sub-vector and target cells onto omega.
        for r in 0..n {
            let row = output.row(r);
            values[r] = marginal
                .cols
                .iter()
                .zip(omega)
                .map(|(&c, &w)| row[c] * w)
                .sum();
        }
        let target = WeightedEmpirical::from_pairs(
            marginal
                .points
                .iter()
                .zip(&marginal.weights)
                .map(|(p, &wt)| (p.iter().zip(omega).map(|(x, w)| x * w).sum(), wt)),
        );
        let loss = quantile_matching_1d(&values, &target, order, &mut grad1d);
        total += loss / pf;
        // Chain rule through the projection: d proj / d x_c = omega_c.
        let s = scale / pf;
        for r in 0..n {
            let g1 = grad1d[r];
            if g1 == 0.0 {
                continue;
            }
            for (&c, &w) in marginal.cols.iter().zip(omega) {
                let g = grad_output.get(r, c) + s * g1 * w;
                grad_output.set(r, c, g);
            }
        }
    }
    scale * total
}

/// The coverage term `λ·E_x min_y ‖x−y‖²`: for every generated row, the
/// squared distance to its nearest encoded sample row (restricted to
/// `sample_rows`, a configurable random subsample — the paper does not
/// prescribe an index and brute force over a subsample preserves the
/// objective in expectation). Returns the loss and accumulates gradients
/// `2λ(x−y)/n` into `grad_output`.
#[allow(clippy::needless_range_loop)]
pub fn coverage_loss_grad(
    output: &Matrix,
    sample_enc: &Matrix,
    sample_rows: &[usize],
    lambda: f64,
    grad_output: &mut Matrix,
) -> f64 {
    let n = output.rows();
    let d = output.cols();
    if n == 0 || sample_rows.is_empty() || lambda == 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut loss = 0.0;
    for r in 0..n {
        let x = output.row(r);
        let mut best = f64::INFINITY;
        let mut best_row = sample_rows[0];
        for &s in sample_rows {
            let y = sample_enc.row(s);
            let mut dist = 0.0;
            for k in 0..d {
                let diff = x[k] - y[k];
                dist += diff * diff;
                if dist >= best {
                    break;
                }
            }
            if dist < best {
                best = dist;
                best_row = s;
            }
        }
        loss += lambda * best / nf;
        let y = sample_enc.row(best_row).to_vec();
        let g = grad_output.row_mut(r);
        for k in 0..d {
            g[k] += 2.0 * lambda * (x[k] - y[k]) / nf;
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matching_zero_when_matched() {
        // Generated values already at the target quantiles.
        let target = WeightedEmpirical::from_values([0.0, 1.0]);
        let values = [0.0, 1.0];
        let mut grad = [0.0; 2];
        let loss = quantile_matching_1d(&values, &target, WassersteinOrder::W2Squared, &mut grad);
        assert!(loss.abs() < 1e-12);
        assert!(grad.iter().all(|g| g.abs() < 1e-12));
    }

    #[test]
    fn quantile_matching_gradient_points_toward_target() {
        // All generated mass at 0, target at 1: gradient must be negative
        // (decrease loss by increasing x).
        let target = WeightedEmpirical::from_values([1.0]);
        let values = [0.0, 0.0];
        let mut grad = [0.0; 2];
        let loss = quantile_matching_1d(&values, &target, WassersteinOrder::W2Squared, &mut grad);
        assert!((loss - 1.0).abs() < 1e-12);
        assert!(grad.iter().all(|&g| g < 0.0));
    }

    #[test]
    fn quantile_matching_w1_gradient_is_sign() {
        let target = WeightedEmpirical::from_values([5.0]);
        let values = [0.0, 10.0];
        let mut grad = [0.0; 2];
        quantile_matching_1d(&values, &target, WassersteinOrder::W1, &mut grad);
        assert!(grad[0] < 0.0 && grad[1] > 0.0);
    }

    #[test]
    fn quantile_matching_finite_difference() {
        let target = WeightedEmpirical::from_pairs([(0.0, 2.0), (1.0, 1.0), (3.0, 1.0)]);
        let values = [0.3, 2.1, -0.4, 1.7];
        let mut grad = [0.0; 4];
        let l0 = quantile_matching_1d(&values, &target, WassersteinOrder::W2Squared, &mut grad);
        let _ = l0;
        let eps = 1e-6;
        for i in 0..values.len() {
            let mut vp = values;
            vp[i] += eps;
            let mut g = [0.0; 4];
            let lp = quantile_matching_1d(&vp, &target, WassersteinOrder::W2Squared, &mut g);
            let mut vm = values;
            vm[i] -= eps;
            let lm = quantile_matching_1d(&vm, &target, WassersteinOrder::W2Squared, &mut g);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-5,
                "i={i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn marginal_1d_gradients_land_on_right_column() {
        let output = Matrix::from_vec(2, 3, vec![0.0, 0.5, 0.0, 0.0, 0.5, 0.0]);
        let marg = EncodedMarginal {
            cols: vec![1],
            points: vec![vec![1.0]],
            weights: vec![1.0],
            label: "x".into(),
        };
        let mut grad = Matrix::zeros(2, 3);
        let loss = marginal_loss_grad(
            &output,
            &marg,
            &[],
            WassersteinOrder::W2Squared,
            1.0,
            &mut grad,
        );
        assert!(loss > 0.0);
        assert_eq!(grad.get(0, 0), 0.0);
        assert!(grad.get(0, 1) < 0.0); // push column 1 up toward 1.0
        assert_eq!(grad.get(0, 2), 0.0);
    }

    #[test]
    fn marginal_2d_sliced_finite_difference() {
        let output = Matrix::from_vec(3, 2, vec![0.1, 0.9, 0.4, 0.2, 0.8, 0.7]);
        let marg = EncodedMarginal {
            cols: vec![0, 1],
            points: vec![vec![0.0, 0.0], vec![1.0, 1.0]],
            weights: vec![1.0, 2.0],
            label: "x,y".into(),
        };
        let projections = vec![vec![0.6, 0.8], vec![1.0, 0.0]];
        let mut grad = Matrix::zeros(3, 2);
        let _ = marginal_loss_grad(
            &output,
            &marg,
            &projections,
            WassersteinOrder::W2Squared,
            1.0,
            &mut grad,
        );
        let eps = 1e-6;
        for idx in 0..output.data().len() {
            let mut op = output.clone();
            op.data_mut()[idx] += eps;
            let mut g = Matrix::zeros(3, 2);
            let lp = marginal_loss_grad(
                &op,
                &marg,
                &projections,
                WassersteinOrder::W2Squared,
                1.0,
                &mut g,
            );
            let mut om = output.clone();
            om.data_mut()[idx] -= eps;
            let lm = marginal_loss_grad(
                &om,
                &marg,
                &projections,
                WassersteinOrder::W2Squared,
                1.0,
                &mut g,
            );
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-5,
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn coverage_zero_when_on_sample() {
        let sample = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let output = sample.clone();
        let mut grad = Matrix::zeros(2, 2);
        let loss = coverage_loss_grad(&output, &sample, &[0, 1], 0.5, &mut grad);
        assert!(loss.abs() < 1e-12);
        assert!(grad.data().iter().all(|g| g.abs() < 1e-12));
    }

    #[test]
    fn coverage_pulls_toward_nearest_sample_point() {
        let sample = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let output = Matrix::from_vec(1, 1, vec![1.0]); // nearest is 0.0
        let mut grad = Matrix::zeros(1, 1);
        let loss = coverage_loss_grad(&output, &sample, &[0, 1], 1.0, &mut grad);
        assert!((loss - 1.0).abs() < 1e-12);
        assert!(grad.get(0, 0) > 0.0); // gradient descent will move x toward 0
    }

    #[test]
    fn coverage_finite_difference() {
        let sample = Matrix::from_vec(3, 2, vec![0.0, 0.0, 0.5, 0.5, 1.0, 0.2]);
        let output = Matrix::from_vec(2, 2, vec![0.3, 0.1, 0.9, 0.4]);
        let rows = [0usize, 1, 2];
        let mut grad = Matrix::zeros(2, 2);
        coverage_loss_grad(&output, &sample, &rows, 0.7, &mut grad);
        let eps = 1e-6;
        for idx in 0..output.data().len() {
            let mut op = output.clone();
            op.data_mut()[idx] += eps;
            let mut g = Matrix::zeros(2, 2);
            let lp = coverage_loss_grad(&op, &sample, &rows, 0.7, &mut g);
            let mut om = output.clone();
            om.data_mut()[idx] -= eps;
            let lm = coverage_loss_grad(&om, &sample, &rows, 0.7, &mut g);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-5,
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad.data()[idx]
            );
        }
    }
}
