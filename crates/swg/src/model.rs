use std::collections::HashMap;
use std::fmt;

use mosaic_nn::{Adam, Matrix, Mlp, PlateauScheduler};
use mosaic_stats::{random_unit_vectors, Marginal, WassersteinOrder};
use mosaic_storage::{StorageError, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::{coverage_loss_grad, marginal_loss_grad};
use crate::{EncodedMarginal, Encoder};

/// M-SWG hyperparameters. Defaults follow the paper's synthetic-data
/// experiment (§5.3, footnote 3): 3 ReLU FC layers × 100 nodes, λ = 0.04,
/// batch size 500, Adam at 1e-3 with reduce-on-plateau.
///
/// `#[non_exhaustive]`: construct with [`SwgConfig::default`] (or the
/// `paper_*` presets) and the `with_*` builders so future fields are
/// not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SwgConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Number of hidden `Dense→ReLU→BatchNorm` groups.
    pub hidden_layers: usize,
    /// Latent dimension ℓ; `None` uses the encoded data dimensionality
    /// (the paper's flights setup: "the latent dimension ℓ being the same
    /// as the input dimensionality").
    pub latent_dim: Option<usize>,
    /// Coverage-term weight λ.
    pub lambda: f64,
    /// Random projections per ≥2-D marginal per step (paper: p = 1000).
    pub projections: usize,
    /// Training batch size.
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs ("each epoch is one pass over the population
    /// marginals").
    pub epochs: usize,
    /// Steps per epoch; `None` derives `max(1, sample_rows / batch_size)`.
    pub steps_per_epoch: Option<usize>,
    /// Matching loss: exact `W1` or smooth squared `W2`.
    pub order: WassersteinOrder,
    /// Coefficient `k` on the 1-D marginal terms of Eq. 1.
    pub one_dim_scale: f64,
    /// Sample rows examined per step for the nearest-neighbour coverage
    /// term (random subsample; brute force).
    pub coverage_subsample: usize,
    /// Epochs without loss improvement before a 10× LR decay.
    pub plateau_patience: usize,
    /// RNG seed (training is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SwgConfig {
    fn default() -> Self {
        SwgConfig {
            hidden_dim: 100,
            hidden_layers: 3,
            latent_dim: Some(2),
            lambda: 0.04,
            projections: 100,
            batch_size: 500,
            learning_rate: 1e-3,
            epochs: 30,
            steps_per_epoch: None,
            order: WassersteinOrder::W2Squared,
            one_dim_scale: 1.0,
            coverage_subsample: 2048,
            plateau_patience: 5,
            seed: 0,
        }
    }
}

impl SwgConfig {
    /// The paper's flights configuration (§5.3): 5 layers × 50 nodes,
    /// λ = 1e-7, p = 1000 projections, batch 500, ℓ = input dim.
    pub fn paper_flights() -> SwgConfig {
        SwgConfig {
            hidden_dim: 50,
            hidden_layers: 5,
            latent_dim: None,
            lambda: 1e-7,
            projections: 1000,
            epochs: 80,
            ..SwgConfig::default()
        }
    }

    /// The paper's spiral configuration (§5.3): 3 layers × 100 nodes,
    /// λ = 0.04, ℓ = 2.
    pub fn paper_spiral() -> SwgConfig {
        SwgConfig {
            hidden_dim: 100,
            hidden_layers: 3,
            latent_dim: Some(2),
            lambda: 0.04,
            ..SwgConfig::default()
        }
    }

    /// Set the hidden layer width.
    pub fn with_hidden_dim(mut self, n: usize) -> Self {
        self.hidden_dim = n;
        self
    }

    /// Set the number of hidden `Dense→ReLU→BatchNorm` groups.
    pub fn with_hidden_layers(mut self, n: usize) -> Self {
        self.hidden_layers = n;
        self
    }

    /// Set the latent dimension (`None` = encoded data dimensionality).
    pub fn with_latent_dim(mut self, dim: Option<usize>) -> Self {
        self.latent_dim = dim;
        self
    }

    /// Set the coverage-term weight λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Set the random projections per ≥2-D marginal per step.
    pub fn with_projections(mut self, n: usize) -> Self {
        self.projections = n;
        self
    }

    /// Set the training batch size.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Set the initial Adam learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Set the number of training epochs.
    pub fn with_epochs(mut self, n: usize) -> Self {
        self.epochs = n;
        self
    }

    /// Set the steps per epoch (`None` = `max(1, rows / batch_size)`).
    pub fn with_steps_per_epoch(mut self, n: Option<usize>) -> Self {
        self.steps_per_epoch = n;
        self
    }

    /// Set the matching loss order.
    pub fn with_order(mut self, order: WassersteinOrder) -> Self {
        self.order = order;
        self
    }

    /// Set the coefficient on the 1-D marginal terms of Eq. 1.
    pub fn with_one_dim_scale(mut self, k: f64) -> Self {
        self.one_dim_scale = k;
        self
    }

    /// Set the coverage-term subsample size.
    pub fn with_coverage_subsample(mut self, n: usize) -> Self {
        self.coverage_subsample = n;
        self
    }

    /// Set the plateau patience (epochs before a 10× LR decay).
    pub fn with_plateau_patience(mut self, n: usize) -> Self {
        self.plateau_patience = n;
        self
    }

    /// Set the training RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Errors from M-SWG fitting/generation.
#[derive(Debug)]
pub enum SwgError {
    /// A marginal references an attribute missing from the sample.
    MissingAttribute(String),
    /// The training sample has no rows.
    EmptySample,
    /// Underlying storage error.
    Storage(StorageError),
}

impl fmt::Display for SwgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwgError::MissingAttribute(a) => {
                write!(f, "marginal attribute {a} not present in the sample")
            }
            SwgError::EmptySample => write!(f, "cannot fit an M-SWG on an empty sample"),
            SwgError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for SwgError {}

impl From<StorageError> for SwgError {
    fn from(e: StorageError) -> Self {
        SwgError::Storage(e)
    }
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub loss_history: Vec<f64>,
    /// Final epoch's mean loss.
    pub final_loss: f64,
    /// Labels of every marginal constraint used (including sample
    /// marginals auto-added for uncovered attributes, per §5.2).
    pub marginal_labels: Vec<String>,
    /// Final learning rate after plateau decays.
    pub final_lr: f64,
}

/// A trained Marginal-Constrained Sliced Wasserstein Generator.
pub struct MSwg {
    mlp: Mlp,
    encoder: Encoder,
    config: SwgConfig,
    latent_dim: usize,
    report: TrainReport,
}

impl MSwg {
    /// Train a generator on a biased `sample` and a set of population
    /// `marginals`.
    ///
    /// Attributes not covered by any marginal get a 1-D marginal built
    /// from the sample itself ("the model has no way of learning even the
    /// sample distribution of those attributes. Therefore, we add
    /// marginals from the sample", §5.2). Categorical domain values that
    /// appear only in the metadata are added to the encoder so the
    /// generator *can* emit them.
    pub fn fit(
        sample: &Table,
        marginals: &[Marginal],
        config: SwgConfig,
    ) -> Result<MSwg, SwgError> {
        Self::fit_with_progress(sample, marginals, config, |_, _| {})
    }

    /// [`MSwg::fit`] with a per-epoch callback `(epoch, mean_loss)`.
    pub fn fit_with_progress(
        sample: &Table,
        marginals: &[Marginal],
        config: SwgConfig,
        mut progress: impl FnMut(usize, f64),
    ) -> Result<MSwg, SwgError> {
        if sample.is_empty() {
            return Err(SwgError::EmptySample);
        }
        for m in marginals {
            for a in m.attrs() {
                if !sample.schema().contains(a) {
                    return Err(SwgError::MissingAttribute(a.clone()));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Widen the encoder's view of every attribute with metadata-only
        // values: categorical domains gain unseen categories (so the
        // generator *can* emit them — the §2 AOL case) and numeric ranges
        // stretch to cover marginal support outside the biased sample.
        let mut extra: HashMap<String, Vec<Value>> = HashMap::new();
        for m in marginals {
            for (ai, attr) in m.attrs().iter().enumerate() {
                // Validated above; attribute exists.
                let _ = sample.schema().field_by_name(attr)?;
                let entry = extra.entry(attr.to_ascii_lowercase()).or_default();
                for (key, _) in m.iter() {
                    if !entry.contains(&key[ai]) {
                        entry.push(key[ai].clone());
                    }
                }
            }
        }
        let encoder = Encoder::fit(sample, &extra);

        // Add 1-D sample marginals for attributes no population marginal
        // covers.
        let mut all_marginals: Vec<Marginal> = marginals.to_vec();
        let mut labels: Vec<String> = marginals.iter().map(|m| m.attrs().join(",")).collect();
        for spec in encoder.specs() {
            let covered = marginals.iter().any(|m| m.covers(spec.name()));
            if !covered {
                let sm = Marginal::from_table(sample, &[spec.name()], None, &HashMap::new())?;
                labels.push(format!("{} (sample)", spec.name()));
                all_marginals.push(sm);
            }
        }
        let encoded: Vec<EncodedMarginal> = all_marginals
            .iter()
            .map(|m| {
                encoder
                    .encode_marginal(m)
                    .ok_or_else(|| SwgError::MissingAttribute(m.attrs().join(",")))
            })
            .collect::<Result<_, _>>()?;

        let sample_enc = encoder.encode_table(sample)?;
        let latent_dim = config.latent_dim.unwrap_or(encoder.dim()).max(1);
        let mut mlp = Mlp::generator(
            latent_dim,
            config.hidden_dim,
            config.hidden_layers,
            encoder.dim(),
            encoder.softmax_blocks(),
            &mut rng,
        );
        let mut opt = Adam::new(config.learning_rate);
        let mut sched = PlateauScheduler::new().with_patience(config.plateau_patience);
        let steps = config
            .steps_per_epoch
            .unwrap_or_else(|| (sample.num_rows() / config.batch_size).max(1));
        let mut loss_history = Vec::with_capacity(config.epochs);
        let n_sample = sample_enc.rows();
        for epoch in 0..config.epochs {
            let mut epoch_loss = 0.0;
            for _ in 0..steps {
                let z = Matrix::randn(config.batch_size, latent_dim, 1.0, &mut rng);
                let out = mlp.forward(&z, true);
                let mut grad = Matrix::zeros(out.rows(), out.cols());
                let mut loss = 0.0;
                for em in &encoded {
                    let (projections, scale) = if em.dim() == 1 {
                        (Vec::new(), config.one_dim_scale)
                    } else {
                        (
                            random_unit_vectors(em.dim(), config.projections, &mut rng),
                            1.0,
                        )
                    };
                    loss +=
                        marginal_loss_grad(&out, em, &projections, config.order, scale, &mut grad);
                }
                if config.lambda > 0.0 {
                    let k = config.coverage_subsample.min(n_sample);
                    let rows: Vec<usize> = if k == n_sample {
                        (0..n_sample).collect()
                    } else {
                        (0..k).map(|_| rng.random_range(0..n_sample)).collect()
                    };
                    loss += coverage_loss_grad(&out, &sample_enc, &rows, config.lambda, &mut grad);
                }
                mlp.backward(&grad);
                opt.step(mlp.params_mut());
                epoch_loss += loss;
            }
            let mean_loss = epoch_loss / steps as f64;
            loss_history.push(mean_loss);
            sched.step(mean_loss, &mut opt);
            progress(epoch, mean_loss);
        }
        let final_loss = loss_history.last().copied().unwrap_or(f64::NAN);
        Ok(MSwg {
            mlp,
            encoder,
            latent_dim,
            report: TrainReport {
                loss_history,
                final_loss,
                marginal_labels: labels,
                final_lr: opt.lr,
            },
            config,
        })
    }

    /// Training diagnostics.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The fitted attribute encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Generate `n` synthetic population tuples (evaluation mode: batch
    /// norm uses running statistics; categorical blocks are
    /// argmax-discretized). Borrows `&self`, so a fitted generator can
    /// serve many threads concurrently (the engine's parallel OPEN
    /// replicates).
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Table {
        let mut assembled = Matrix::zeros(n, self.encoder.dim());
        let mut done = 0;
        while done < n {
            let batch = self.config.batch_size.min(n - done);
            let z = Matrix::randn(batch, self.latent_dim, 1.0, rng);
            let out = self.mlp.forward_eval(&z);
            for r in 0..batch {
                assembled.row_mut(done + r).copy_from_slice(out.row(r));
            }
            done += batch;
        }
        self.encoder.decode_matrix(&assembled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{DataType, Field, Schema, TableBuilder};

    fn numeric_sample(values: &[f64]) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        for &v in values {
            b.push_row(vec![v.into()]).unwrap();
        }
        b.finish()
    }

    fn small_config() -> SwgConfig {
        SwgConfig {
            hidden_dim: 24,
            hidden_layers: 2,
            latent_dim: Some(2),
            lambda: 0.0,
            projections: 20,
            batch_size: 64,
            learning_rate: 5e-3,
            epochs: 40,
            steps_per_epoch: Some(4),
            seed: 7,
            ..SwgConfig::default()
        }
    }

    #[test]
    fn fit_rejects_empty_sample() {
        let t = numeric_sample(&[]);
        assert!(matches!(
            MSwg::fit(&t, &[], small_config()),
            Err(SwgError::EmptySample)
        ));
    }

    #[test]
    fn fit_rejects_unknown_marginal_attr() {
        let t = numeric_sample(&[1.0]);
        let m = Marginal::new(vec!["nope".into()]);
        assert!(matches!(
            MSwg::fit(&t, std::slice::from_ref(&m), small_config()),
            Err(SwgError::MissingAttribute(_))
        ));
    }

    #[test]
    fn learns_a_shifted_numeric_marginal() {
        // Sample concentrated near 0.2 but the population marginal says the
        // mass is near 0.8: the generator must follow the marginal.
        let sample = numeric_sample(&(0..64).map(|i| 0.1 + 0.002 * i as f64).collect::<Vec<_>>());
        let mut marg = Marginal::new(vec!["x".into()]);
        marg.add(vec![Value::Float(0.7)], 1.0);
        marg.add(vec![Value::Float(0.8)], 2.0);
        marg.add(vec![Value::Float(0.9)], 1.0);
        let model = MSwg::fit(&sample, std::slice::from_ref(&marg), small_config()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let gen = model.generate(512, &mut rng);
        let xs: Vec<f64> = gen
            .column_by_name("x")
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean - 0.8).abs() < 0.1,
            "generated mean {mean}, want ~0.8; report {:?}",
            model.report().loss_history
        );
    }

    #[test]
    fn loss_decreases_during_training() {
        let sample = numeric_sample(&(0..64).map(|i| i as f64 / 64.0).collect::<Vec<_>>());
        let mut marg = Marginal::new(vec!["x".into()]);
        for i in 0..10 {
            marg.add(vec![Value::Float(i as f64 / 10.0)], 1.0);
        }
        let model = MSwg::fit(&sample, std::slice::from_ref(&marg), small_config()).unwrap();
        let h = &model.report().loss_history;
        let first: f64 = h[..3].iter().sum::<f64>() / 3.0;
        let last: f64 = h[h.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn uncovered_attrs_get_sample_marginals() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..32 {
            b.push_row(vec![
                (i as f64 / 32.0).into(),
                (1.0 - i as f64 / 32.0).into(),
            ])
            .unwrap();
        }
        let sample = b.finish();
        let mut marg = Marginal::new(vec!["x".into()]);
        marg.add(vec![Value::Float(0.5)], 1.0);
        let cfg = SwgConfig {
            epochs: 2,
            ..small_config()
        };
        let model = MSwg::fit(&sample, std::slice::from_ref(&marg), cfg).unwrap();
        assert!(model
            .report()
            .marginal_labels
            .iter()
            .any(|l| l == "y (sample)"));
    }

    #[test]
    fn generates_metadata_only_categories() {
        // Sample only contains carrier "AA", but the marginal gives "US"
        // half the mass: the generator must be able to emit "US" (this is
        // exactly the §2 open-world example: AOL emails absent from the
        // Yahoo sample).
        let schema = Schema::new(vec![Field::new("carrier", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        for _ in 0..32 {
            b.push_row(vec!["AA".into()]).unwrap();
        }
        let sample = b.finish();
        let mut marg = Marginal::new(vec!["carrier".into()]);
        marg.add(vec!["AA".into()], 1.0);
        marg.add(vec!["US".into()], 1.0);
        let cfg = SwgConfig {
            epochs: 60,
            ..small_config()
        };
        let model = MSwg::fit(&sample, std::slice::from_ref(&marg), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let gen = model.generate(400, &mut rng);
        let us = gen
            .column_by_name("carrier")
            .unwrap()
            .iter()
            .filter(|v| v == &Value::Str("US".into()))
            .count();
        let frac = us as f64 / 400.0;
        assert!((0.2..=0.8).contains(&frac), "US fraction {frac}, want ~0.5");
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let sample = numeric_sample(&(0..32).map(|i| i as f64 / 32.0).collect::<Vec<_>>());
        let mut marg = Marginal::new(vec!["x".into()]);
        marg.add(vec![Value::Float(0.5)], 1.0);
        let cfg = SwgConfig {
            epochs: 2,
            ..small_config()
        };
        let m1 = MSwg::fit(&sample, std::slice::from_ref(&marg), cfg.clone()).unwrap();
        let m2 = MSwg::fit(&sample, std::slice::from_ref(&marg), cfg).unwrap();
        let g1 = m1.generate(10, &mut StdRng::seed_from_u64(3));
        let g2 = m2.generate(10, &mut StdRng::seed_from_u64(3));
        for r in 0..10 {
            assert_eq!(g1.value(r, 0), g2.value(r, 0));
        }
    }
}
