use std::collections::HashMap;

use mosaic_nn::Matrix;
use mosaic_stats::Marginal;
use mosaic_storage::{Column, DataType, Field, Schema, Table, TableBuilder, Value};

/// Per-attribute encoding specification.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSpec {
    /// Min-max scaled to `[0, 1]`; decoded by unscaling (and rounding when
    /// the source column was integral).
    Numeric {
        /// Attribute name.
        name: String,
        /// Observed minimum (scale anchor).
        min: f64,
        /// Observed maximum.
        max: f64,
        /// Round decoded values to whole numbers.
        integer: bool,
    },
    /// One-hot encoded block over the observed distinct values; decoded by
    /// argmax.
    Categorical {
        /// Attribute name.
        name: String,
        /// Distinct values in block order.
        values: Vec<Value>,
    },
}

impl AttrSpec {
    /// Attribute name.
    pub fn name(&self) -> &str {
        match self {
            AttrSpec::Numeric { name, .. } | AttrSpec::Categorical { name, .. } => name,
        }
    }

    /// Encoded width (1 for numeric, #distinct for categorical) — the
    /// "M-SWG Dim" column of the paper's Table 1.
    pub fn width(&self) -> usize {
        match self {
            AttrSpec::Numeric { .. } => 1,
            AttrSpec::Categorical { values, .. } => values.len(),
        }
    }
}

/// A marginal lifted into encoded space: weighted points over the encoded
/// columns of its attributes, ready for (sliced) Wasserstein matching.
#[derive(Debug, Clone)]
pub struct EncodedMarginal {
    /// Which encoded columns of the generator output this marginal
    /// constrains.
    pub cols: Vec<usize>,
    /// Cell centers in encoded coordinates (one per marginal cell).
    pub points: Vec<Vec<f64>>,
    /// Cell masses.
    pub weights: Vec<f64>,
    /// Human-readable label (attribute names).
    pub label: String,
}

impl EncodedMarginal {
    /// Encoded dimensionality.
    pub fn dim(&self) -> usize {
        self.cols.len()
    }
}

/// Bidirectional encoding between a [`Table`] and the generator's
/// continuous `[0,1]`-ish coordinate space (paper §5.3).
#[derive(Debug, Clone)]
pub struct Encoder {
    specs: Vec<AttrSpec>,
    offsets: Vec<usize>,
    total_dim: usize,
    schema: std::sync::Arc<Schema>,
}

impl Encoder {
    /// Fit an encoder to a table: string/bool columns become one-hot
    /// categorical blocks; numeric columns min-max scale (with integer
    /// rounding when the column is `Int`). `extra_values` can widen a
    /// categorical domain with values known from metadata but absent from
    /// the sample.
    pub fn fit(table: &Table, extra_values: &HashMap<String, Vec<Value>>) -> Encoder {
        let mut specs = Vec::with_capacity(table.num_columns());
        for (i, field) in table.schema().fields().iter().enumerate() {
            let col = table.column(i);
            let spec = match field.data_type {
                DataType::Str | DataType::Bool => {
                    let mut values: Vec<Value> = Vec::new();
                    for v in col.iter() {
                        if !v.is_null() && !values.contains(&v) {
                            values.push(v);
                        }
                    }
                    if let Some(extra) = extra_values.get(&field.name.to_ascii_lowercase()) {
                        for v in extra {
                            if !values.contains(v) {
                                values.push(v.clone());
                            }
                        }
                    }
                    values.sort_by(|a, b| a.total_cmp(b));
                    AttrSpec::Categorical {
                        name: field.name.clone(),
                        values,
                    }
                }
                DataType::Int | DataType::Float => {
                    let (mut min, mut max) = col.numeric_range().unwrap_or((0.0, 1.0));
                    if let Some(extra) = extra_values.get(&field.name.to_ascii_lowercase()) {
                        for v in extra {
                            if let Some(x) = v.as_f64() {
                                min = min.min(x);
                                max = max.max(x);
                            }
                        }
                    }
                    if max <= min {
                        max = min + 1.0;
                    }
                    AttrSpec::Numeric {
                        name: field.name.clone(),
                        min,
                        max,
                        integer: field.data_type == DataType::Int,
                    }
                }
            };
            specs.push(spec);
        }
        let mut offsets = Vec::with_capacity(specs.len());
        let mut acc = 0;
        for s in &specs {
            offsets.push(acc);
            acc += s.width();
        }
        Encoder {
            specs,
            offsets,
            total_dim: acc,
            schema: std::sync::Arc::clone(table.schema()),
        }
    }

    /// Total encoded dimensionality.
    pub fn dim(&self) -> usize {
        self.total_dim
    }

    /// Attribute specs in schema order.
    pub fn specs(&self) -> &[AttrSpec] {
        &self.specs
    }

    /// Encoded column range of attribute `name`.
    pub fn attr_cols(&self, name: &str) -> Option<std::ops::Range<usize>> {
        let i = self
            .specs
            .iter()
            .position(|s| s.name().eq_ignore_ascii_case(name))?;
        Some(self.offsets[i]..self.offsets[i] + self.specs[i].width())
    }

    /// Softmax blocks for the generator head: `(start, len)` of every
    /// categorical attribute.
    pub fn softmax_blocks(&self) -> Vec<(usize, usize)> {
        self.specs
            .iter()
            .zip(&self.offsets)
            .filter(|(s, _)| matches!(s, AttrSpec::Categorical { .. }))
            .map(|(s, &o)| (o, s.width()))
            .collect()
    }

    /// Encode one attribute value into `out[range]`.
    fn encode_value(&self, attr: usize, v: &Value, out: &mut [f64]) {
        match &self.specs[attr] {
            AttrSpec::Numeric { min, max, .. } => {
                let x = v.as_f64().unwrap_or(*min);
                out[0] = ((x - min) / (max - min)).clamp(0.0, 1.0);
            }
            AttrSpec::Categorical { values, .. } => {
                out.fill(0.0);
                if let Some(pos) = values.iter().position(|c| c == v) {
                    out[pos] = 1.0;
                }
            }
        }
    }

    /// Encode a whole table (schema-compatible with the fitted table) into
    /// an `n × dim` matrix.
    pub fn encode_table(&self, table: &Table) -> mosaic_storage::Result<Matrix> {
        let cols: Vec<&Column> = self
            .specs
            .iter()
            .map(|s| table.column_by_name(s.name()))
            .collect::<mosaic_storage::Result<Vec<_>>>()?;
        let n = table.num_rows();
        let mut m = Matrix::zeros(n, self.total_dim);
        for row in 0..n {
            let out = m.row_mut(row);
            for (ai, col) in cols.iter().enumerate() {
                let v = col.value(row);
                let range = self.offsets[ai]..self.offsets[ai] + self.specs[ai].width();
                self.encode_value(ai, &v, &mut out[range]);
            }
        }
        Ok(m)
    }

    /// Decode generator output rows back into a table: numeric columns
    /// unscale (rounding integers), categorical blocks argmax-discretize
    /// (paper: "only force the output to be binary for data generation").
    pub fn decode_matrix(&self, m: &Matrix) -> Table {
        let fields: Vec<Field> = self.schema.fields().to_vec();
        let schema = Schema::new(fields);
        let mut b = TableBuilder::with_capacity(schema, m.rows());
        for r in 0..m.rows() {
            let row = m.row(r);
            let mut out = Vec::with_capacity(self.specs.len());
            for (ai, spec) in self.specs.iter().enumerate() {
                let start = self.offsets[ai];
                match spec {
                    AttrSpec::Numeric {
                        min, max, integer, ..
                    } => {
                        let x = row[start].clamp(0.0, 1.0) * (max - min) + min;
                        if *integer {
                            out.push(Value::Int(x.round() as i64));
                        } else {
                            out.push(Value::Float(x));
                        }
                    }
                    AttrSpec::Categorical { values, .. } => {
                        if values.is_empty() {
                            out.push(Value::Null);
                            continue;
                        }
                        let block = &row[start..start + values.len()];
                        let arg = block
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        out.push(values[arg].clone());
                    }
                }
            }
            b.push_row(out).expect("decoded row matches schema");
        }
        b.finish()
    }

    /// Lift a marginal into encoded space (cell keys become weighted points
    /// over the marginal attributes' encoded columns).
    pub fn encode_marginal(&self, m: &Marginal) -> Option<EncodedMarginal> {
        let attr_idx: Vec<usize> = m
            .attrs()
            .iter()
            .map(|a| {
                self.specs
                    .iter()
                    .position(|s| s.name().eq_ignore_ascii_case(a))
            })
            .collect::<Option<Vec<_>>>()?;
        let mut cols = Vec::new();
        for &ai in &attr_idx {
            cols.extend(self.offsets[ai]..self.offsets[ai] + self.specs[ai].width());
        }
        let mut points = Vec::with_capacity(m.num_cells());
        let mut weights = Vec::with_capacity(m.num_cells());
        for (key, count) in m.iter() {
            let mut point = vec![0.0; cols.len()];
            let mut pos = 0;
            for (ki, &ai) in attr_idx.iter().enumerate() {
                let w = self.specs[ai].width();
                self.encode_value(ai, &key[ki], &mut point[pos..pos + w]);
                pos += w;
            }
            points.push(point);
            weights.push(count);
        }
        Some(EncodedMarginal {
            cols,
            points,
            weights,
            label: m.attrs().join(","),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{DataType, Field, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("carrier", DataType::Str),
            Field::new("distance", DataType::Int),
            Field::new("delay", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (c, d, y) in [("AA", 100, 1.5), ("WN", 500, -2.0), ("AA", 900, 0.0)] {
            b.push_row(vec![c.into(), (d as i64).into(), y.into()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn encoded_width_matches_table1_convention() {
        let t = table();
        let enc = Encoder::fit(&t, &HashMap::new());
        // carrier: 2 one-hot dims; distance/delay: 1 each.
        assert_eq!(enc.dim(), 4);
        assert_eq!(enc.specs()[0].width(), 2);
        assert_eq!(enc.softmax_blocks(), vec![(0, 2)]);
        assert_eq!(enc.attr_cols("distance"), Some(2..3));
    }

    #[test]
    fn encode_scales_to_unit_interval() {
        let t = table();
        let enc = Encoder::fit(&t, &HashMap::new());
        let m = enc.encode_table(&t).unwrap();
        assert_eq!((m.rows(), m.cols()), (3, 4));
        for x in m.data() {
            assert!((0.0..=1.0).contains(x), "out of range: {x}");
        }
        // Row 0: AA -> one-hot [1,0]; distance 100 is min -> 0.0.
        assert_eq!(m.row(0)[0], 1.0);
        assert_eq!(m.row(0)[2], 0.0);
        // Row 2: distance 900 is max -> 1.0.
        assert_eq!(m.row(2)[2], 1.0);
    }

    #[test]
    fn roundtrip_decode_recovers_rows() {
        let t = table();
        let enc = Encoder::fit(&t, &HashMap::new());
        let m = enc.encode_table(&t).unwrap();
        let back = enc.decode_matrix(&m);
        assert_eq!(back.num_rows(), 3);
        for r in 0..3 {
            assert_eq!(back.value(r, 0), t.value(r, 0), "carrier row {r}");
            assert_eq!(back.value(r, 1), t.value(r, 1), "distance row {r}");
            let orig = t.value(r, 2).as_f64().unwrap();
            let dec = back.value(r, 2).as_f64().unwrap();
            assert!((orig - dec).abs() < 1e-9, "delay row {r}");
        }
    }

    #[test]
    fn extra_values_extend_categorical_domain() {
        let t = table();
        let mut extra = HashMap::new();
        extra.insert("carrier".to_string(), vec![Value::Str("US".into())]);
        let enc = Encoder::fit(&t, &extra);
        assert_eq!(enc.specs()[0].width(), 3);
    }

    #[test]
    fn encode_marginal_one_hot_cells() {
        let t = table();
        let enc = Encoder::fit(&t, &HashMap::new());
        let mut marg = Marginal::new(vec!["carrier".into(), "distance".into()]);
        marg.add(vec!["AA".into(), Value::Int(500)], 7.0);
        let em = enc.encode_marginal(&marg).unwrap();
        assert_eq!(em.dim(), 3); // 2 one-hot + 1 numeric
        assert_eq!(em.points.len(), 1);
        assert_eq!(em.weights[0], 7.0);
        // AA one-hot + scaled 500 -> 0.5.
        assert_eq!(em.points[0], vec![1.0, 0.0, 0.5]);
    }

    #[test]
    fn marginal_with_unknown_attr_is_none() {
        let t = table();
        let enc = Encoder::fit(&t, &HashMap::new());
        let marg = Marginal::new(vec!["missing".into()]);
        assert!(enc.encode_marginal(&marg).is_none());
    }
}
