//! `EXPLAIN <select>` rendering: the bound plan at every layer — the
//! canonical logical plan, the optimized logical plan with the fired
//! rule names, and the physical operator pipeline (morsel count, thread
//! budget) — plus the visibility pipeline the engine would run, as lines
//! of a one-column result table.
//!
//! EXPLAIN binds against the live catalog exactly like `prepare` does
//! (it resolves the population's sample, the mechanism-vs-IPF decision,
//! the OPEN replicate protocol, and the source schema the optimizer
//! prunes against) but executes nothing.

use mosaic_sql::{SelectItem, SelectStmt, Visibility};
use mosaic_storage::Schema;

use crate::catalog::Catalog;
use crate::engine::{
    choose_sample, describe_semi_open, fingerprint_of, result_cache_ineligibility,
    sample_scan_schema, EngineOptions, MosaicEngine,
};
use crate::plan::fingerprint::format_fingerprint;
use crate::plan::parallel::MORSEL_ROWS;
use crate::plan::{has_aggregate_shape, plan_select, Planned};
use crate::{MosaicError, Result};

/// Render the EXPLAIN lines for one SELECT: the plan layers, then the
/// result-cache verdict (fingerprint, eligibility, whether a valid
/// entry is cached right now).
pub(crate) fn render(
    engine: &MosaicEngine,
    cat: &Catalog,
    opts: &EngineOptions,
    stmt: &SelectStmt,
) -> Result<Vec<String>> {
    let mut lines = render_plan(cat, opts, stmt)?;
    push_cache_lines(&mut lines, engine, cat, opts, stmt);
    Ok(lines)
}

/// Append the result-cache report. Statements the prepared-statement
/// binder does not cover execute uncached, so no lines are emitted for
/// them — the bind error (if any) surfaces at execution, not here.
fn push_cache_lines(
    lines: &mut Vec<String>,
    engine: &MosaicEngine,
    cat: &Catalog,
    opts: &EngineOptions,
    stmt: &SelectStmt,
) {
    let Ok(p) = crate::session::Prepared::bind(cat, opts, stmt.clone(), "") else {
        return;
    };
    let vis = p.visibility().unwrap_or(Visibility::Closed);
    let verdict = if !opts.result_cache || opts.result_cache_mb == 0 {
        "off".to_string()
    } else if let Some(why) = result_cache_ineligibility(opts, vis) {
        format!("ineligible ({why})")
    } else if p.param_count() > 0 {
        // The fingerprint covers the bound values, so each distinct
        // parameter vector caches separately.
        "eligible (keyed per parameter values)".to_string()
    } else {
        let fp = fingerprint_of(&p, &[], opts, vis);
        lines.push(format!("  fingerprint: {}", format_fingerprint(fp)));
        if engine.result_cached(fp, cat) {
            "eligible, cached".to_string()
        } else {
            "eligible, not cached".to_string()
        }
    };
    lines.push(format!("  result cache: {verdict}"));
}

/// Render the plan lines for one SELECT.
fn render_plan(cat: &Catalog, opts: &EngineOptions, stmt: &SelectStmt) -> Result<Vec<String>> {
    let mut lines = Vec::new();
    if let Some(fc) = &stmt.from {
        if crate::plan::join::needs_scope(stmt, fc) {
            return render_scope(cat, opts, stmt, fc);
        }
    }
    match stmt.from.as_ref().map(|f| f.base.name.as_str()) {
        None => {
            let items: Vec<SelectItem> = stmt
                .items
                .iter()
                .filter(|i| !matches!(i, SelectItem::Wildcard))
                .cloned()
                .collect();
            let stmt2 = SelectStmt {
                items,
                ..stmt.clone()
            };
            lines.push("SELECT (scalar, no FROM)".to_string());
            let planned = plan_select(&stmt2, false, opts.optimizer, None);
            push_plan(
                &mut lines,
                &planned,
                opts.optimizer,
                "<one row>",
                1,
                opts.parallelism,
            );
        }
        Some(from) => {
            if let Some(pop) = cat.population(from) {
                let vis = stmt.visibility.unwrap_or(opts.default_visibility);
                let (sample, view) = choose_sample(cat, pop)?;
                lines.push(format!("SELECT {vis} FROM population {}", pop.name));
                lines.push(format!(
                    "  source: sample {} ({} rows{})",
                    sample.name,
                    sample.len(),
                    match &view {
                        Some(pred) => format!(", view filter: {}", pred.default_name()),
                        None => String::new(),
                    }
                ));
                match vis {
                    Visibility::Closed => lines
                        .push("  visibility: CLOSED — raw sample scan, no reweighting".to_string()),
                    Visibility::SemiOpen => lines.push(format!(
                        "  visibility: SEMI-OPEN — {}",
                        describe_semi_open(cat, pop, &sample)
                    )),
                    Visibility::Open => {
                        lines.push(format!(
                            "  visibility: OPEN — {} generative replicate(s), backend {}, seed {}",
                            opts.open.num_generated.max(1),
                            opts.open.backend.id(),
                            opts.open.seed
                        ));
                        if has_aggregate_shape(stmt) {
                            lines.push(
                                "  combine: keep groups present in every replicate, average \
                                 aggregates; ORDER BY / LIMIT applied after combining"
                                    .to_string(),
                            );
                        }
                    }
                }
                let weighted = vis != Visibility::Closed;
                let planned =
                    plan_select(stmt, weighted, opts.optimizer, Some(pop.schema.as_ref()));
                push_plan(
                    &mut lines,
                    &planned,
                    opts.optimizer,
                    &sample.name,
                    sample.len(),
                    opts.parallelism,
                );
            } else if stmt.visibility.is_some() {
                return Err(MosaicError::Unsupported(
                    "visibility levels (CLOSED/SEMI-OPEN/OPEN) apply to population queries only"
                        .into(),
                ));
            } else if let Some(t) = cat.aux(from) {
                lines.push(format!("SELECT FROM table {from}"));
                let planned = plan_select(stmt, false, opts.optimizer, Some(t.schema().as_ref()));
                push_plan(
                    &mut lines,
                    &planned,
                    opts.optimizer,
                    from,
                    t.num_rows(),
                    opts.parallelism,
                );
                push_encodings(&mut lines, t);
            } else if let Some(s) = cat.sample(from) {
                lines.push(format!(
                    "SELECT FROM sample {} (raw scan; engine weights exposed as column `weight`)",
                    s.name
                ));
                let schema: std::sync::Arc<Schema> = sample_scan_schema(s);
                let planned = plan_select(stmt, false, opts.optimizer, Some(schema.as_ref()));
                push_plan(
                    &mut lines,
                    &planned,
                    opts.optimizer,
                    &s.name,
                    s.len(),
                    opts.parallelism,
                );
                push_encodings(&mut lines, &s.data);
            } else {
                return Err(crate::engine::unknown_relation(cat, from));
            }
        }
    }
    push_footer(&mut lines, opts, stmt);
    Ok(lines)
}

fn push_footer(lines: &mut Vec<String>, opts: &EngineOptions, stmt: &SelectStmt) {
    lines.push(format!(
        "  parallelism: {} worker thread(s)",
        opts.parallelism
    ));
    if has_aggregate_shape(stmt) {
        lines.push(format!(
            "  aggregate merge: {} radix partition(s){}",
            opts.agg_partitions,
            if opts.agg_partitions == 1 {
                " (serial merge)"
            } else {
                ""
            }
        ));
    }
    let params = stmt.param_count();
    if params > 0 {
        lines.push(format!("  parameters: {params} positional (?1..?{params})"));
    }
}

/// Append the string-column encoding report for a scanned table:
/// `dict(K)` for dictionary-encoded columns (K distinct values in the
/// dictionary), `plain` for per-row string storage. Non-string columns
/// are elided; the line is omitted when the table has no string columns.
fn push_encodings(lines: &mut Vec<String>, table: &mosaic_storage::Table) {
    let mut parts = Vec::new();
    for (i, f) in table.schema().fields().iter().enumerate() {
        let col = table.column(i);
        if col.data_type() != mosaic_storage::DataType::Str {
            continue;
        }
        let enc = match col.dict_parts() {
            Some((_, dict)) => format!("dict({})", dict.len()),
            None => "plain".to_string(),
        };
        parts.push(format!("{}={enc}", f.name));
    }
    if !parts.is_empty() {
        lines.push(format!("  encodings: {}", parts.join(", ")));
    }
}

/// Render a multi-relation (or aliased) FROM: the resolved relations —
/// population sides with their visibility pipeline — the join mechanics
/// (kind, keys, build-side rule, weight combination), and the usual
/// logical/optimized/physical plan layers.
fn render_scope(
    cat: &Catalog,
    opts: &EngineOptions,
    stmt: &SelectStmt,
    fc: &mosaic_sql::FromClause,
) -> Result<Vec<String>> {
    use crate::engine::ScopeSource;
    use mosaic_sql::JoinKind;
    let (infos, vis) =
        crate::engine::resolve_scope(cat, opts.default_visibility, fc, stmt.visibility)?;
    let mut lines = Vec::new();
    if !fc.has_joins() {
        let info = infos.into_iter().next().expect("one relation");
        let rel = info.rel;
        lines.push(format!(
            "SELECT FROM {} {} AS {}",
            if rel.weighted { "sample" } else { "table" },
            rel.name,
            rel.binding
        ));
        let schema = std::sync::Arc::clone(&rel.schema);
        let name = rel.name.clone();
        let rewritten = crate::plan::join::bind_single(stmt, rel)?;
        let planned = plan_select(&rewritten, false, opts.optimizer, Some(schema.as_ref()));
        push_plan(
            &mut lines,
            &planned,
            opts.optimizer,
            &name,
            info.rows,
            opts.parallelism,
        );
        if let Some(t) = cat.aux(&name) {
            push_encodings(&mut lines, t);
        } else if let Some(s) = cat.sample(&name) {
            push_encodings(&mut lines, &s.data);
        }
        push_footer(&mut lines, opts, stmt);
        return Ok(lines);
    }
    let kind = fc.joins[0].kind;
    let join_word = match kind {
        JoinKind::Inner => " INNER JOIN ",
        JoinKind::LeftOuter => " LEFT JOIN ",
    };
    let headline: Vec<String> = fc.relations().map(|t| t.to_string()).collect();
    let vis_prefix = vis.map(|v| format!("{v} ")).unwrap_or_default();
    lines.push(format!(
        "SELECT {vis_prefix}FROM {}",
        headline.join(join_word)
    ));
    for (i, info) in infos.iter().enumerate() {
        let rel = &info.rel;
        let kind_word = match &info.source {
            ScopeSource::Aux => "table",
            ScopeSource::Sample { .. } => "sample",
            ScopeSource::Population { .. } => "population",
        };
        let via = match &info.source {
            ScopeSource::Population { sample, .. } => format!(", via sample {}", sample.name),
            _ => String::new(),
        };
        lines.push(format!(
            "  {}: {} {} ({} rows{}{})",
            if i == 0 { "left" } else { "right" },
            kind_word,
            rel.name,
            info.rows,
            via,
            if rel.weighted {
                ", weights exposed as column `weight`"
            } else {
                ""
            },
        ));
    }
    // Population sides: one line per side describing its visibility
    // pipeline (the same decisions the engine makes at execution).
    if let Some(v) = vis {
        for info in &infos {
            let ScopeSource::Population { pop, sample, .. } = &info.source else {
                continue;
            };
            match v {
                Visibility::Closed => lines.push(format!(
                    "  visibility: CLOSED — {} scans raw sample {}, no reweighting",
                    pop.name, sample.name
                )),
                Visibility::SemiOpen => lines.push(format!(
                    "  visibility: SEMI-OPEN — {}: {}",
                    pop.name,
                    describe_semi_open(cat, pop, sample)
                )),
                Visibility::Open => {
                    lines.push(format!(
                        "  visibility: OPEN — {} side generated per replicate: {} replicate(s), \
                         backend {}, seed {}",
                        pop.name,
                        opts.open.num_generated.max(1),
                        opts.open.backend.id(),
                        opts.open.seed
                    ));
                    if has_aggregate_shape(stmt) {
                        lines.push(
                            "  combine: keep groups present in every replicate, average \
                             aggregates; ORDER BY / LIMIT applied after combining"
                                .to_string(),
                        );
                    }
                }
            }
        }
    }
    if infos.iter().filter(|i| i.rel.weighted).count() > 1 {
        lines.push(
            "  combined weight: product of per-side weights (independence assumption), \
             IPF re-calibrated against declared marginals that survive into the joined schema"
                .to_string(),
        );
    }
    let (lrows, rrows) = (infos[0].rows, infos[1].rows);
    let build = if lrows < rrows {
        &infos[0].rel
    } else {
        &infos[1].rel
    };
    let probe = if lrows < rrows {
        &infos[1].rel
    } else {
        &infos[0].rel
    };
    let kind_name = match kind {
        JoinKind::Inner => "INNER",
        JoinKind::LeftOuter => "LEFT OUTER",
    };
    let outer_note = match kind {
        JoinKind::Inner => "",
        JoinKind::LeftOuter => "; unmatched left rows NULL-extend the right side",
    };
    lines.push(format!(
        "  join: {kind_name} hash equi-join; build = smaller input ({}, currently), probe = {} \
         morsel-parallel; output in canonical (left row, right row) order{outer_note}",
        build.name, probe.name
    ));
    // Mirror the execution-time gate: a multi-morsel build side is
    // radix-partitioned across the worker pool, smaller builds stay
    // serial (see `plan::join::build_and_probe`).
    let build_rows = lrows.min(rrows);
    let build_parts = if opts.agg_partitions > 1 && build_rows > MORSEL_ROWS {
        opts.agg_partitions
    } else {
        1
    };
    lines.push(format!(
        "  join build: {build_parts} radix partition(s){}",
        if build_parts == 1 {
            " (serial build)"
        } else {
            " on the worker pool"
        }
    ));
    let weighted_agg = vis.is_some_and(|v| v != Visibility::Closed);
    let rels: Vec<_> = infos.iter().map(|i| i.rel.clone()).collect();
    let bound = crate::plan::join::bind_join(stmt, rels, weighted_agg)?;
    let planned = crate::plan::plan_logical(bound.logical, opts.optimizer, None);
    let sym = match kind {
        JoinKind::Inner => "⋈",
        JoinKind::LeftOuter => "⟕",
    };
    push_plan(
        &mut lines,
        &planned,
        opts.optimizer,
        &format!("{} {sym} {}", fc.base.name, fc.joins[0].table.name),
        lrows.max(rrows),
        opts.parallelism,
    );
    push_footer(&mut lines, opts, stmt);
    Ok(lines)
}

/// Append the plan lines: logical before/after with the fired rule
/// names, then the physical pipeline — scan (with its morsel split and
/// pruned column list) plus each operator's description, and the sort
/// strategy (serial single run vs parallel runs + k-way merge) when the
/// plan carries a full Sort. `rows` is the pre-filter scan bound, so
/// the run count is an upper bound.
fn push_plan(
    lines: &mut Vec<String>,
    planned: &Planned,
    optimizer: bool,
    source: &str,
    rows: usize,
    threads: usize,
) {
    lines.push(format!("  logical: {}", planned.logical));
    if !optimizer {
        lines.push("  optimizer: off".to_string());
    } else if planned.fired.is_empty() {
        lines.push("  optimized: (no rules fired)".to_string());
    } else {
        lines.push(format!("  optimized: {}", planned.optimized));
        lines.push(format!("    rules fired: {}", planned.fired.join(", ")));
    }
    let plan = &planned.physical;
    let morsels = rows.div_ceil(MORSEL_ROWS).max(1);
    lines.push(format!("  plan: {plan}"));
    let cols = match plan.scan_columns() {
        Some(cols) => format!(", columns: [{}]", cols.join(", ")),
        None => String::new(),
    };
    lines.push(format!(
        "    Scan: {source} ({rows} rows, {morsels} morsel(s) of {MORSEL_ROWS} rows{cols})"
    ));
    for d in plan.describe_operators() {
        lines.push(format!("    {d}"));
    }
    // The sort input size is only known at plan time when no aggregate
    // sits between the scan and the Sort; an aggregated plan sorts its
    // group count, decided at execution by the same gate.
    let saw_agg = plan.shape.name() == "HashAggregate";
    if plan.post_shape.iter().any(|op| op.name() == "Sort") {
        if saw_agg && threads > 1 {
            lines.push(format!(
                "    sort: over the aggregate output — parallel runs + k-way merge \
                 when the group count exceeds {MORSEL_ROWS}, else serial"
            ));
        } else if threads > 1 && morsels > 1 {
            lines.push(format!(
                "    sort: parallel — runs={morsels} (≤{MORSEL_ROWS} rows each, sorted \
                 on the worker pool), merge=k-way"
            ));
        } else {
            lines.push("    sort: serial (single sorted run)".to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{MosaicEngine, Visibility};
    use std::sync::Arc;

    fn lines_of(result: &crate::QueryResult) -> Vec<String> {
        (0..result.table.num_rows())
            .map(|r| result.table.value(r, 0).to_string())
            .collect()
    }

    #[test]
    fn explain_aux_table_query() {
        let engine = Arc::new(MosaicEngine::new());
        // Explicit override: the assertions are about the optimized
        // rendering regardless of the ambient MOSAIC_OPTIMIZER default.
        let s = engine.session().with_optimizer(true);
        s.execute("CREATE TABLE t (k TEXT, v INT); INSERT INTO t VALUES ('a', 1), ('b', 2);")
            .unwrap();
        let r = s
            .execute("EXPLAIN SELECT k, COUNT(*) FROM t WHERE v > 0 GROUP BY k ORDER BY k LIMIT 5")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("SELECT FROM table t"), "{text}");
        assert!(
            text.contains("logical: Scan → Filter(v > 0) → Aggregate"),
            "{text}"
        );
        assert!(
            text.contains("Scan → Filter → HashAggregate → TopK"),
            "{text}"
        );
        assert!(text.contains("rules fired: sort_limit_fusion"), "{text}");
        assert!(text.contains("Filter: v > 0"), "{text}");
        assert!(text.contains("2 rows, 1 morsel(s)"), "{text}");
        assert!(text.contains("parallelism:"), "{text}");
        // Aggregate-shaped query: the merge-partition count is reported.
        assert!(text.contains("aggregate merge:"), "{text}");
        assert!(text.contains("radix partition(s)"), "{text}");
        // String columns report their encoding (TEXT ingest builds a
        // dictionary over the 2 distinct keys).
        assert!(text.contains("encodings: k=dict(2)"), "{text}");
    }

    #[test]
    fn explain_partitions_follow_session_override() {
        let engine = Arc::new(MosaicEngine::new());
        let s = engine.session().with_agg_partitions(1);
        s.execute("CREATE TABLE t (k TEXT, v INT); INSERT INTO t VALUES ('a', 1);")
            .unwrap();
        let r = s
            .execute("EXPLAIN SELECT k, COUNT(*) FROM t GROUP BY k")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(
            text.contains("aggregate merge: 1 radix partition(s) (serial merge)"),
            "{text}"
        );
        // Non-aggregate queries have no merge phase to report.
        let r = s.execute("EXPLAIN SELECT k FROM t").unwrap();
        let text = lines_of(&r).join("\n");
        assert!(!text.contains("aggregate merge:"), "{text}");
    }

    #[test]
    fn explain_reports_sort_strategy() {
        use crate::plan::parallel::MORSEL_ROWS;
        use mosaic_storage::{DataType, Field, Schema, TableBuilder, Value};
        let engine = Arc::new(MosaicEngine::new());
        let mut b = TableBuilder::new(Schema::new(vec![Field::new("v", DataType::Int)]));
        for r in 0..(2 * MORSEL_ROWS + 5) {
            b.push_row(vec![Value::Int(r as i64)]).unwrap();
        }
        engine.register_table("big", b.finish()).unwrap();
        let s = engine.session().with_parallelism(8).with_optimizer(true);
        let r = s
            .execute("EXPLAIN SELECT v FROM big ORDER BY v DESC")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("sort: parallel — runs=3"), "{text}");
        assert!(text.contains("merge=k-way"), "{text}");
        // One worker thread: a single in-place sort, no pool traffic.
        let serial = s.clone().with_parallelism(1);
        let r = serial
            .execute("EXPLAIN SELECT v FROM big ORDER BY v DESC")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("sort: serial (single sorted run)"), "{text}");
        // A single-morsel input sorts serially at any thread budget.
        s.execute("CREATE TABLE small (v INT); INSERT INTO small VALUES (2), (1);")
            .unwrap();
        let r = s.execute("EXPLAIN SELECT v FROM small ORDER BY v").unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("sort: serial (single sorted run)"), "{text}");
        // Fused TopK is not a full Sort: no sort-strategy line at all.
        let r = s
            .execute("EXPLAIN SELECT v FROM big ORDER BY v DESC LIMIT 5")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("TopK"), "{text}");
        assert!(!text.contains("sort:"), "{text}");
        // A Sort over an aggregate sorts the group count, unknown at
        // plan time — the line says so instead of quoting scan morsels.
        let r = s
            .execute("EXPLAIN SELECT v, COUNT(*) AS c FROM big GROUP BY v ORDER BY c DESC")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("sort: over the aggregate output"), "{text}");
        assert!(!text.contains("sort: parallel — runs="), "{text}");
    }

    #[test]
    fn explain_reports_join_build_partitions() {
        use crate::plan::parallel::MORSEL_ROWS;
        use mosaic_storage::{DataType, Field, Schema, TableBuilder, Value};
        let engine = Arc::new(MosaicEngine::new());
        let mut dim = TableBuilder::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("grp", DataType::Int),
        ]));
        for r in 0..(MORSEL_ROWS + 10) {
            dim.push_row(vec![Value::Int(r as i64), Value::Int((r % 7) as i64)])
                .unwrap();
        }
        engine.register_table("dim", dim.finish()).unwrap();
        let mut fact = TableBuilder::new(Schema::new(vec![Field::new("k", DataType::Int)]));
        for r in 0..(2 * MORSEL_ROWS) {
            fact.push_row(vec![Value::Int(r as i64)]).unwrap();
        }
        engine.register_table("fact", fact.finish()).unwrap();
        let s = engine.session().with_agg_partitions(16);
        let r = s
            .execute("EXPLAIN SELECT fact.k FROM fact JOIN dim ON fact.k = dim.k")
            .unwrap();
        let text = lines_of(&r).join("\n");
        // Build = smaller input (dim, > 1 morsel) → partitioned build.
        assert!(
            text.contains("join build: 16 radix partition(s) on the worker pool"),
            "{text}"
        );
        // partitions=1 forces the serial build at any size.
        let r = s
            .clone()
            .with_agg_partitions(1)
            .execute("EXPLAIN SELECT fact.k FROM fact JOIN dim ON fact.k = dim.k")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(
            text.contains("join build: 1 radix partition(s) (serial build)"),
            "{text}"
        );
        // A single-morsel build side stays serial too.
        s.execute("CREATE TABLE tiny (k INT, grp INT); INSERT INTO tiny VALUES (1, 1), (2, 2);")
            .unwrap();
        let r = s
            .execute("EXPLAIN SELECT fact.k FROM fact JOIN tiny ON fact.k = tiny.k")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(
            text.contains("join build: 1 radix partition(s) (serial build)"),
            "{text}"
        );
    }

    #[test]
    fn explain_shows_pruned_scan_and_folded_constants() {
        let engine = Arc::new(MosaicEngine::new());
        let s = engine.session().with_optimizer(true);
        s.execute(
            "CREATE TABLE wide (a INT, b INT, c INT, d INT);
             INSERT INTO wide VALUES (1, 2, 3, 4);",
        )
        .unwrap();
        let r = s
            .execute("EXPLAIN SELECT a FROM wide WHERE b > 1 + 1")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("Scan[a#0, b#1]"), "{text}");
        assert!(text.contains("Filter(b > 2)"), "{text}");
        assert!(
            text.contains("rules fired: constant_folding, projection_pruning"),
            "{text}"
        );
        assert!(text.contains("columns: [a, b]"), "{text}");

        // Optimizer off: logical only, no rewrite lines.
        let off = s.clone().with_optimizer(false);
        let r = off
            .execute("EXPLAIN SELECT a FROM wide WHERE b > 1 + 1")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("optimizer: off"), "{text}");
        assert!(!text.contains("rules fired"), "{text}");
        assert!(text.contains("Filter(b > 1 + 1)"), "{text}");
    }

    #[test]
    fn explain_population_pipeline_and_params() {
        let engine = Arc::new(MosaicEngine::new());
        let s = engine.session();
        s.execute(
            "CREATE TABLE Report (city TEXT, n INT);
             INSERT INTO Report VALUES ('x', 10), ('y', 30);
             CREATE GLOBAL POPULATION People (city TEXT);
             CREATE METADATA People_M1 AS (SELECT city, n FROM Report);
             CREATE SAMPLE S AS (SELECT * FROM People);
             INSERT INTO S VALUES ('x'), ('y'), ('y');",
        )
        .unwrap();
        // EXPLAIN accepts parameter placeholders without values.
        let r = s
            .execute(
                "EXPLAIN SELECT SEMI-OPEN city, COUNT(*) FROM People WHERE city = ? GROUP BY city",
            )
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(
            text.contains("SELECT SEMI-OPEN FROM population People"),
            "{text}"
        );
        assert!(
            text.contains("IPF reweighting against 1 marginal(s) of People"),
            "{text}"
        );
        assert!(text.contains("HashAggregate[weighted]"), "{text}");
        assert!(text.contains("Filter: city = ?1"), "{text}");
        assert!(text.contains("parameters: 1 positional"), "{text}");

        let r = s
            .execute("EXPLAIN SELECT OPEN city, COUNT(*) FROM People GROUP BY city")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("visibility: OPEN"), "{text}");
        assert!(text.contains("replicate(s)"), "{text}");

        // CLOSED plans are unweighted.
        let closed = engine.session().with_default_visibility(Visibility::Closed);
        let r = closed
            .execute("EXPLAIN SELECT city, COUNT(*) FROM People GROUP BY city")
            .unwrap();
        let text = lines_of(&r).join("\n");
        assert!(text.contains("CLOSED — raw sample scan"), "{text}");
        assert!(text.contains("HashAggregate:"), "{text}");
    }
}
