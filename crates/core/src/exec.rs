//! The query executor: filter → (group / aggregate | project) → order →
//! limit, over a single table with optional row weights.
//!
//! Weights realize the paper's weighted-aggregate rewrite (§5.3: "To run
//! the aggregate queries over a weighted sample, we simply modify the
//! aggregate to be over a weight attribute (e.g. COUNT(*) becomes
//! SUM(weight))"). With `weights = None`, aggregates behave like ordinary
//! SQL.
//!
//! [`run_select`] lowers the statement into a vectorized physical plan
//! (see [`crate::plan`]); [`run_select_rowwise`] is the retained
//! row-at-a-time implementation, kept as the semantics oracle for the
//! property-based equivalence suite and as the baseline in the
//! `query_exec` benchmark.

use std::collections::HashMap;

use mosaic_sql::{AggFunc, Expr, SelectItem, SelectStmt};
use mosaic_storage::{Field, Schema, Table, Value};

use crate::eval::{eval_predicate_rowwise, eval_row};
use crate::plan::{self, output_name, ExecContext, LimitOp, PhysicalOperator, SortOp};
use crate::{MosaicError, Result};

/// Execute a SELECT over one table through the vectorized, morsel-driven
/// physical plan. `weights` (parallel to the table's rows) turns
/// aggregates into weighted aggregates. Uses the default thread cap
/// ([`plan::parallel::default_parallelism`]) and the default optimizer
/// setting ([`plan::optimize::default_optimizer`]); neither ever
/// changes results.
pub fn run_select(stmt: &SelectStmt, table: &Table, weights: Option<&[f64]>) -> Result<Table> {
    run_select_with(
        stmt,
        table,
        weights,
        plan::parallel::default_parallelism(),
        plan::optimize::default_optimizer(),
    )
}

/// [`run_select`] with an explicit worker-thread cap. `parallelism = 1`
/// executes the morsel pipeline inline on the calling thread;
/// any cap produces bit-identical results.
pub fn run_select_parallel(
    stmt: &SelectStmt,
    table: &Table,
    weights: Option<&[f64]>,
    parallelism: usize,
) -> Result<Table> {
    run_select_with(
        stmt,
        table,
        weights,
        parallelism,
        plan::optimize::default_optimizer(),
    )
}

/// [`run_select_parallel`] with the optimizer explicitly on or off —
/// the A/B entry point of the four-way oracle suite. The optimizer is
/// a pure plan rewrite: results are bit-identical either way (the
/// `planner_oracle` suite enforces this for every template at every
/// thread count).
pub fn run_select_with(
    stmt: &SelectStmt,
    table: &Table,
    weights: Option<&[f64]>,
    parallelism: usize,
    optimizer: bool,
) -> Result<Table> {
    run_select_partitioned(
        stmt,
        table,
        weights,
        parallelism,
        optimizer,
        plan::parallel::default_agg_partitions(),
    )
}

/// [`run_select_with`] with an explicit radix-partition count for the
/// parallel aggregate merge (`agg_partitions = 1` runs the merge as a
/// single serial pass). Like the thread cap, the partition count never
/// changes results — the `planner_oracle` suite enforces bit-identity
/// across partition counts.
pub fn run_select_partitioned(
    stmt: &SelectStmt,
    table: &Table,
    weights: Option<&[f64]>,
    parallelism: usize,
    optimizer: bool,
    agg_partitions: usize,
) -> Result<Table> {
    check_weights(table, weights)?;
    plan::physical_plan_for(stmt, weights.is_some(), optimizer, Some(table.schema()))
        .with_parallelism(parallelism)
        .with_agg_partitions(agg_partitions)
        .execute(table, weights)
}

fn check_weights(table: &Table, weights: Option<&[f64]>) -> Result<()> {
    if let Some(w) = weights {
        if w.len() != table.num_rows() {
            return Err(MosaicError::Execution(format!(
                "weight vector length {} != table rows {}",
                w.len(),
                table.num_rows()
            )));
        }
    }
    Ok(())
}

/// Row-at-a-time reference implementation of [`run_select`]. Every value
/// it produces must match the vectorized plan byte-for-byte; the
/// `planner_oracle` property suite enforces this.
pub fn run_select_rowwise(
    stmt: &SelectStmt,
    table: &Table,
    weights: Option<&[f64]>,
) -> Result<Table> {
    check_weights(table, weights)?;
    // 1. WHERE
    let (filtered, fweights): (Table, Option<Vec<f64>>) = match &stmt.where_clause {
        Some(pred) => {
            let sel = eval_predicate_rowwise(pred, table)?;
            let idx = sel.to_indices();
            let w = weights.map(|w| idx.iter().map(|&i| w[i]).collect());
            (table.take(&idx), w)
        }
        None => (table.clone(), weights.map(|w| w.to_vec())),
    };
    let has_agg = plan::has_aggregate_shape(stmt);
    let mut out = if has_agg {
        aggregate(stmt, &filtered, fweights.as_deref())?
    } else {
        project(stmt, &filtered)?
    };
    // 3. ORDER BY
    if !stmt.order_by.is_empty() {
        out = order_by(stmt, out, if has_agg { None } else { Some(&filtered) })?;
    }
    // 4. LIMIT
    if let Some(n) = stmt.limit {
        out = out.limit(n);
    }
    Ok(out)
}

fn project(stmt: &SelectStmt, table: &Table) -> Result<Table> {
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                for (i, f) in table.schema().fields().iter().enumerate() {
                    fields.push(f.clone());
                    columns.push(table.column(i).clone());
                }
            }
            SelectItem::Expr { expr, .. } => {
                let col = crate::eval::eval_expr_rowwise(expr, table)?;
                fields.push(Field::new(output_name(item), col.data_type()));
                columns.push(col);
            }
        }
    }
    Table::new(Schema::new(fields), columns).map_err(Into::into)
}

fn aggregate(stmt: &SelectStmt, table: &Table, weights: Option<&[f64]>) -> Result<Table> {
    // Group rows by the GROUP BY key (insertion-ordered).
    let n = table.num_rows();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    let mut group_rows: Vec<Vec<usize>> = Vec::new();
    if stmt.group_by.is_empty() {
        group_keys.push(Vec::new());
        group_rows.push((0..n).collect());
    } else {
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in 0..n {
            let key: Vec<Value> = stmt
                .group_by
                .iter()
                .map(|e| eval_row(e, Some(table), row))
                .collect::<Result<_>>()?;
            let gi = *index.entry(key.clone()).or_insert_with(|| {
                group_keys.push(key);
                group_rows.push(Vec::new());
                group_keys.len() - 1
            });
            group_rows[gi].push(row);
        }
    }
    // Compute each output column.
    let mut fields = Vec::with_capacity(stmt.items.len());
    let mut value_rows: Vec<Vec<Value>> = vec![Vec::new(); group_keys.len()];
    for item in &stmt.items {
        let expr = match item {
            SelectItem::Wildcard => {
                return Err(MosaicError::Execution(
                    "SELECT * cannot be combined with GROUP BY / aggregates".into(),
                ))
            }
            SelectItem::Expr { expr, .. } => expr,
        };
        if expr.contains_aggregate() {
            for (gi, rows) in group_rows.iter().enumerate() {
                let v = eval_agg_expr(expr, table, rows, weights)?;
                value_rows[gi].push(v);
            }
        } else {
            // Must be one of the group-by expressions.
            let pos = stmt
                .group_by
                .iter()
                .position(|g| g == expr)
                .ok_or_else(|| {
                    MosaicError::Execution(format!(
                        "projection {} is neither an aggregate nor a GROUP BY expression",
                        expr.default_name()
                    ))
                })?;
            for (gi, key) in group_keys.iter().enumerate() {
                value_rows[gi].push(key[pos].clone());
            }
        }
        fields.push(output_name(item));
    }
    // Assemble columns with type inference (shared with the vectorized
    // aggregate so both executors apply one widening rule).
    plan::assemble_value_rows(&fields, &value_rows)
}

/// Evaluate an expression that contains aggregates, for one group.
fn eval_agg_expr(
    expr: &Expr,
    table: &Table,
    rows: &[usize],
    weights: Option<&[f64]>,
) -> Result<Value> {
    match expr {
        Expr::Agg { func, arg } => compute_aggregate(*func, arg.as_deref(), table, rows, weights),
        Expr::Binary { left, op, right } => {
            // Allow arithmetic over aggregates, e.g. SUM(x) / COUNT(*).
            let l = eval_agg_expr(left, table, rows, weights)?;
            let r = eval_agg_expr(right, table, rows, weights)?;
            crate::eval::eval_row(
                &Expr::Binary {
                    left: Box::new(Expr::Literal(l)),
                    op: *op,
                    right: Box::new(Expr::Literal(r)),
                },
                None,
                0,
            )
        }
        Expr::Unary { op, expr } => {
            let v = eval_agg_expr(expr, table, rows, weights)?;
            crate::eval::eval_row(
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(Expr::Literal(v)),
                },
                None,
                0,
            )
        }
        Expr::Literal(v) => Ok(v.clone()),
        other => Err(MosaicError::Execution(format!(
            "expression {} mixes aggregates with row-level terms",
            other.default_name()
        ))),
    }
}

fn compute_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    table: &Table,
    rows: &[usize],
    weights: Option<&[f64]>,
) -> Result<Value> {
    let weight_of = |row: usize| weights.map_or(1.0, |w| w[row]);
    match func {
        AggFunc::Count => {
            let mut total = 0.0;
            for &row in rows {
                let counted = match arg {
                    None => true,
                    Some(e) => !eval_row(e, Some(table), row)?.is_null(),
                };
                if counted {
                    total += weight_of(row);
                }
            }
            if weights.is_none() {
                Ok(Value::Int(total as i64))
            } else {
                Ok(Value::Float(total))
            }
        }
        AggFunc::Sum | AggFunc::Avg => {
            let e = arg.ok_or_else(|| {
                MosaicError::Execution(format!("{}(*) requires an argument", func.name()))
            })?;
            let mut num = 0.0;
            let mut den = 0.0;
            let mut any = false;
            let mut all_int = true;
            for &row in rows {
                let v = eval_row(e, Some(table), row)?;
                if v.is_null() {
                    continue;
                }
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                let x = v.as_f64().ok_or_else(|| {
                    MosaicError::Execution(format!("{} over non-numeric value", func.name()))
                })?;
                let w = weight_of(row);
                num += w * x;
                den += w;
                any = true;
            }
            if !any {
                return Ok(Value::Null);
            }
            match func {
                AggFunc::Sum => {
                    if weights.is_none() && all_int {
                        Ok(Value::Int(num as i64))
                    } else {
                        Ok(Value::Float(num))
                    }
                }
                AggFunc::Avg => Ok(Value::Float(num / den)),
                _ => unreachable!(),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg.ok_or_else(|| {
                MosaicError::Execution(format!("{}(*) requires an argument", func.name()))
            })?;
            let mut best: Option<Value> = None;
            for &row in rows {
                let v = eval_row(e, Some(table), row)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Apply a statement's ORDER BY and LIMIT to an already-computed result
/// table (used by the OPEN-query combiner, which evaluates the aggregate
/// body per generated sample and orders only the merged result).
pub(crate) fn apply_order_limit(
    stmt: &SelectStmt,
    table: Table,
    params: &[mosaic_storage::Value],
) -> Result<Table> {
    let ctx = ExecContext {
        filtered_input: None,
        params,
        // Combined OPEN results are aggregate outputs — group-count
        // sized, far below one sort block — so a serial sort is right.
        threads: 1,
    };
    let mut batch = plan::Batch {
        table,
        weights: None,
    };
    if !stmt.order_by.is_empty() {
        let sort = SortOp {
            keys: stmt.order_by.clone(),
        };
        batch = sort.execute(&ctx, &batch)?;
    }
    if let Some(n) = stmt.limit {
        batch = LimitOp { n }.execute(&ctx, &batch)?;
    }
    Ok(batch.table)
}

fn order_by(stmt: &SelectStmt, out: Table, input: Option<&Table>) -> Result<Table> {
    // Prefer ordering on the output table (aliases/aggregate names);
    // fall back to the pre-projection input for non-aggregate queries.
    let mut keys: Vec<Vec<Value>> = Vec::with_capacity(out.num_rows());
    for row in 0..out.num_rows() {
        let mut key = Vec::with_capacity(stmt.order_by.len());
        for (expr, _) in &stmt.order_by {
            let v = match eval_row(expr, Some(&out), row) {
                Ok(v) => v,
                Err(e) => match input {
                    Some(t) if t.num_rows() == out.num_rows() => eval_row(expr, Some(t), row)?,
                    _ => return Err(e),
                },
            };
            key.push(v);
        }
        keys.push(key);
    }
    let mut idx: Vec<usize> = (0..out.num_rows()).collect();
    idx.sort_by(|&a, &b| {
        for (ki, (_, desc)) in stmt.order_by.iter().enumerate() {
            let ord = keys[a][ki].total_cmp(&keys[b][ki]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(out.take(&idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::{parse, Statement};
    use mosaic_storage::{DataType, Field, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("carrier", DataType::Str),
            Field::new("distance", DataType::Int),
            Field::new("elapsed", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (c, d, e) in [
            ("AA", 100, 60.0),
            ("AA", 500, 120.0),
            ("WN", 900, 180.0),
            ("WN", 1500, 240.0),
            ("US", 300, 90.0),
        ] {
            b.push_row(vec![c.into(), (d as i64).into(), e.into()])
                .unwrap();
        }
        b.finish()
    }

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn simple_projection_and_filter() {
        let t = table();
        let out = run_select(
            &select("SELECT carrier, distance FROM t WHERE distance > 400"),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn wildcard_preserves_all_columns() {
        let t = table();
        let out = run_select(&select("SELECT * FROM t"), &t, None).unwrap();
        assert_eq!(out.num_columns(), 3);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn unweighted_aggregates() {
        let t = table();
        let out = run_select(
            &select(
                "SELECT COUNT(*), SUM(distance), AVG(elapsed), MIN(distance), MAX(distance) FROM t",
            ),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.value(0, 0), Value::Int(5));
        assert_eq!(out.value(0, 1), Value::Int(3300));
        assert_eq!(out.value(0, 2), Value::Float(138.0));
        assert_eq!(out.value(0, 3), Value::Int(100));
        assert_eq!(out.value(0, 4), Value::Int(1500));
    }

    #[test]
    fn weighted_aggregates_match_rewrite() {
        let t = table();
        let w = [10.0, 10.0, 1.0, 1.0, 1.0];
        let out = run_select(
            &select("SELECT COUNT(*), AVG(distance) FROM t"),
            &t,
            Some(&w),
        )
        .unwrap();
        assert_eq!(out.value(0, 0), Value::Float(23.0));
        let avg = (10.0 * 100.0 + 10.0 * 500.0 + 900.0 + 1500.0 + 300.0) / 23.0;
        assert!((out.value(0, 1).as_f64().unwrap() - avg).abs() < 1e-9);
    }

    #[test]
    fn group_by_with_weights() {
        let t = table();
        let w = [2.0, 3.0, 1.0, 1.0, 5.0];
        let out = run_select(
            &select("SELECT carrier, COUNT(*) FROM t GROUP BY carrier ORDER BY carrier"),
            &t,
            Some(&w),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, 0), Value::Str("AA".into()));
        assert_eq!(out.value(0, 1), Value::Float(5.0));
        assert_eq!(out.value(1, 0), Value::Str("US".into()));
        assert_eq!(out.value(1, 1), Value::Float(5.0));
        assert_eq!(out.value(2, 1), Value::Float(2.0));
    }

    #[test]
    fn paper_query_shape() {
        // Query 5 of Table 2 (with the bracket IN list).
        let t = table();
        let out = run_select(
            &select("SELECT carrier, AVG(distance) FROM t WHERE elapsed > 100 AND carrier IN ['WN', 'AA'] GROUP BY carrier ORDER BY carrier"),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, 1), Value::Float(500.0)); // AA: only the 500 row
        assert_eq!(out.value(1, 1), Value::Float(1200.0)); // WN: (900+1500)/2
    }

    #[test]
    fn aggregate_arithmetic() {
        let t = table();
        let out = run_select(&select("SELECT SUM(distance) / COUNT(*) FROM t"), &t, None).unwrap();
        assert_eq!(out.value(0, 0), Value::Float(660.0));
    }

    #[test]
    fn empty_group_semantics() {
        let t = table();
        let out = run_select(
            &select("SELECT COUNT(*), SUM(distance) FROM t WHERE distance > 99999"),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int(0));
        assert_eq!(out.value(0, 1), Value::Null);
    }

    #[test]
    fn group_by_empty_table_returns_no_groups() {
        let t = table();
        let out = run_select(
            &select("SELECT carrier, COUNT(*) FROM t WHERE distance > 99999 GROUP BY carrier"),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn projection_must_be_grouped() {
        let t = table();
        assert!(run_select(
            &select("SELECT elapsed, COUNT(*) FROM t GROUP BY carrier"),
            &t,
            None
        )
        .is_err());
    }

    #[test]
    fn order_by_aggregate_desc_and_limit() {
        let t = table();
        let out = run_select(
            &select("SELECT carrier, COUNT(*) AS c FROM t GROUP BY carrier ORDER BY c DESC, carrier LIMIT 2"),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, 0), Value::Str("AA".into()));
        assert_eq!(out.value(1, 0), Value::Str("WN".into()));
    }

    #[test]
    fn alias_names_output() {
        let t = table();
        let out = run_select(&select("SELECT AVG(distance) AS avg_dist FROM t"), &t, None).unwrap();
        assert_eq!(out.schema().field(0).name, "avg_dist");
    }

    #[test]
    fn weight_length_mismatch_is_error() {
        let t = table();
        assert!(run_select(&select("SELECT COUNT(*) FROM t"), &t, Some(&[1.0])).is_err());
    }

    #[test]
    fn order_by_input_column_for_plain_select() {
        let t = table();
        let out = run_select(
            &select("SELECT carrier FROM t ORDER BY distance DESC LIMIT 1"),
            &t,
            None,
        )
        .unwrap();
        assert_eq!(out.value(0, 0), Value::Str("WN".into()));
    }
}
