use std::fmt;

use mosaic_sql::ParseError;
use mosaic_storage::StorageError;

/// Top-level Mosaic error.
#[derive(Debug)]
pub enum MosaicError {
    /// SQL syntax error.
    Parse(ParseError),
    /// Storage-layer error (types, schemas, bounds).
    Storage(StorageError),
    /// Catalog violation (unknown relation, duplicate name, missing GP,
    /// …).
    Catalog(String),
    /// A statement or expression the engine does not support.
    Unsupported(String),
    /// Query planning/execution error.
    Execution(String),
    /// Prepare-time binding failure: the statement references a relation,
    /// column, or shape that does not exist in the catalog.
    Bind(String),
    /// Positional-parameter mismatch: wrong parameter count, or a `?`
    /// placeholder evaluated without a bound value.
    Param(String),
    /// M-SWG training/generation failure.
    Swg(mosaic_swg::SwgError),
    /// Bayesian-network failure.
    Bn(mosaic_bn::BnError),
}

impl fmt::Display for MosaicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosaicError::Parse(e) => write!(f, "{e}"),
            MosaicError::Storage(e) => write!(f, "{e}"),
            MosaicError::Catalog(m) => write!(f, "catalog error: {m}"),
            MosaicError::Unsupported(m) => write!(f, "unsupported: {m}"),
            MosaicError::Execution(m) => write!(f, "execution error: {m}"),
            MosaicError::Bind(m) => write!(f, "bind error: {m}"),
            MosaicError::Param(m) => write!(f, "parameter error: {m}"),
            MosaicError::Swg(e) => write!(f, "M-SWG error: {e}"),
            MosaicError::Bn(e) => write!(f, "Bayesian network error: {e}"),
        }
    }
}

impl std::error::Error for MosaicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MosaicError::Parse(e) => Some(e),
            MosaicError::Storage(e) => Some(e),
            MosaicError::Swg(e) => Some(e),
            MosaicError::Bn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for MosaicError {
    fn from(e: ParseError) -> Self {
        MosaicError::Parse(e)
    }
}

impl From<StorageError> for MosaicError {
    fn from(e: StorageError) -> Self {
        MosaicError::Storage(e)
    }
}

impl From<mosaic_swg::SwgError> for MosaicError {
    fn from(e: mosaic_swg::SwgError) -> Self {
        MosaicError::Swg(e)
    }
}

impl From<mosaic_bn::BnError> for MosaicError {
    fn from(e: mosaic_bn::BnError) -> Self {
        MosaicError::Bn(e)
    }
}
