//! Pluggable generative backends for OPEN query processing.
//!
//! The paper (§4.2): "any generative model can be plugged in and used to
//! answer open queries as long as it can be trained on sample data and
//! marginals". Mosaic ships two:
//!
//! * [`SwgModel`] — the implicit model of §5, the M-SWG (default),
//! * [`BnModel`] — the explicit alternative: a Chow–Liu Bayesian network
//!   fitted on the IPF-reweighted sample (the Themis pipeline).

use mosaic_bn::{BayesNet, BnConfig};
use mosaic_stats::Marginal;
use mosaic_storage::Table;
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Result;

/// A generative model trainable from a biased sample plus population
/// marginals, able to synthesize population tuples.
///
/// `generate` borrows `&self` and the trait requires `Sync`: a fitted
/// model serves the engine's OPEN replicate loop from multiple worker
/// threads simultaneously (generation is still deterministic per seed).
pub trait GenerativeModel: Send + Sync {
    /// Short backend identifier (used in cache keys and diagnostics).
    fn name(&self) -> &'static str;

    /// Train on the sample. `ipf_weights` are the IPF-fitted weights for
    /// the same rows (explicit models use them; the M-SWG trains from the
    /// raw sample plus the marginals directly).
    fn fit(&mut self, sample: &Table, ipf_weights: &[f64], marginals: &[Marginal]) -> Result<()>;

    /// Generate `n` synthetic tuples deterministically from `seed`.
    fn generate(&self, n: usize, seed: u64) -> Result<Table>;
}

/// The Marginal-Constrained Sliced Wasserstein Generator backend.
pub struct SwgModel {
    config: SwgConfig,
    model: Option<MSwg>,
}

impl SwgModel {
    /// New backend with the given training configuration.
    pub fn new(config: SwgConfig) -> SwgModel {
        SwgModel {
            config,
            model: None,
        }
    }

    /// Training diagnostics of the fitted model.
    pub fn report(&self) -> Option<&mosaic_swg::TrainReport> {
        self.model.as_ref().map(|m| m.report())
    }
}

impl GenerativeModel for SwgModel {
    fn name(&self) -> &'static str {
        "m-swg"
    }

    fn fit(&mut self, sample: &Table, _ipf_weights: &[f64], marginals: &[Marginal]) -> Result<()> {
        self.model = Some(MSwg::fit(sample, marginals, self.config.clone())?);
        Ok(())
    }

    fn generate(&self, n: usize, seed: u64) -> Result<Table> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| crate::MosaicError::Execution("M-SWG not fitted".into()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(model.generate(n, &mut rng))
    }
}

/// The Chow–Liu Bayesian-network backend (explicit generative model; fits
/// on the IPF-reweighted sample, Themis-style).
pub struct BnModel {
    config: BnConfig,
    model: Option<BayesNet>,
}

impl BnModel {
    /// New backend with the given configuration.
    pub fn new(config: BnConfig) -> BnModel {
        BnModel {
            config,
            model: None,
        }
    }
}

impl GenerativeModel for BnModel {
    fn name(&self) -> &'static str {
        "bayes-net"
    }

    fn fit(&mut self, sample: &Table, ipf_weights: &[f64], _marginals: &[Marginal]) -> Result<()> {
        self.model = Some(BayesNet::fit(sample, Some(ipf_weights), &self.config)?);
        Ok(())
    }

    fn generate(&self, n: usize, seed: u64) -> Result<Table> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| crate::MosaicError::Execution("Bayesian network not fitted".into()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(model.sample(n, &mut rng))
    }
}
