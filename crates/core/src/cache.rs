//! The engine's inter-query caches: the epoch-invalidated **result
//! cache** and the cross-session **plan cache**.
//!
//! Both caches lean on the same two primitives. The
//! [plan fingerprint](crate::plan::fingerprint) identifies *what* a
//! query computes; [per-relation catalog epochs](crate::Catalog::relation_epoch)
//! identify *over which data*. An entry is valid iff every relation its
//! plan reads still has the epoch recorded at insert time — any
//! DDL/DML/`CREATE SAMPLE`/metadata write against one of those
//! relations bumps its epoch under the catalog write lock, so validity
//! checks done under the read lock can never observe a torn state.
//!
//! Because the engine's determinism contract makes results bit-identical
//! at every thread count × partition count × optimizer setting, a valid
//! cached result **is** the result — caching is pure latency, with no
//! correctness ambiguity to manage.
//!
//! The result cache is bounded by bytes and evicts least-recently-used
//! entries; the plan cache is bounded by entry count. Both are engine-
//! wide (shared by every session and wire connection) and guarded by
//! their own mutexes, held only for map operations — never during
//! execution.

use std::collections::HashMap;

use mosaic_sql::Visibility;
use parking_lot::Mutex;

use crate::engine::QueryResult;

/// Maximum entries the plan cache retains (LRU beyond this).
const PLAN_CACHE_ENTRIES: usize = 512;

/// A point-in-time snapshot of the engine's cache counters, as rendered
/// by the CLI's `.cache stats` and served over the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Configured result-cache capacity in bytes (0 = off).
    pub capacity_bytes: usize,
    /// Live result entries.
    pub entries: usize,
    /// Approximate bytes held by live result entries.
    pub bytes: usize,
    /// Result-cache hits (valid entry returned).
    pub hits: u64,
    /// Result-cache misses (no entry, or entry invalidated).
    pub misses: u64,
    /// Results inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU byte budget.
    pub evictions: u64,
    /// Entries dropped because a relation epoch moved.
    pub invalidations: u64,
    /// Plan-cache hits (parse/bind/optimize skipped).
    pub plan_hits: u64,
    /// Plan-cache misses (fresh bind, including epoch-stale rebinds).
    pub plan_misses: u64,
}

struct ResultEntry {
    result: QueryResult,
    /// `(relation, epoch)` at insert time, for every relation the plan
    /// reads. Valid iff all still match.
    epochs: Vec<(String, u64)>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct ResultCacheInner {
    map: HashMap<u64, ResultEntry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
}

/// The engine-wide result cache: fingerprint → result, LRU by bytes.
#[derive(Default)]
pub(crate) struct ResultCache {
    inner: Mutex<ResultCacheInner>,
}

impl ResultCache {
    /// Look up a fingerprint. `epoch_of` must read the *current*
    /// per-relation epochs (callers pass a closure over the catalog
    /// read guard they already hold, so the check and the alternative
    /// execution see the same catalog state). A present-but-stale entry
    /// is removed and counted as an invalidation plus a miss.
    pub fn get(&self, fp: u64, epoch_of: impl Fn(&str) -> u64) -> Option<QueryResult> {
        let mut inner = self.inner.lock();
        match inner.map.get(&fp) {
            None => {
                inner.misses += 1;
                None
            }
            Some(e) if e.epochs.iter().all(|(r, ep)| epoch_of(r) == *ep) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.hits += 1;
                let e = inner.map.get_mut(&fp).expect("checked above");
                e.last_used = tick;
                Some(e.result.clone())
            }
            Some(_) => {
                let e = inner.map.remove(&fp).expect("checked above");
                inner.bytes -= e.bytes;
                inner.invalidations += 1;
                inner.misses += 1;
                None
            }
        }
    }

    /// Non-mutating probe (no counters, no LRU touch) — `EXPLAIN`'s
    /// "cached: yes/no" line.
    pub fn peek(&self, fp: u64, epoch_of: impl Fn(&str) -> u64) -> bool {
        let inner = self.inner.lock();
        inner
            .map
            .get(&fp)
            .is_some_and(|e| e.epochs.iter().all(|(r, ep)| epoch_of(r) == *ep))
    }

    /// Insert a result under the current epoch snapshot, then evict
    /// least-recently-used entries until the byte budget holds. Results
    /// larger than the whole budget are not admitted. Tables share
    /// their columns behind `Arc`s, so the stored clone (and every hit
    /// returned later) is O(1).
    pub fn insert(
        &self,
        fp: u64,
        result: &QueryResult,
        epochs: Vec<(String, u64)>,
        capacity_bytes: usize,
    ) {
        let bytes = result.table.approx_bytes()
            + result.notes.iter().map(String::len).sum::<usize>()
            + epochs.iter().map(|(r, _)| r.len() + 8).sum::<usize>()
            + 64;
        if bytes > capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&fp) {
            // A concurrent miss already inserted the (identical) result.
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            fp,
            ResultEntry {
                result: result.clone(),
                epochs,
                bytes,
                last_used: tick,
            },
        );
        inner.bytes += bytes;
        inner.insertions += 1;
        while inner.bytes > capacity_bytes {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let e = inner.map.remove(&victim).expect("picked from map");
            inner.bytes -= e.bytes;
            inner.evictions += 1;
        }
    }

    /// Drop every entry (counters are kept — they are cumulative).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Fill the result-cache half of a [`CacheStats`].
    pub fn stats_into(&self, out: &mut CacheStats) {
        let inner = self.inner.lock();
        out.entries = inner.map.len();
        out.bytes = inner.bytes;
        out.hits = inner.hits;
        out.misses = inner.misses;
        out.insertions = inner.insertions;
        out.evictions = inner.evictions;
        out.invalidations = inner.invalidations;
    }
}

/// Plan-cache key: the verbatim SQL text plus the two option knobs that
/// participate in binding. (Visibility is baked into the bound
/// statement at bind time; the optimizer setting changes the plan the
/// bind produces.)
#[derive(PartialEq, Eq, Hash)]
struct PlanKey {
    sql: String,
    visibility: u8,
    optimizer: bool,
}

impl PlanKey {
    fn new(sql: &str, visibility: Visibility, optimizer: bool) -> PlanKey {
        PlanKey {
            sql: sql.trim().to_string(),
            visibility: match visibility {
                Visibility::Closed => 0,
                Visibility::SemiOpen => 1,
                Visibility::Open => 2,
            },
            optimizer,
        }
    }
}

struct PlanEntry {
    prepared: std::sync::Arc<crate::session::Prepared>,
    epochs: Vec<(String, u64)>,
    last_used: u64,
}

#[derive(Default)]
struct PlanCacheInner {
    map: HashMap<PlanKey, PlanEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// The engine-wide prepared-plan cache for ad-hoc SQL: (SQL text,
/// default visibility, optimizer) → bound-and-optimized plan, valid
/// while the source relations' epochs are unchanged. This is what lets
/// hot `Query` frames over the wire skip parse/bind/optimize entirely.
#[derive(Default)]
pub(crate) struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

impl PlanCache {
    /// Look up a bound plan for `sql` under the given binding knobs.
    /// Stale entries (any source-relation epoch moved) are dropped so
    /// the caller rebinds against the current catalog.
    pub fn get(
        &self,
        sql: &str,
        visibility: Visibility,
        optimizer: bool,
        epoch_of: impl Fn(&str) -> u64,
    ) -> Option<std::sync::Arc<crate::session::Prepared>> {
        let key = PlanKey::new(sql, visibility, optimizer);
        let mut inner = self.inner.lock();
        match inner.map.get(&key) {
            Some(e) if e.epochs.iter().all(|(r, ep)| epoch_of(r) == *ep) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.hits += 1;
                let e = inner.map.get_mut(&key).expect("checked above");
                e.last_used = tick;
                Some(std::sync::Arc::clone(&e.prepared))
            }
            Some(_) => {
                inner.map.remove(&key);
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Store a freshly bound plan under the current epoch snapshot.
    pub fn insert(
        &self,
        sql: &str,
        visibility: Visibility,
        optimizer: bool,
        prepared: std::sync::Arc<crate::session::Prepared>,
        epochs: Vec<(String, u64)>,
    ) {
        let key = PlanKey::new(sql, visibility, optimizer);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            PlanEntry {
                prepared,
                epochs,
                last_used: tick,
            },
        );
        while inner.map.len() > PLAN_CACHE_ENTRIES {
            let Some((victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let victim = PlanKey {
                sql: victim.sql.clone(),
                visibility: victim.visibility,
                optimizer: victim.optimizer,
            };
            inner.map.remove(&victim);
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Fill the plan-cache half of a [`CacheStats`].
    pub fn stats_into(&self, out: &mut CacheStats) {
        let inner = self.inner.lock();
        out.plan_hits = inner.hits;
        out.plan_misses = inner.misses;
    }
}

/// Parse the `MOSAIC_RESULT_CACHE` environment variable: `off` (or `0`)
/// disables the result cache, a number is the capacity in megabytes.
/// Unset or unparsable falls back to the 64 MB default.
pub fn default_result_cache_mb() -> usize {
    match std::env::var("MOSAIC_RESULT_CACHE") {
        Ok(v) if v.eq_ignore_ascii_case("off") => 0,
        Ok(v) => v.trim().parse().unwrap_or(64),
        Err(_) => 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{Column, DataType, Field, Schema, Table};

    fn result_rows(n: usize) -> QueryResult {
        QueryResult {
            table: Table::new(
                Schema::new(vec![Field::new("x", DataType::Int)]),
                vec![Column::from_i64((0..n as i64).collect())],
            )
            .unwrap(),
            visibility: None,
            notes: Vec::new(),
        }
    }

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let cache = ResultCache::default();
        let epochs = vec![("t".to_string(), 3)];
        assert!(cache.get(1, |_| 3).is_none());
        cache.insert(1, &result_rows(4), epochs, 1 << 20);
        assert_eq!(cache.get(1, |_| 3).unwrap().table.num_rows(), 4);
        // The relation moved: the entry must die, not serve stale rows.
        assert!(cache.get(1, |_| 4).is_none());
        assert!(cache.get(1, |_| 3).is_none(), "invalidation is permanent");
        let mut s = CacheStats::default();
        cache.stats_into(&mut s);
        assert_eq!((s.hits, s.invalidations), (1, 1));
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let cache = ResultCache::default();
        let one = result_rows(64); // ~512 payload bytes + overhead
        let budget = 3 * (one.table.approx_bytes() + 64 + 9);
        for fp in 0..3u64 {
            cache.insert(fp, &one, vec![("t".into(), 1)], budget);
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get(0, |_| 1).is_some());
        cache.insert(3, &one, vec![("t".into(), 1)], budget);
        let mut s = CacheStats::default();
        cache.stats_into(&mut s);
        assert!(s.bytes <= budget, "{} > {budget}", s.bytes);
        assert_eq!(s.evictions, 1);
        assert!(cache.get(1, |_| 1).is_none(), "LRU entry evicted");
        assert!(cache.get(0, |_| 1).is_some());
        assert!(cache.get(3, |_| 1).is_some());
    }

    #[test]
    fn oversized_results_are_not_admitted() {
        let cache = ResultCache::default();
        cache.insert(9, &result_rows(1000), vec![], 16);
        let mut s = CacheStats::default();
        cache.stats_into(&mut s);
        assert_eq!((s.entries, s.insertions), (0, 0));
    }

    #[test]
    fn env_knob_parses() {
        // Not set in the test environment by default.
        assert!(matches!(default_result_cache_mb(), 0 | 64 | 1..));
    }
}
