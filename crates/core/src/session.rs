//! Sessions and prepared statements — the concurrent client surface of
//! the engine.
//!
//! A [`Session`] is a lightweight handle onto a shared
//! [`MosaicEngine`]: an `Arc` plus a set of per-session overrides
//! (default visibility, generation seed, thread cap, OPEN backend).
//! Sessions never mutate the engine-wide [`EngineOptions`], so any
//! number of them can run concurrently with different settings.
//!
//! [`Session::prepare`] implements the prepare-once/execute-many
//! pattern of the paper's workload (§5.3 re-runs one aggregate template
//! across visibilities and replicates): the SQL is parsed once, names
//! are bound against the catalog, the physical plan is lowered and
//! cached, and [`Session::execute_prepared`] only binds `?` parameter
//! values and executes — no parsing, no planning.

use std::sync::Arc;

use mosaic_sql::{SelectItem, SelectStmt, Statement, Visibility};
use mosaic_storage::{Schema, Table, Value};

use crate::catalog::Catalog;
use crate::engine::{
    choose_sample, EngineOptions, MosaicEngine, OpenBackend, QueryPlans, QueryResult,
};
use crate::plan::logical::LogicalPlan;
use crate::plan::{has_aggregate_shape, plan_select, PhysicalPlan};
use crate::{MosaicError, Result};

/// Per-session overrides over the engine-wide [`EngineOptions`]. Every
/// field is optional: `None` means "inherit the engine default".
///
/// `#[non_exhaustive]`: construct via [`SessionOptions::default`] and
/// the [`Session::with_*`](Session::with_parallelism) builders.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SessionOptions {
    /// Visibility applied to population queries that don't specify one.
    pub default_visibility: Option<Visibility>,
    /// Base seed for OPEN-query generation.
    pub seed: Option<u64>,
    /// Worker-thread cap for this session's queries.
    pub parallelism: Option<usize>,
    /// Radix-partition count for the parallel aggregate merge (1 =
    /// serial merge; never changes results, only wall-clock time).
    pub agg_partitions: Option<usize>,
    /// Generative backend for this session's OPEN queries.
    pub open_backend: Option<OpenBackend>,
    /// Whether this session's SELECT planning runs the rule-based
    /// logical optimizer (overrides [`EngineOptions::optimizer`]).
    pub optimizer: Option<bool>,
    /// Whether this session's queries participate in the shared result
    /// cache (overrides [`EngineOptions::result_cache`]). `Some(false)`
    /// opts this session out without shrinking the engine-wide cache.
    pub result_cache: Option<bool>,
}

/// A client session on a shared [`MosaicEngine`].
///
/// Cloning a session clones its overrides and shares the engine.
/// Sessions are `Send`: move them into threads freely — the engine's
/// catalog lock lets all sessions read concurrently while DDL/DML
/// serializes.
#[derive(Clone)]
pub struct Session {
    engine: Arc<MosaicEngine>,
    overrides: SessionOptions,
}

impl Session {
    pub(crate) fn new(engine: Arc<MosaicEngine>) -> Session {
        Session {
            engine,
            overrides: SessionOptions::default(),
        }
    }

    /// The shared engine this session runs on.
    pub fn engine(&self) -> &Arc<MosaicEngine> {
        &self.engine
    }

    /// This session's overrides.
    pub fn overrides(&self) -> &SessionOptions {
        &self.overrides
    }

    /// Override the default visibility of population queries.
    pub fn with_default_visibility(mut self, v: Visibility) -> Session {
        self.overrides.default_visibility = Some(v);
        self
    }

    /// Override the OPEN-query generation seed.
    pub fn with_seed(mut self, seed: u64) -> Session {
        self.overrides.seed = Some(seed);
        self
    }

    /// Override the worker-thread cap (minimum 1; never changes
    /// results, only wall-clock time).
    pub fn with_parallelism(mut self, n: usize) -> Session {
        self.overrides.parallelism = Some(n.max(1));
        self
    }

    /// Override the radix-partition count of the parallel aggregate
    /// merge (minimum 1; `1` runs the merge as a single serial pass).
    /// Like the thread cap, the partition count never changes results.
    pub fn with_agg_partitions(mut self, n: usize) -> Session {
        self.overrides.agg_partitions = Some(n.max(1));
        self
    }

    /// Override the OPEN generative backend.
    pub fn with_open_backend(mut self, backend: OpenBackend) -> Session {
        self.overrides.open_backend = Some(backend);
        self
    }

    /// Enable or disable the rule-based logical optimizer for this
    /// session's statements (results are bit-identical either way —
    /// only latency changes). Statements prepared *before* the override
    /// keep the plans they were prepared with.
    pub fn with_optimizer(mut self, on: bool) -> Session {
        self.overrides.optimizer = Some(on);
        self
    }

    /// Opt this session in or out of the shared result cache (in by
    /// default when the engine cache has capacity). Opting out never
    /// shrinks the engine-wide cache — other sessions keep their hits.
    /// Cached results are bit-identical to fresh execution, so this is
    /// a memory/latency knob, not a correctness one.
    pub fn with_result_cache(mut self, on: bool) -> Session {
        self.overrides.result_cache = Some(on);
        self
    }

    /// Execute a script of semicolon-separated statements; returns the
    /// result of the last SELECT (or an empty result).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.engine.execute_with(sql, &self.overrides)
    }

    /// Execute a script and return just the last result table.
    pub fn query(&self, sql: &str) -> Result<Table> {
        self.execute(sql).map(|r| r.table)
    }

    /// Execute `sql` only if the engine's shared plan cache holds an
    /// epoch-valid plan for the exact script text — the zero-parse hot
    /// path servers probe before falling back to [`Session::execute`].
    /// `None` means no cached plan (never an error).
    pub fn execute_cached(&self, sql: &str) -> Option<Result<QueryResult>> {
        self.engine.execute_hot(sql, &self.overrides)
    }

    /// Execute one already-parsed statement (shells use this to report
    /// per-statement errors). Returns `None` for statements without a
    /// result (DDL/DML).
    pub fn execute_parsed(&self, stmt: Statement) -> Result<Option<QueryResult>> {
        let opts = self.engine.effective_options(&self.overrides);
        self.engine.execute_statement(stmt, &opts)
    }

    /// Prepare a single SELECT statement: parse once, bind names
    /// against the catalog, resolve the visibility pipeline, lower the
    /// physical plan, and count `?` parameters. The returned
    /// [`Prepared`] is immutable and `Sync` — share it across sessions
    /// and threads, and re-execute it with different parameter values
    /// without re-parsing or re-planning.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let mut stmts = mosaic_sql::parse(sql)?;
        if stmts.len() != 1 {
            return Err(MosaicError::Bind(format!(
                "prepare expects exactly one statement, found {}",
                stmts.len()
            )));
        }
        let stmt = match stmts.pop().expect("checked length") {
            Statement::Select(s) => s,
            other => {
                return Err(MosaicError::Bind(format!(
                    "only SELECT statements can be prepared, found {other:?}"
                )))
            }
        };
        let opts = self.engine.effective_options(&self.overrides);
        let cat = self.engine.catalog();
        Prepared::bind(&cat, &opts, stmt, sql)
    }

    /// Execute a prepared statement with positional-parameter values
    /// (one [`Value`] per `?`, in lexical order). Skips parsing and
    /// planning entirely: the cached plan runs with the parameters
    /// bound into its placeholder expressions.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<QueryResult> {
        if params.len() != prepared.param_count {
            return Err(MosaicError::Param(format!(
                "prepared statement expects {} parameter(s), got {}",
                prepared.param_count,
                params.len()
            )));
        }
        let opts = self.engine.effective_options(&self.overrides);
        let cat = self.engine.catalog();
        prepared.check_source(&cat)?;
        self.engine.select_prepared(&cat, &opts, prepared, params)
    }

    /// [`Session::execute_prepared`], returning just the result table.
    pub fn query_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<Table> {
        self.execute_prepared(prepared, params).map(|r| r.table)
    }
}

/// What relation a prepared statement was bound against.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PreparedSource {
    /// `SELECT` without FROM.
    Scalar,
    /// An auxiliary table.
    Aux(String),
    /// A raw sample scan.
    Sample(String),
    /// A population query (visibility resolved at prepare time).
    Population(String),
    /// A multi-relation scope (join): every relation with its bound
    /// kind, in source order.
    Scope(Vec<(String, ScopeRelKind)>),
}

/// What kind of relation a scope member bound to (staleness checks
/// re-verify the kind at execute time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeRelKind {
    Aux,
    Sample,
    Population,
}

/// A prepared SELECT: the parsed statement, its binding against the
/// catalog, and the cached physical plan(s).
///
/// Produced by [`Session::prepare`]; executed by
/// [`Session::execute_prepared`]. Immutable and thread-safe: one
/// `Prepared` can serve any number of sessions concurrently.
pub struct Prepared {
    sql: String,
    stmt: SelectStmt,
    param_count: usize,
    source: PreparedSource,
    /// The *optimized* logical plan (rules ran once, at prepare time;
    /// parameter-aware constant folding leaves `?` residuals for
    /// execution to bind).
    logical: LogicalPlan,
    /// Optimizer rules that fired at prepare time.
    fired: Vec<&'static str>,
    plan: PhysicalPlan,
    /// For aggregate OPEN queries: the plan of the inner body (ORDER
    /// BY / LIMIT stripped) each generative replicate runs.
    inner_plan: Option<PhysicalPlan>,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("sql", &self.sql)
            .field("param_count", &self.param_count)
            .field("source", &self.source)
            .field("logical", &self.logical.to_string())
            .field("fired", &self.fired)
            .field("plan", &self.plan.to_string())
            .finish_non_exhaustive()
    }
}

impl Prepared {
    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Number of positional parameters (`?`) the statement expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The resolved visibility (population queries; `None` otherwise).
    pub fn visibility(&self) -> Option<Visibility> {
        self.stmt.visibility
    }

    /// The cached logical plan — already optimized, so every execution
    /// reuses the rewrite the optimizer did once at prepare time.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.logical
    }

    /// Names of the optimizer rules that fired at prepare time (empty
    /// when the optimizer was off or nothing applied).
    pub fn fired_rules(&self) -> &[&'static str] {
        &self.fired
    }

    /// The bound (visibility-resolved, possibly scope-rewritten)
    /// statement this plan executes.
    pub(crate) fn stmt(&self) -> &SelectStmt {
        &self.stmt
    }

    /// Package the cached plans for [`MosaicEngine::select`].
    pub(crate) fn query_plans<'a>(&'a self, params: &'a [Value]) -> QueryPlans<'a> {
        QueryPlans {
            plan: Some(&self.plan),
            inner_plan: self.inner_plan.as_ref(),
            params,
        }
    }

    /// Resolved names of every relation this statement reads, for epoch
    /// snapshots and the fingerprint (scalar SELECTs read none).
    pub(crate) fn relations(&self) -> Vec<String> {
        match &self.source {
            PreparedSource::Scalar => Vec::new(),
            PreparedSource::Aux(name)
            | PreparedSource::Sample(name)
            | PreparedSource::Population(name) => vec![name.clone()],
            PreparedSource::Scope(rels) => rels.iter().map(|(name, _)| name.clone()).collect(),
        }
    }

    /// Bind a parsed SELECT against the catalog: resolve the source
    /// relation(s), check every referenced column against its schema,
    /// resolve the visibility pipeline, and lower the plan(s).
    pub(crate) fn bind(
        cat: &Catalog,
        opts: &EngineOptions,
        stmt: SelectStmt,
        sql: &str,
    ) -> Result<Prepared> {
        let param_count = stmt.param_count();
        // Multi-relation scopes (joins, aliases, qualified references)
        // bind through the scope binder and cache the join plan.
        if let Some(fc) = stmt.from.clone() {
            if crate::plan::join::needs_scope(&stmt, &fc) {
                return Self::bind_scope(cat, opts, stmt, &fc, sql, param_count);
            }
        }
        let (source, stmt, schema): (PreparedSource, SelectStmt, Option<Arc<Schema>>) = match stmt
            .from
            .clone()
            .map(|f| f.base.name)
        {
            None => {
                let cols = stmt.referenced_columns();
                if let Some(c) = cols.first() {
                    return Err(MosaicError::Bind(format!(
                        "column {c} is not allowed in a SELECT without FROM"
                    )));
                }
                // Mirror the engine's scalar path: wildcards drop.
                let items: Vec<SelectItem> = stmt
                    .items
                    .iter()
                    .filter(|i| !matches!(i, SelectItem::Wildcard))
                    .cloned()
                    .collect();
                (PreparedSource::Scalar, SelectStmt { items, ..stmt }, None)
            }
            Some(from) => {
                if let Some(pop) = cat.population(&from) {
                    // Resolve the visibility now so the plan's
                    // weighted-rewrite property is fixed; the session
                    // default is baked into the prepared statement.
                    let vis = stmt.visibility.unwrap_or(opts.default_visibility);
                    let stmt = SelectStmt {
                        visibility: Some(vis),
                        ..stmt
                    };
                    (
                        PreparedSource::Population(pop.name.clone()),
                        stmt,
                        Some(Arc::clone(&pop.schema)),
                    )
                } else if stmt.visibility.is_some() {
                    return Err(MosaicError::Bind(
                            "visibility levels (CLOSED/SEMI-OPEN/OPEN) apply to population queries only"
                                .into(),
                        ));
                } else if let Some(t) = cat.aux(&from) {
                    (
                        PreparedSource::Aux(from.clone()),
                        stmt,
                        Some(Arc::clone(t.schema())),
                    )
                } else if let Some(s) = cat.sample(&from) {
                    // Samples expose the engine-managed `weight` column;
                    // bind (and optimize) against the augmented schema.
                    (
                        PreparedSource::Sample(s.name.clone()),
                        stmt,
                        Some(crate::engine::sample_scan_schema(s)),
                    )
                } else {
                    return Err(match crate::engine::unknown_relation(cat, &from) {
                        MosaicError::Catalog(m) => MosaicError::Bind(m),
                        other => other,
                    });
                }
            }
        };
        // Name binding: every referenced column must exist in the
        // source schema (sample schemas were already augmented with the
        // engine-managed `weight` column above). ORDER BY keys get one
        // extra degree of freedom, mirroring the scope binder: a name
        // matching a SELECT item's output name (its alias or written
        // spelling) is a projection reference the sort resolves against
        // the output table at execution.
        if let Some(schema) = &schema {
            let output_names: Vec<String> = stmt
                .items
                .iter()
                .filter_map(|i| match i {
                    SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
                    SelectItem::Expr { expr, alias: None } => Some(expr.default_name()),
                    SelectItem::Wildcard => None,
                })
                .collect();
            let unknown = |c: &str| {
                MosaicError::Bind(format!(
                    "unknown column {c} in relation {}",
                    stmt.from
                        .as_ref()
                        .map(|f| f.base.name.as_str())
                        .unwrap_or("<scalar>")
                ))
            };
            let body = stmt
                .items
                .iter()
                .filter_map(|i| match i {
                    SelectItem::Expr { expr, .. } => Some(expr),
                    SelectItem::Wildcard => None,
                })
                .chain(stmt.where_clause.iter())
                .chain(stmt.group_by.iter());
            for e in body {
                for c in e.referenced_columns() {
                    if !schema.contains(&c) {
                        return Err(unknown(&c));
                    }
                }
            }
            for (e, _) in &stmt.order_by {
                for c in e.referenced_columns() {
                    if !schema.contains(&c)
                        && !output_names.iter().any(|n| n.eq_ignore_ascii_case(&c))
                    {
                        return Err(unknown(&c));
                    }
                }
            }
        }
        // Plan: build the logical IR, run the optimizer once (projection
        // pruning against the bound schema, param-aware constant
        // folding, Sort+Limit fusion), lower the physical plan. The
        // weighted-rewrite property is a function of the resolved
        // visibility.
        let (weighted, open_agg) = match (&source, stmt.visibility) {
            (PreparedSource::Population(_), Some(Visibility::Closed)) => (false, false),
            (PreparedSource::Population(_), Some(Visibility::Open)) => {
                (true, has_aggregate_shape(&stmt))
            }
            (PreparedSource::Population(_), _) => (true, false),
            _ => (false, false),
        };
        // No `with_parallelism` / `with_agg_partitions` here: the thread
        // cap and merge-partition count are execution-time properties —
        // every prepared execution passes the session's effective values
        // through `execute_capped`.
        let planned = plan_select(&stmt, weighted, opts.optimizer, schema.as_deref());
        let inner_plan = open_agg.then(|| {
            let inner = SelectStmt {
                order_by: Vec::new(),
                limit: None,
                ..stmt.clone()
            };
            plan_select(&inner, true, opts.optimizer, schema.as_deref()).physical
        });
        Ok(Prepared {
            sql: sql.to_string(),
            stmt,
            param_count,
            source,
            logical: planned.optimized,
            fired: planned.fired,
            plan: planned.physical,
            inner_plan,
        })
    }

    /// Bind a multi-relation (or aliased) FROM: resolve every relation,
    /// run the scope binder (qualified-name resolution, ambiguity
    /// checks, equi-key extraction), and cache the optimized join plan.
    fn bind_scope(
        cat: &Catalog,
        opts: &EngineOptions,
        stmt: SelectStmt,
        fc: &mosaic_sql::FromClause,
        sql: &str,
        param_count: usize,
    ) -> Result<Prepared> {
        let (infos, vis) =
            match crate::engine::resolve_scope(cat, opts.default_visibility, fc, stmt.visibility) {
                Ok(r) => r,
                Err(MosaicError::Catalog(m)) => return Err(MosaicError::Bind(m)),
                Err(other) => return Err(other),
            };
        // Bake the resolved visibility in (population scopes only), so
        // later session-default changes cannot shift the semantics the
        // plan was built under.
        let stmt = SelectStmt {
            visibility: vis,
            ..stmt
        };
        if !fc.has_joins() {
            // A lone aliased relation: rewrite to bare column names and
            // fall into the ordinary single-relation plan.
            let info = infos.into_iter().next().expect("one relation");
            let rel = info.rel;
            let source = if rel.weighted {
                PreparedSource::Sample(rel.name.clone())
            } else {
                PreparedSource::Aux(rel.name.clone())
            };
            let schema = Arc::clone(&rel.schema);
            let rewritten = crate::plan::join::bind_single(&stmt, rel)?;
            let planned = plan_select(&rewritten, false, opts.optimizer, Some(&schema));
            return Ok(Prepared {
                sql: sql.to_string(),
                stmt: rewritten,
                param_count,
                source,
                logical: planned.optimized,
                fired: planned.fired,
                plan: planned.physical,
                inner_plan: None,
            });
        }
        let source = PreparedSource::Scope(
            infos
                .iter()
                .map(|i| {
                    let kind = match &i.source {
                        crate::engine::ScopeSource::Aux => ScopeRelKind::Aux,
                        crate::engine::ScopeSource::Sample { .. } => ScopeRelKind::Sample,
                        crate::engine::ScopeSource::Population { .. } => ScopeRelKind::Population,
                    };
                    (i.rel.name.clone(), kind)
                })
                .collect(),
        );
        let rels: Vec<_> = infos.into_iter().map(|i| i.rel).collect();
        // Population-containing scopes under SEMI-OPEN/OPEN answer
        // aggregates through the §5.3 weighted rewrite; CLOSED scopes
        // and plain sample joins do not.
        let weighted_agg = vis.is_some_and(|v| v != Visibility::Closed);
        // Aggregate OPEN joins run the replicate loop over the ORDER
        // BY/LIMIT-stripped body; cache that inner plan too.
        let inner_plan = (vis == Some(Visibility::Open) && has_aggregate_shape(&stmt))
            .then(|| -> Result<PhysicalPlan> {
                let inner = SelectStmt {
                    order_by: Vec::new(),
                    limit: None,
                    ..stmt.clone()
                };
                let bound = crate::plan::join::bind_join(&inner, rels.clone(), weighted_agg)?;
                Ok(crate::plan::plan_logical(bound.logical, opts.optimizer, None).physical)
            })
            .transpose()?;
        let bound = crate::plan::join::bind_join(&stmt, rels, weighted_agg)?;
        let planned = crate::plan::plan_logical(bound.logical, opts.optimizer, None);
        Ok(Prepared {
            sql: sql.to_string(),
            stmt: bound.stmt,
            param_count,
            source,
            logical: planned.optimized,
            fired: planned.fired,
            plan: planned.physical,
            inner_plan,
        })
    }

    /// Verify the catalog still resolves this statement's source to the
    /// same relation kind (DDL may have dropped or replaced it since
    /// prepare; running a stale plan against a different relation kind
    /// would silently change semantics).
    fn check_source(&self, cat: &Catalog) -> Result<()> {
        let ok = match &self.source {
            PreparedSource::Scalar => true,
            PreparedSource::Aux(name) => cat.aux(name).is_some(),
            PreparedSource::Sample(name) => cat.sample(name).is_some(),
            PreparedSource::Scope(rels) => rels.iter().all(|(name, kind)| match kind {
                ScopeRelKind::Aux => cat.aux(name).is_some(),
                ScopeRelKind::Sample => cat.sample(name).is_some(),
                ScopeRelKind::Population => cat
                    .population(name)
                    .is_some_and(|pop| choose_sample(cat, pop).is_ok()),
            }),
            PreparedSource::Population(name) => {
                if cat.population(name).is_none() {
                    return Err(MosaicError::Bind(format!(
                        "prepared statement is stale: population {name} no longer exists"
                    )));
                }
                // The population must still have a usable sample; the
                // pipeline re-resolves it (data may have grown).
                let pop = cat.population(name).expect("checked");
                choose_sample(cat, pop).is_ok()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(MosaicError::Bind(format!(
                "prepared statement is stale: its source relation no longer exists ({:?})",
                self.source
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::Value;

    fn engine_with_table() -> Arc<MosaicEngine> {
        let engine = Arc::new(MosaicEngine::new());
        engine
            .session()
            .execute(
                "CREATE TABLE t (k TEXT, v INT);
                 INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3), ('c', 4);",
            )
            .unwrap();
        engine
    }

    #[test]
    fn prepare_execute_roundtrip() {
        let engine = engine_with_table();
        let s = engine.session();
        let p = s
            .prepare("SELECT k, COUNT(*) AS c FROM t WHERE v > ? GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(p.param_count(), 1);
        let r1 = s.query_prepared(&p, &[Value::Int(0)]).unwrap();
        assert_eq!(r1.num_rows(), 3);
        let r2 = s.query_prepared(&p, &[Value::Int(2)]).unwrap();
        assert_eq!(r2.num_rows(), 2); // a (v=3) and c (v=4)
                                      // Must match the unprepared path with the literal inlined.
        let direct = s
            .query("SELECT k, COUNT(*) AS c FROM t WHERE v > 2 GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(r2.num_rows(), direct.num_rows());
        for r in 0..direct.num_rows() {
            for c in 0..direct.num_columns() {
                assert_eq!(r2.value(r, c), direct.value(r, c));
            }
        }
    }

    #[test]
    fn param_count_mismatch_is_param_error() {
        let engine = engine_with_table();
        let s = engine.session();
        let p = s
            .prepare("SELECT * FROM t WHERE v BETWEEN ? AND ?")
            .unwrap();
        assert_eq!(p.param_count(), 2);
        let err = s.execute_prepared(&p, &[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, MosaicError::Param(_)), "{err}");
    }

    #[test]
    fn unprepared_params_rejected() {
        let engine = engine_with_table();
        let s = engine.session();
        let err = s.execute("SELECT * FROM t WHERE v > ?").unwrap_err();
        assert!(matches!(err, MosaicError::Param(_)), "{err}");
    }

    #[test]
    fn unknown_column_is_bind_error() {
        let engine = engine_with_table();
        let s = engine.session();
        let err = s.prepare("SELECT nope FROM t").unwrap_err();
        assert!(matches!(err, MosaicError::Bind(_)), "{err}");
        let err = s.prepare("SELECT v FROM missing").unwrap_err();
        assert!(matches!(err, MosaicError::Bind(_)), "{err}");
        let err = s.prepare("SELECT 1; SELECT 2").unwrap_err();
        assert!(matches!(err, MosaicError::Bind(_)), "{err}");
        let err = s.prepare("DROP TABLE t").unwrap_err();
        assert!(matches!(err, MosaicError::Bind(_)), "{err}");
    }

    #[test]
    fn stale_prepared_statement_detected() {
        let engine = engine_with_table();
        let s = engine.session();
        let p = s.prepare("SELECT COUNT(*) FROM t").unwrap();
        s.execute("DROP TABLE t").unwrap();
        let err = s.execute_prepared(&p, &[]).unwrap_err();
        assert!(matches!(err, MosaicError::Bind(_)), "{err}");
    }

    #[test]
    fn session_visibility_override() {
        let engine = Arc::new(MosaicEngine::new());
        let setup = engine.session();
        setup
            .execute(
                "CREATE TABLE Report (city TEXT, n INT);
                 INSERT INTO Report VALUES ('x', 10), ('y', 30);
                 CREATE GLOBAL POPULATION People (city TEXT);
                 CREATE METADATA People_M1 AS (SELECT city, n FROM Report);
                 CREATE SAMPLE S AS (SELECT * FROM People);
                 INSERT INTO S VALUES ('x'), ('y'), ('y');",
            )
            .unwrap();
        // Engine default is SEMI-OPEN; a CLOSED-override session answers
        // from the raw sample instead.
        let closed = engine.session().with_default_visibility(Visibility::Closed);
        let r = closed.execute("SELECT COUNT(*) FROM People").unwrap();
        assert_eq!(r.visibility, Some(Visibility::Closed));
        assert_eq!(r.table.value(0, 0), Value::Int(3));
        let semi = engine.session();
        let r = semi.execute("SELECT COUNT(*) FROM People").unwrap();
        assert_eq!(r.visibility, Some(Visibility::SemiOpen));
        assert!((r.table.value(0, 0).as_f64().unwrap() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn prepared_caches_optimized_plan() {
        let engine = engine_with_table();
        // Explicit override so the test is independent of the ambient
        // MOSAIC_OPTIMIZER default.
        let s = engine.session().with_optimizer(true);
        let sql = "SELECT k FROM t WHERE v > ? + (1 + 1) ORDER BY v DESC LIMIT 2";
        let p = s.prepare(sql).unwrap();
        // Rules ran once, at prepare: folding left the `?` residual,
        // pruning resolved the scan columns, fusion produced TopK.
        assert!(p.fired_rules().contains(&"constant_folding"), "{p:?}");
        assert!(p.fired_rules().contains(&"sort_limit_fusion"), "{p:?}");
        let logical = p.logical_plan().to_string();
        assert!(logical.contains("?1 + 2"), "{logical}");
        assert!(logical.contains("TopK"), "{logical}");
        // Bit-identity against an optimizer-off session's prepared plan.
        let off = s.clone().with_optimizer(false);
        let p_off = off.prepare(sql).unwrap();
        assert!(p_off.fired_rules().is_empty(), "{p_off:?}");
        for v in [0i64, 1, 3] {
            let a = s.query_prepared(&p, &[Value::Int(v)]).unwrap();
            let b = off.query_prepared(&p_off, &[Value::Int(v)]).unwrap();
            assert_eq!(a.num_rows(), b.num_rows(), "v = {v}");
            for r in 0..a.num_rows() {
                for c in 0..a.num_columns() {
                    assert_eq!(a.value(r, c), b.value(r, c), "v = {v} cell ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn pruned_sample_scan_keeps_weight_column() {
        let engine = Arc::new(MosaicEngine::new());
        let s = engine.session();
        s.execute(
            "CREATE GLOBAL POPULATION People (city TEXT, age INT);
             CREATE SAMPLE S AS (SELECT * FROM People);
             INSERT INTO S VALUES ('x', 1), ('y', 2);",
        )
        .unwrap();
        // `weight` is engine-managed, not part of the sample's declared
        // schema; the pruned scan must still keep it.
        let p = s
            .prepare("SELECT SUM(weight) FROM S WHERE age > ?")
            .unwrap();
        let out = s.query_prepared(&p, &[Value::Int(0)]).unwrap();
        assert_eq!(out.value(0, 0), Value::Float(2.0));
    }

    #[test]
    fn scalar_and_sample_prepared() {
        let engine = Arc::new(MosaicEngine::new());
        let s = engine.session();
        let p = s.prepare("SELECT 1 + ?").unwrap();
        let out = s.query_prepared(&p, &[Value::Int(41)]).unwrap();
        assert_eq!(out.value(0, 0), Value::Int(42));
        let err = s.prepare("SELECT x").unwrap_err();
        assert!(matches!(err, MosaicError::Bind(_)), "{err}");
    }
}
