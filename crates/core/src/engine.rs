//! [`MosaicEngine`] — the shared Mosaic engine: DDL/DML handling plus
//! the three-visibility population query pipeline of paper §4 — and
//! [`MosaicDb`], the single-owner compatibility wrapper over one
//! engine + one session.
//!
//! The engine is `Arc`-shareable: its catalog sits behind a
//! `parking_lot::RwLock`, so any number of sessions run SELECTs
//! concurrently under read locks while DDL/DML statements take the
//! write lock. Fitted generative models are cached behind their own
//! mutex as `Arc<dyn GenerativeModel>`, so concurrent OPEN queries
//! share a fitted model without holding the cache lock during
//! generation.

use std::collections::HashMap;
use std::sync::Arc;

use mosaic_bn::BnConfig;
use mosaic_sql::{parse, Expr, InsertSource, SelectItem, SelectStmt, Statement, Visibility};
use mosaic_stats::{Binner, Ipf, IpfConfig, Marginal};
use mosaic_storage::{Column, DataType, Field, Schema, Table, TableBuilder, Value};
use mosaic_swg::SwgConfig;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::catalog::{
    empty_table, marginal_from_table, Catalog, Mechanism, MetadataEntry, Population, Sample,
};
use crate::eval::eval_scalar;
use crate::exec::apply_order_limit;
use crate::models::{BnModel, GenerativeModel, SwgModel};
use crate::plan::PhysicalPlan;
use crate::session::{Session, SessionOptions};
use crate::{MosaicError, Result};

/// Which generative model answers OPEN queries.
#[derive(Debug, Clone)]
pub enum OpenBackend {
    /// The Marginal-Constrained Sliced Wasserstein Generator (paper §5).
    Swg(SwgConfig),
    /// A Chow–Liu Bayesian network on the IPF-reweighted sample (the
    /// explicit-model alternative of §4.2).
    BayesNet(BnConfig),
}

impl OpenBackend {
    pub(crate) fn id(&self) -> &'static str {
        match self {
            OpenBackend::Swg(_) => "m-swg",
            OpenBackend::BayesNet(_) => "bayes-net",
        }
    }
}

/// OPEN query processing options.
///
/// `#[non_exhaustive]`: construct with [`OpenOptions::default`] and the
/// `with_*` builders so future fields are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct OpenOptions {
    /// Generative backend.
    pub backend: OpenBackend,
    /// Independent generated samples per query; the paper uses 10 and
    /// returns "the groups appearing in all 10 answers, averaging the
    /// aggregate value" (§5.3).
    pub num_generated: usize,
    /// Rows per generated sample (`None` = same as the training sample,
    /// the paper's protocol).
    pub rows_per_sample: Option<usize>,
    /// Base seed for generation.
    pub seed: u64,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            backend: OpenBackend::Swg(SwgConfig::default()),
            num_generated: 10,
            rows_per_sample: None,
            seed: 0,
        }
    }
}

impl OpenOptions {
    /// Set the generative backend.
    pub fn with_backend(mut self, backend: OpenBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the number of generated samples combined per query.
    pub fn with_num_generated(mut self, n: usize) -> Self {
        self.num_generated = n;
        self
    }

    /// Set the rows per generated sample (`None` = training-sample size).
    pub fn with_rows_per_sample(mut self, n: Option<usize>) -> Self {
        self.rows_per_sample = n;
        self
    }

    /// Set the base generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Engine-wide options.
///
/// `#[non_exhaustive]`: construct with [`EngineOptions::default`] and the
/// `with_*` builders so future fields are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Visibility applied to population queries that don't specify one.
    pub default_visibility: Visibility,
    /// OPEN query options.
    pub open: OpenOptions,
    /// IPF convergence settings for SEMI-OPEN queries.
    pub ipf: IpfConfig,
    /// Binners for continuous attributes (keyed by attribute name),
    /// shared by metadata construction and IPF cell formation.
    pub binners: HashMap<String, Binner>,
    /// Worker-thread cap shared by the morsel-driven executor and the
    /// OPEN replicate loop (which split it between themselves rather
    /// than multiplying — one pool's worth of threads, never more).
    /// Defaults to `MOSAIC_PARALLELISM` or the machine's core count;
    /// never changes results, only wall-clock time.
    pub parallelism: usize,
    /// Whether SELECT planning runs the rule-based logical optimizer
    /// (projection pruning, constant folding, Sort+Limit → TopK fusion;
    /// see [`crate::plan::optimize`]). Defaults to on unless the
    /// `MOSAIC_OPTIMIZER` environment variable disables it. The
    /// optimizer is a pure plan rewrite — results are bit-identical
    /// with it on or off, only latency changes.
    pub optimizer: bool,
    /// Radix-partition count of the parallel aggregate merge (1 = serial
    /// merge). Defaults to `MOSAIC_AGG_PARTITIONS` or 16; like the
    /// thread cap, never changes results.
    pub agg_partitions: usize,
    /// Result-cache capacity in megabytes; `0` disables the result
    /// cache engine-wide. Defaults to `MOSAIC_RESULT_CACHE` (`off` or a
    /// megabyte count) or 64. Caching never changes results — the
    /// determinism contract makes a valid cached result bit-identical
    /// to re-execution — it only removes latency.
    pub result_cache_mb: usize,
    /// Per-query result-cache participation gate (sessions override it
    /// via [`Session::with_result_cache`]). `false` skips both lookup
    /// and insert for the query without touching the shared cache.
    pub result_cache: bool,
    /// True when the OPEN generation seed was set explicitly (via
    /// [`Session::with_seed`] or [`EngineOptions::with_open_seed`]).
    /// OPEN queries without an explicit seed are treated as
    /// resample-on-every-run and are ineligible for the result cache.
    pub open_seed_explicit: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            default_visibility: Visibility::SemiOpen,
            open: OpenOptions::default(),
            ipf: IpfConfig::default(),
            binners: HashMap::new(),
            parallelism: crate::plan::parallel::default_parallelism(),
            optimizer: crate::plan::optimize::default_optimizer(),
            agg_partitions: crate::plan::parallel::default_agg_partitions(),
            result_cache_mb: crate::cache::default_result_cache_mb(),
            result_cache: true,
            open_seed_explicit: false,
        }
    }
}

impl EngineOptions {
    /// Set the default visibility of population queries.
    pub fn with_default_visibility(mut self, v: Visibility) -> Self {
        self.default_visibility = v;
        self
    }

    /// Set the OPEN query options.
    pub fn with_open(mut self, open: OpenOptions) -> Self {
        self.open = open;
        self
    }

    /// Set the IPF convergence settings.
    pub fn with_ipf(mut self, ipf: IpfConfig) -> Self {
        self.ipf = ipf;
        self
    }

    /// Register a binner for a continuous attribute.
    pub fn with_binner(mut self, attr: &str, binner: Binner) -> Self {
        self.binners.insert(attr.to_ascii_lowercase(), binner);
        self
    }

    /// Set the worker-thread cap (minimum 1).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Enable or disable the rule-based logical optimizer. Results are
    /// bit-identical either way; the off switch exists so the
    /// unoptimized path stays exercisable (and the oracle suite can A/B
    /// both paths).
    pub fn with_optimizer(mut self, on: bool) -> Self {
        self.optimizer = on;
        self
    }

    /// Set the aggregate-merge radix-partition count (minimum 1;
    /// 1 = serial merge). Results are bit-identical for any count.
    pub fn with_agg_partitions(mut self, n: usize) -> Self {
        self.agg_partitions = n.max(1);
        self
    }

    /// Set the result-cache capacity in megabytes (`0` disables the
    /// cache engine-wide). Caching never changes results, only latency.
    pub fn with_result_cache(mut self, mb: usize) -> Self {
        self.result_cache_mb = mb;
        self
    }

    /// Set the OPEN generation seed *explicitly*. Unlike reaching
    /// through [`EngineOptions::with_open`], this also marks the seed
    /// as pinned, which makes seeded OPEN queries eligible for the
    /// result cache (an unpinned OPEN query is treated as
    /// resample-on-every-run and never cached).
    pub fn with_open_seed(mut self, seed: u64) -> Self {
        self.open.seed = seed;
        self.open_seed_explicit = true;
        self
    }
}

/// The result of executing a statement: the last query's table plus
/// execution diagnostics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result rows.
    pub table: Table,
    /// Visibility level that produced the result (population queries).
    pub visibility: Option<Visibility>,
    /// Human-readable diagnostics (chosen sample, IPF convergence, model
    /// cache hits, …).
    pub notes: Vec<String>,
}

impl QueryResult {
    pub(crate) fn empty() -> QueryResult {
        QueryResult {
            table: Table::empty(Schema::new(Vec::new())),
            visibility: None,
            notes: Vec::new(),
        }
    }
}

/// Fitted generative models keyed by `population|backend|config-hash`,
/// tagged with the catalog epoch they were trained at. Models are stored
/// as `Arc` so the cache lock is released before generation starts:
/// concurrent OPEN queries share one fitted model.
type ModelCache = Mutex<HashMap<String, (u64, Arc<dyn GenerativeModel>)>>;

/// Prepared-statement hooks threaded through the SELECT dispatch: the
/// cached physical plan(s) and the positional-parameter values of one
/// `execute_prepared` call. [`QueryPlans::default`] (no plans, no
/// params) is the unprepared path.
#[derive(Clone, Copy, Default)]
pub(crate) struct QueryPlans<'a> {
    /// The lowered plan of the full statement.
    pub plan: Option<&'a PhysicalPlan>,
    /// For aggregate OPEN queries: the lowered plan of the inner body
    /// (ORDER BY / LIMIT stripped) each replicate runs.
    pub inner_plan: Option<&'a PhysicalPlan>,
    /// Positional-parameter values.
    pub params: &'a [Value],
}

/// The shared Mosaic engine.
///
/// All methods take `&self`; wrap the engine in an [`Arc`] and open any
/// number of [`Session`]s onto it. Concurrent SELECTs proceed under
/// catalog read locks; DDL/DML statements (`CREATE …`, `INSERT`,
/// `DROP`) serialize behind the write lock. All statement execution is
/// deterministic given the effective options.
///
/// ```
/// use std::sync::Arc;
/// use mosaic_core::MosaicEngine;
///
/// let engine = Arc::new(MosaicEngine::new());
/// let session = engine.session();
/// session.execute("CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2);").unwrap();
/// let prepared = session.prepare("SELECT COUNT(*) FROM t WHERE x > ?").unwrap();
/// let result = session.execute_prepared(&prepared, &[1.into()]).unwrap();
/// assert_eq!(result.table.value(0, 0), 1i64.into());
/// ```
pub struct MosaicEngine {
    catalog: RwLock<Catalog>,
    options: RwLock<EngineOptions>,
    model_cache: ModelCache,
    /// Epoch-invalidated query results, shared by every session (see
    /// [`crate::cache`]).
    result_cache: crate::cache::ResultCache,
    /// Bound-and-optimized plans for ad-hoc SQL, keyed on the statement
    /// text, shared by every session and wire connection.
    plan_cache: crate::cache::PlanCache,
}

impl Default for MosaicEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MosaicEngine {
    /// New engine with default options (SEMI-OPEN default visibility,
    /// M-SWG OPEN backend).
    pub fn new() -> MosaicEngine {
        Self::with_options(EngineOptions::default())
    }

    /// New engine with explicit options.
    pub fn with_options(options: EngineOptions) -> MosaicEngine {
        MosaicEngine {
            catalog: RwLock::new(Catalog::new()),
            options: RwLock::new(options),
            model_cache: Mutex::new(HashMap::new()),
            result_cache: crate::cache::ResultCache::default(),
            plan_cache: crate::cache::PlanCache::default(),
        }
    }

    /// Open a new session on this shared engine. Sessions are cheap
    /// (an `Arc` clone plus an override set) and independent: each can
    /// carry its own default visibility, seed, thread cap, and OPEN
    /// backend without mutating the engine-wide options.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    /// Read access to the catalog. Holding the guard blocks writers
    /// (DDL/DML), not other readers — drop it promptly.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.catalog.read()
    }

    /// Snapshot of the engine-wide options.
    pub fn options(&self) -> EngineOptions {
        self.options.read().clone()
    }

    /// Write access to the engine-wide options. Prefer per-session
    /// overrides ([`Session::with_parallelism`] etc.) for anything
    /// query-scoped; this changes defaults for every session.
    pub fn options_write(&self) -> RwLockWriteGuard<'_, EngineOptions> {
        self.options.write()
    }

    /// Register a binner for a continuous attribute (shared by metadata
    /// construction and IPF).
    pub fn register_binner(&self, attr: &str, binner: Binner) {
        self.options
            .write()
            .binners
            .insert(attr.to_ascii_lowercase(), binner);
    }

    /// Register (or replace) an auxiliary table programmatically —
    /// the bulk-ingestion path that skips SQL `INSERT` round-trips.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        self.catalog.write().create_aux(name, table)
    }

    /// Ingest rows into a sample programmatically (the paper's "...Ingest
    /// Yahoo sample to YahooMigrants" step).
    pub fn ingest_sample(&self, sample: &str, rows: Table) -> Result<()> {
        let mut cat = self.catalog.write();
        let coerced = coerce_to_sample_schema(&cat, sample, rows)?;
        cat.append_to_sample(sample, coerced)
    }

    /// Attach a marginal to a population programmatically.
    pub fn add_metadata(&self, name: &str, population: &str, marginal: Marginal) -> Result<()> {
        self.catalog.write().create_metadata(MetadataEntry {
            name: name.to_string(),
            population: population.to_string(),
            marginal,
        })
    }

    /// Overwrite a sample's initial weights (paper §3.2).
    pub fn set_sample_weights(&self, sample: &str, weights: Vec<f64>) -> Result<()> {
        self.catalog.write().set_sample_weights(sample, weights)
    }

    /// Merge a session's overrides over the engine-wide options.
    pub(crate) fn effective_options(&self, session: &SessionOptions) -> EngineOptions {
        let mut o = self.options.read().clone();
        if let Some(v) = session.default_visibility {
            o.default_visibility = v;
        }
        if let Some(seed) = session.seed {
            o.open.seed = seed;
            // A session-pinned seed makes OPEN results reproducible by
            // request, which is what result-cache eligibility keys on.
            o.open_seed_explicit = true;
        }
        if let Some(p) = session.parallelism {
            o.parallelism = p.max(1);
        }
        if let Some(p) = session.agg_partitions {
            o.agg_partitions = p.max(1);
        }
        if let Some(b) = &session.open_backend {
            o.open.backend = b.clone();
        }
        if let Some(opt) = session.optimizer {
            o.optimizer = opt;
        }
        if let Some(rc) = session.result_cache {
            o.result_cache = rc;
        }
        o
    }

    /// Execute a script of semicolon-separated statements under the
    /// given session overrides; returns the result of the last SELECT
    /// (or an empty result).
    pub(crate) fn execute_with(&self, sql: &str, session: &SessionOptions) -> Result<QueryResult> {
        // Hot path: a valid cached plan for this exact script text
        // skips parse/bind/optimize entirely — repeated ad-hoc `Query`
        // frames over the wire land here.
        if let Some(r) = self.execute_hot(sql, session) {
            return r;
        }
        let opts = self.effective_options(session);
        let mut stmts = parse(sql)?;
        // Single-SELECT scripts bind through the plan cache so the next
        // identical script takes the hot path above.
        if stmts.len() == 1 && matches!(stmts[0], Statement::Select(_)) {
            let Some(Statement::Select(stmt)) = stmts.pop() else {
                unreachable!("matched above");
            };
            return self.execute_select_sql(sql, stmt, &opts);
        }
        let mut last = QueryResult::empty();
        for stmt in stmts {
            if let Some(r) = self.execute_statement(stmt, &opts)? {
                last = r;
            }
        }
        Ok(last)
    }

    /// Execute `sql` through the shared plan cache alone: `Some` when
    /// an epoch-valid plan is cached under the exact script text (no
    /// parsing happens at all), `None` when the caller must take the
    /// ordinary parse path.
    pub(crate) fn execute_hot(
        &self,
        sql: &str,
        session: &SessionOptions,
    ) -> Option<Result<QueryResult>> {
        let opts = self.effective_options(session);
        let cat = self.catalog.read();
        let p = self
            .plan_cache
            .get(sql, opts.default_visibility, opts.optimizer, |n| {
                cat.relation_epoch(n)
            })?;
        Some(self.select_prepared(&cat, &opts, &p, &[]))
    }

    /// Execute one single-SELECT script: bind it as a prepared plan,
    /// publish the plan under the script text for cross-session reuse,
    /// and run it through the result cache. Statements the binder does
    /// not support (and parameterized statements, which cannot execute
    /// ad hoc anyway) fall back to the ordinary uncached path so its
    /// errors and semantics surface verbatim.
    fn execute_select_sql(
        &self,
        sql: &str,
        stmt: SelectStmt,
        opts: &EngineOptions,
    ) -> Result<QueryResult> {
        let cat = self.catalog.read();
        match crate::session::Prepared::bind(&cat, opts, stmt.clone(), sql) {
            Ok(p) if p.param_count() == 0 => {
                let epochs = epoch_snapshot(&cat, &p.relations());
                let p = Arc::new(p);
                self.plan_cache.insert(
                    sql,
                    opts.default_visibility,
                    opts.optimizer,
                    Arc::clone(&p),
                    epochs,
                );
                self.select_prepared(&cat, opts, &p, &[])
            }
            _ => self.select(&cat, opts, &stmt, QueryPlans::default()),
        }
    }

    /// Execute a bound statement through the result cache: look the
    /// fingerprint up under the same catalog read guard the execution
    /// would use (so epoch checks and execution see one catalog state),
    /// fall through to [`MosaicEngine::select`] on a miss, and insert
    /// the fresh result under the current epoch snapshot.
    pub(crate) fn select_prepared(
        &self,
        cat: &Catalog,
        opts: &EngineOptions,
        prepared: &crate::session::Prepared,
        params: &[Value],
    ) -> Result<QueryResult> {
        let vis = prepared.visibility().unwrap_or(Visibility::Closed);
        let enabled = opts.result_cache && opts.result_cache_mb > 0;
        if !enabled || result_cache_ineligibility(opts, vis).is_some() {
            return self.select(cat, opts, prepared.stmt(), prepared.query_plans(params));
        }
        let fp = fingerprint_of(prepared, params, opts, vis);
        if let Some(mut hit) = self.result_cache.get(fp, |n| cat.relation_epoch(n)) {
            hit.notes.push(format!(
                "result cache hit (fingerprint {})",
                crate::plan::fingerprint::format_fingerprint(fp)
            ));
            return Ok(hit);
        }
        let result = self.select(cat, opts, prepared.stmt(), prepared.query_plans(params))?;
        let epochs = epoch_snapshot(cat, &prepared.relations());
        self.result_cache
            .insert(fp, &result, epochs, opts.result_cache_mb << 20);
        Ok(result)
    }

    /// Point-in-time statistics of the shared result and plan caches.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        let mut s = crate::cache::CacheStats {
            capacity_bytes: self.options.read().result_cache_mb << 20,
            ..Default::default()
        };
        self.result_cache.stats_into(&mut s);
        self.plan_cache.stats_into(&mut s);
        s
    }

    /// Drop every cached result and plan. Cumulative counters are kept;
    /// correctness never requires this call — epochs invalidate stale
    /// entries automatically — it just releases memory.
    pub fn clear_caches(&self) {
        self.result_cache.clear();
        self.plan_cache.clear();
    }

    /// Whether a valid (epoch-current) result is cached under `fp`
    /// (`EXPLAIN`'s non-mutating probe).
    pub(crate) fn result_cached(&self, fp: u64, cat: &Catalog) -> bool {
        self.result_cache.peek(fp, |n| cat.relation_epoch(n))
    }

    pub(crate) fn execute_statement(
        &self,
        stmt: Statement,
        opts: &EngineOptions,
    ) -> Result<Option<QueryResult>> {
        match stmt {
            Statement::CreateTable { name, fields, .. } => {
                if fields.is_empty() {
                    return Err(MosaicError::Unsupported(format!(
                        "CREATE TABLE {name} requires a column list"
                    )));
                }
                self.catalog
                    .write()
                    .create_aux(&name, Table::empty(Schema::new(fields)))?;
                Ok(None)
            }
            Statement::CreatePopulation {
                name,
                global,
                fields,
                source,
            } => {
                let mut cat = self.catalog.write();
                let schema = if !fields.is_empty() {
                    Schema::new(fields)
                } else if let Some((gp, _, cols)) = &source {
                    let gp_pop = cat
                        .population(gp)
                        .ok_or_else(|| MosaicError::Catalog(format!("unknown population {gp}")))?;
                    if cols.is_empty() {
                        Arc::clone(&gp_pop.schema)
                    } else {
                        gp_pop
                            .schema
                            .project(&cols.iter().map(String::as_str).collect::<Vec<_>>())?
                    }
                } else {
                    return Err(MosaicError::Catalog(format!(
                        "population {name} needs attributes or an AS SELECT definition"
                    )));
                };
                cat.create_population(Population {
                    name,
                    schema,
                    global,
                    source: source.map(|(gp, pred, _)| (gp, pred)),
                })?;
                Ok(None)
            }
            Statement::CreateSample {
                name,
                fields,
                population,
                columns,
                predicate,
                mechanism,
            } => {
                let mut cat = self.catalog.write();
                let pop = cat.population(&population).ok_or_else(|| {
                    MosaicError::Catalog(format!("unknown population {population}"))
                })?;
                let schema = if !fields.is_empty() {
                    Schema::new(fields)
                } else if columns.is_empty() {
                    Arc::clone(&pop.schema)
                } else {
                    pop.schema
                        .project(&columns.iter().map(String::as_str).collect::<Vec<_>>())?
                };
                cat.create_sample(Sample {
                    name,
                    population,
                    predicate,
                    mechanism: mechanism.as_ref().map(Mechanism::from),
                    data: empty_table(schema),
                    weights: Vec::new(),
                })?;
                Ok(None)
            }
            Statement::CreateMetadata {
                name,
                population,
                query,
            } => {
                // One write lock for the whole statement: the metadata
                // query runs over an auxiliary table via the executor
                // directly (no engine re-entry), so this cannot deadlock.
                let mut cat = self.catalog.write();
                let pop = match population {
                    Some(p) => p,
                    None => cat.infer_metadata_population(&name).ok_or_else(|| {
                        MosaicError::Catalog(format!(
                            "cannot infer the population for metadata {name}; use CREATE METADATA {name} FOR <population> AS …"
                        ))
                    })?,
                };
                let from = query
                    .from
                    .as_ref()
                    .and_then(mosaic_sql::FromClause::single)
                    .ok_or_else(|| {
                        MosaicError::Execution(
                            "metadata query needs a single FROM table (no joins or aliases)".into(),
                        )
                    })?;
                let src = cat.aux(from).cloned().ok_or_else(|| {
                    MosaicError::Catalog(format!(
                        "metadata queries run over auxiliary tables; unknown table {from}"
                    ))
                })?;
                let result = crate::exec::run_select_partitioned(
                    &query,
                    &src,
                    None,
                    opts.parallelism,
                    opts.optimizer,
                    opts.agg_partitions,
                )?;
                let marginal = marginal_from_table(&result)?;
                cat.create_metadata(MetadataEntry {
                    name,
                    population: pop,
                    marginal,
                })?;
                Ok(None)
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                self.insert(&table, columns.as_deref(), source, opts)?;
                Ok(None)
            }
            Statement::Select(stmt) => {
                // Route through the result cache when the statement
                // binds as a parameterless prepared plan (planning work
                // is the same either way); statements the binder does
                // not cover keep the plain path and its exact errors.
                let cat = self.catalog.read();
                match crate::session::Prepared::bind(&cat, opts, stmt.clone(), "") {
                    Ok(p) if p.param_count() == 0 => {
                        self.select_prepared(&cat, opts, &p, &[]).map(Some)
                    }
                    _ => self
                        .select(&cat, opts, &stmt, QueryPlans::default())
                        .map(Some),
                }
            }
            Statement::Explain(stmt) => {
                let cat = self.catalog.read();
                let lines = crate::explain::render(self, &cat, opts, &stmt)?;
                let table = Table::new(
                    Schema::new(vec![Field::new("plan", DataType::Str)]),
                    vec![Column::from_str(lines)],
                )?;
                Ok(Some(QueryResult {
                    table,
                    visibility: None,
                    notes: Vec::new(),
                }))
            }
            Statement::Drop { name } => {
                self.catalog.write().drop_any(&name)?;
                Ok(None)
            }
        }
    }

    fn insert(
        &self,
        target: &str,
        columns: Option<&[String]>,
        source: InsertSource,
        opts: &EngineOptions,
    ) -> Result<()> {
        // For a SELECT source, run the query under a read lock first —
        // taking the write lock around a SELECT that re-enters the
        // engine would self-deadlock.
        let selected = match &source {
            InsertSource::Select(stmt) => {
                let cat = self.catalog.read();
                Some(self.select(&cat, opts, stmt, QueryPlans::default())?.table)
            }
            InsertSource::Values(_) => None,
        };
        let mut cat = self.catalog.write();
        // Resolve the target schema (aux table or sample).
        let (target_schema, is_sample) = if let Some(t) = cat.aux(target) {
            (Arc::clone(t.schema()), false)
        } else if let Some(s) = cat.sample(target) {
            (Arc::clone(s.data.schema()), true)
        } else if cat.population(target).is_some() {
            return Err(MosaicError::Unsupported(
                "cannot INSERT into a population: population tuples are unknown by definition; ingest into a SAMPLE instead"
                    .into(),
            ));
        } else {
            return Err(MosaicError::Catalog(format!("unknown relation {target}")));
        };
        let rows = match (source, selected) {
            (InsertSource::Values(rows), _) => {
                let mut b = TableBuilder::with_capacity(Arc::clone(&target_schema), rows.len());
                for row in rows {
                    let values: Vec<Value> = row.iter().map(eval_scalar).collect::<Result<_>>()?;
                    b.push_row(arrange_row(&target_schema, columns, values)?)?;
                }
                b.finish()
            }
            (InsertSource::Select(_), Some(result)) => {
                // Re-type row by row so compatible columns coerce.
                let mut b =
                    TableBuilder::with_capacity(Arc::clone(&target_schema), result.num_rows());
                for row in result.rows() {
                    b.push_row(arrange_row(&target_schema, columns, row)?)?;
                }
                b.finish()
            }
            (InsertSource::Select(_), None) => unreachable!("selected above"),
        };
        // Dictionary-encode the ingested string columns: dict is the
        // first-class string representation for every ingest path (CSV,
        // VALUES, INSERT..SELECT), so scans hit the code-level kernels.
        let rows = rows.dict_encoded();
        if is_sample {
            cat.append_to_sample(target, rows)
        } else {
            let existing = cat.aux(target).expect("checked above");
            let merged = if existing.is_empty() {
                rows
            } else {
                existing.concat(&rows)?
            };
            cat.replace_aux(target, merged)
        }
    }

    // ---- SELECT dispatch ----

    /// Run one SELECT through the morsel-driven executor: the prepared
    /// plan when `plans` carries one, a freshly planned (and, per
    /// `opts.optimizer`, optimized) plan otherwise.
    #[allow(clippy::too_many_arguments)]
    fn run_select(
        &self,
        opts: &EngineOptions,
        stmt: &SelectStmt,
        table: &Table,
        weights: Option<&[f64]>,
        threads: usize,
        plan: Option<&PhysicalPlan>,
        params: &[Value],
    ) -> Result<Table> {
        match plan {
            Some(p) => {
                if let Some(w) = weights {
                    if w.len() != table.num_rows() {
                        return Err(MosaicError::Execution(format!(
                            "weight vector length {} != table rows {}",
                            w.len(),
                            table.num_rows()
                        )));
                    }
                }
                p.execute_capped(table, weights, params, threads, opts.agg_partitions)
            }
            None => crate::exec::run_select_partitioned(
                stmt,
                table,
                weights,
                threads,
                opts.optimizer,
                opts.agg_partitions,
            ),
        }
    }

    pub(crate) fn select(
        &self,
        cat: &Catalog,
        opts: &EngineOptions,
        stmt: &SelectStmt,
        plans: QueryPlans<'_>,
    ) -> Result<QueryResult> {
        if plans.plan.is_none() && plans.inner_plan.is_none() {
            let n = stmt.param_count();
            if n > 0 {
                return Err(MosaicError::Param(format!(
                    "statement expects {n} parameter(s); use Session::prepare / execute_prepared"
                )));
            }
        }
        let threads = opts.parallelism;
        let Some(from_clause) = stmt.from.clone() else {
            // SELECT of scalars (no FROM).
            let one_row = Table::new(
                Schema::new(vec![Field::new("dummy", DataType::Int)]),
                vec![Column::from_i64(vec![0])],
            )?;
            let items: Vec<SelectItem> = stmt
                .items
                .iter()
                .filter(|i| !matches!(i, SelectItem::Wildcard))
                .cloned()
                .collect();
            let stmt2 = SelectStmt {
                items,
                ..stmt.clone()
            };
            let table = self.run_select(
                opts,
                &stmt2,
                &one_row,
                None,
                threads,
                plans.plan,
                plans.params,
            )?;
            return Ok(QueryResult {
                table,
                visibility: None,
                notes: Vec::new(),
            });
        };
        if crate::plan::join::needs_scope(stmt, &from_clause) {
            return self.select_scope(cat, opts, stmt, &from_clause, plans);
        }
        let from = from_clause.base.name;
        if cat.population(&from).is_some() {
            return self.query_population(cat, opts, plans, &from, stmt);
        }
        if stmt.visibility.is_some() {
            return Err(MosaicError::Unsupported(
                "visibility levels (CLOSED/SEMI-OPEN/OPEN) apply to population queries only".into(),
            ));
        }
        if let Some(t) = cat.aux(&from) {
            let table = self.run_select(
                opts,
                stmt,
                &t.clone(),
                None,
                threads,
                plans.plan,
                plans.params,
            )?;
            return Ok(QueryResult {
                table,
                visibility: None,
                notes: Vec::new(),
            });
        }
        if let Some(s) = cat.sample(&from) {
            // Expose the engine-managed weights as a `weight` column.
            let table = table_with_weight_column(&s.data, &s.weights)?;
            let table =
                self.run_select(opts, stmt, &table, None, threads, plans.plan, plans.params)?;
            return Ok(QueryResult {
                table,
                visibility: None,
                notes: vec![format!("raw sample scan of {}", s.name)],
            });
        }
        Err(unknown_relation(cat, &from))
    }

    /// Multi-relation (or aliased) FROM: resolve every relation —
    /// population sides through their visibility pipeline — bind the
    /// scope, and execute. Joins run the hash-join path; a population
    /// side under OPEN runs the generate+query replicate loop over the
    /// whole joined plan; a lone aliased relation runs the ordinary
    /// single-table pipeline.
    fn select_scope(
        &self,
        cat: &Catalog,
        opts: &EngineOptions,
        stmt: &SelectStmt,
        from: &mosaic_sql::FromClause,
        plans: QueryPlans<'_>,
    ) -> Result<QueryResult> {
        let (infos, vis) = resolve_scope(cat, opts.default_visibility, from, stmt.visibility)?;
        let threads = opts.parallelism;
        let mut notes = Vec::new();
        if !from.has_joins() {
            // A lone aliased relation: rewrite qualified references and
            // run the ordinary single-table pipeline (populations were
            // rejected by resolve_scope).
            let info = infos.into_iter().next().expect("one relation");
            let table = scope_table(cat, opts, &info, vis, &mut notes)?;
            let rewritten = crate::plan::join::bind_single(stmt, info.rel)?;
            let table = self.run_select(
                opts,
                &rewritten,
                &table,
                None,
                threads,
                plans.plan,
                plans.params,
            )?;
            return Ok(QueryResult {
                table,
                visibility: None,
                notes,
            });
        }
        let rels: Vec<crate::plan::join::ScopeRel> = infos.iter().map(|i| i.rel.clone()).collect();
        // Aggregates over a population-containing join get the §5.3
        // weighted rewrite (the joined `weight` column feeds SUM(w·x));
        // CLOSED scopes and plain sample joins keep raw aggregates with
        // `weight` as an ordinary data column.
        let weighted_agg = vis.is_some_and(|v| v != Visibility::Closed);
        // An OPEN population side is generated per replicate, not
        // materialized once (resolve_scope guarantees at most one).
        let open_idx = if vis == Some(Visibility::Open) {
            infos
                .iter()
                .position(|i| matches!(i.source, ScopeSource::Population { .. }))
        } else {
            None
        };
        let mut tables: Vec<Option<Table>> = Vec::with_capacity(infos.len());
        for (i, info) in infos.iter().enumerate() {
            if Some(i) == open_idx {
                tables.push(None);
            } else {
                tables.push(Some(scope_table(cat, opts, info, vis, &mut notes)?));
            }
        }
        let join_sym = match from.joins[0].kind {
            mosaic_sql::JoinKind::Inner => "⋈",
            mosaic_sql::JoinKind::LeftOuter => "⟕",
        };
        notes.push(format!(
            "hash equi-join of {} {} {}",
            rels[0].name,
            join_sym,
            rels.get(1).map(|r| r.name.as_str()).unwrap_or("?")
        ));
        // When both sides of a reweighted (SEMI-OPEN/OPEN) join carry
        // correction weights, the combined weight is their product —
        // an independence assumption — raked by IPF against every
        // declared marginal that projects onto the joined schema.
        let recal_marginals: Vec<Marginal> =
            if weighted_agg && infos.iter().filter(|i| i.rel.weighted).count() > 1 {
                let mut cands = Vec::new();
                let mut srcs: Vec<String> = Vec::new();
                for info in &infos {
                    if !info.rel.weighted {
                        continue;
                    }
                    let pop_name = match &info.source {
                        ScopeSource::Sample { population } => population.clone(),
                        ScopeSource::Population { pop, .. } => pop.name.clone(),
                        ScopeSource::Aux => continue,
                    };
                    let metas = cat.metadata_for(&pop_name);
                    if !metas.is_empty() && !srcs.contains(&pop_name) {
                        srcs.push(pop_name.clone());
                    }
                    for m in &metas {
                        if !cands.contains(&m.marginal) {
                            cands.push(m.marginal.clone());
                        }
                    }
                }
                if cands.is_empty() {
                    notes.push(
                        "combined weight = product of per-side weights (independence \
                         assumption; no declared marginals to re-calibrate against)"
                            .into(),
                    );
                } else {
                    notes.push(format!(
                        "combined weight = product of per-side weights, IPF re-calibrated \
                         against {} declared marginal(s) of {}",
                        cands.len(),
                        srcs.join(", ")
                    ));
                }
                cands
            } else {
                Vec::new()
            };
        let post_join_fn: Option<Box<dyn Fn(Table) -> Result<Table> + Sync>> =
            if recal_marginals.is_empty() {
                None
            } else {
                let binners = opts.binners.clone();
                let ipf_cfg = opts.ipf.clone();
                Some(Box::new(move |joined: Table| {
                    recalibrate_joined_weights(joined, &recal_marginals, &binners, &ipf_cfg)
                }))
            };
        let post_join = post_join_fn.as_deref();
        let Some(pi) = open_idx else {
            let t0 = tables[0].take().expect("fixed side");
            let t1 = tables[1].take().expect("fixed side");
            let table = match plans.plan {
                Some(plan) => plan.execute_join_capped_with(
                    &t0,
                    &t1,
                    plans.params,
                    threads,
                    opts.agg_partitions,
                    post_join,
                )?,
                None => {
                    let bound = crate::plan::join::bind_join(stmt, rels, weighted_agg)?;
                    let planned = crate::plan::plan_logical(bound.logical, opts.optimizer, None);
                    planned.physical.execute_join_capped_with(
                        &t0,
                        &t1,
                        plans.params,
                        threads,
                        opts.agg_partitions,
                        post_join,
                    )?
                }
            };
            return Ok(QueryResult {
                table,
                visibility: vis,
                notes,
            });
        };
        // ---- OPEN join: replicate loop over the joined plan ----
        let ScopeSource::Population { pop, sample, view } = &infos[pi].source else {
            unreachable!("open_idx points at a population side");
        };
        let om = self.open_model(cat, opts, pop, sample, view.as_ref(), &mut notes)?;
        let fixed = tables[1 - pi].take().expect("other side fixed");
        let has_agg = crate::plan::has_aggregate_shape(stmt);
        let parallelism = opts.parallelism.max(1);
        // A prepared statement arrives already scope-rewritten (the
        // session stores `bound.stmt`), so use it as-is; an ad-hoc
        // statement binds here.
        let full_plan_owned;
        let (full_stmt, full_plan): (SelectStmt, &PhysicalPlan) = match plans.plan {
            Some(p) => (stmt.clone(), p),
            None => {
                let bound = crate::plan::join::bind_join(stmt, rels.clone(), weighted_agg)?;
                full_plan_owned =
                    crate::plan::plan_logical(bound.logical, opts.optimizer, None).physical;
                (bound.stmt, &full_plan_owned)
            }
        };
        // One replicate: generate the population side, expose its
        // uniform weight as the `weight` column, and run the joined
        // plan. Returns the answer plus the generated row count.
        let replicate =
            |plan: &PhysicalPlan, run: usize, threads: usize| -> Result<(Table, usize)> {
                let (generated, weight) = om.generate(open_run_seed(opts.open.seed, run))?;
                let rows = generated.num_rows();
                let gen = table_with_weight_column(&generated, &vec![weight; rows])?;
                let (lt, rt) = if pi == 0 {
                    (&gen, &fixed)
                } else {
                    (&fixed, &gen)
                };
                plan.execute_join_capped_with(
                    lt,
                    rt,
                    plans.params,
                    threads,
                    opts.agg_partitions,
                    post_join,
                )
                .map(|t| (t, rows))
            };
        if !has_agg {
            // Non-aggregate OPEN join: one generated sample IS the
            // population side (a representative population).
            let (table, rows) = replicate(full_plan, 0, parallelism)?;
            notes.push(format!(
                "non-aggregate OPEN join answered from one generated sample of {rows} rows"
            ));
            return Ok(QueryResult {
                table,
                visibility: vis,
                notes,
            });
        }
        // Aggregate: answer the ORDER BY/LIMIT-stripped statement per
        // replicate, combine, then order/limit the combined answer —
        // same protocol as the single-population OPEN loop.
        let inner_plan_owned;
        let (inner_stmt, inner_plan): (SelectStmt, &PhysicalPlan) = match plans.inner_plan {
            Some(p) => (
                SelectStmt {
                    order_by: Vec::new(),
                    limit: None,
                    ..full_stmt.clone()
                },
                p,
            ),
            None => {
                let inner_src = SelectStmt {
                    order_by: Vec::new(),
                    limit: None,
                    ..stmt.clone()
                };
                let inner_bound = crate::plan::join::bind_join(&inner_src, rels, weighted_agg)?;
                inner_plan_owned =
                    crate::plan::plan_logical(inner_bound.logical, opts.optimizer, None).physical;
                (inner_bound.stmt, &inner_plan_owned)
            }
        };
        let runs = opts.open.num_generated.max(1);
        let workers = runs.min(parallelism);
        let inner_threads = if workers > 1 { 1 } else { parallelism };
        let per_run: Vec<(Table, usize)> =
            crate::plan::parallel::run_ordered(runs, workers, |run| {
                replicate(inner_plan, run, inner_threads)
            })
            .into_iter()
            .collect::<Result<_>>()?;
        notes.push(format!(
            "combined {} generated samples of {} rows across {} worker thread(s) (population size {:.0})",
            runs, om.per_sample, workers, om.pop_size
        ));
        let combined =
            combine_open_runs(&inner_stmt, per_run.into_iter().map(|(t, _)| t).collect())?;
        let table = apply_order_limit(&full_stmt, combined, plans.params)?;
        Ok(QueryResult {
            table,
            visibility: vis,
            notes,
        })
    }

    // ---- population queries (paper §4) ----

    fn query_population(
        &self,
        cat: &Catalog,
        opts: &EngineOptions,
        plans: QueryPlans<'_>,
        pop_name: &str,
        stmt: &SelectStmt,
    ) -> Result<QueryResult> {
        let visibility = stmt.visibility.unwrap_or(opts.default_visibility);
        let pop = cat.population(pop_name).expect("caller checked").clone();
        let (sample, view_predicate) = choose_sample(cat, &pop)?;
        let mut notes = vec![format!(
            "population {} via sample {} ({} rows), visibility {}",
            pop.name,
            sample.name,
            sample.len(),
            visibility
        )];
        let threads = opts.parallelism;
        let table = match visibility {
            Visibility::Closed => {
                // LAV-style: samples used as-is, no debiasing.
                let data = apply_view(&sample.data, view_predicate.as_ref())?;
                self.run_select(opts, stmt, &data, None, threads, plans.plan, plans.params)?
            }
            Visibility::SemiOpen => {
                let (data, weights, mut w_notes) =
                    semi_open_weights(cat, opts, &pop, &sample, view_predicate.as_ref())?;
                notes.append(&mut w_notes);
                self.run_select(
                    opts,
                    stmt,
                    &data,
                    Some(&weights),
                    threads,
                    plans.plan,
                    plans.params,
                )?
            }
            Visibility::Open => {
                let (table, mut o_notes) = self.open_answer(
                    cat,
                    opts,
                    plans,
                    &pop,
                    &sample,
                    view_predicate.as_ref(),
                    stmt,
                )?;
                notes.append(&mut o_notes);
                table
            }
        };
        Ok(QueryResult {
            table,
            visibility: Some(visibility),
            notes,
        })
    }

    /// Resolve metadata, choose training data, and fit (or fetch from
    /// the epoch-keyed cache) the generative model for one OPEN
    /// population side — shared by single-population OPEN answers and
    /// the OPEN side of an open-world join.
    fn open_model(
        &self,
        cat: &Catalog,
        opts: &EngineOptions,
        pop: &Population,
        sample: &Sample,
        view: Option<&Expr>,
        notes: &mut Vec<String>,
    ) -> Result<OpenModel> {
        // Metadata: prefer the query population's, else the GP's.
        let (marginals, meta_is_gp): (Vec<Marginal>, bool) = {
            let own = cat.metadata_for(&pop.name);
            if !own.is_empty() {
                (own.iter().map(|m| m.marginal.clone()).collect(), false)
            } else if let Some((gp, _)) = &pop.source {
                let m = cat.metadata_for(gp);
                if m.is_empty() {
                    return Err(MosaicError::Execution(format!(
                        "OPEN query over {} requires population metadata",
                        pop.name
                    )));
                }
                (m.iter().map(|x| x.marginal.clone()).collect(), true)
            } else {
                return Err(MosaicError::Execution(format!(
                    "OPEN query over {} requires population metadata",
                    pop.name
                )));
            }
        };
        // Training data: if the metadata describes the query population,
        // train on the view-filtered sample; if it describes the GP, train
        // on the full sample and filter generated tuples afterwards.
        let (train_data, train_init) = if meta_is_gp {
            (sample.data.clone(), sample.weights.clone())
        } else {
            apply_view_weighted(&sample.data, &sample.weights, view)?
        };
        if train_data.is_empty() {
            return Err(MosaicError::Execution(
                "no sample rows available to train the generative model".into(),
            ));
        }
        let pop_size = marginals.iter().map(|m| m.total()).fold(0.0f64, f64::max);
        // The cache key covers the backend *configuration*, not just its
        // kind: sessions overriding the OPEN backend must not be handed
        // a model fitted under someone else's hyper-parameters.
        let cache_key = format!(
            "{}|{}|{:016x}",
            pop.name.to_ascii_lowercase(),
            opts.open.backend.id(),
            backend_fingerprint(opts)
        );
        let epoch = cat.epoch;
        let model: Arc<dyn GenerativeModel> = {
            let mut cache = self.model_cache.lock();
            match cache.get(&cache_key) {
                Some((e, m)) if *e == epoch => {
                    notes.push("generative model cache hit".into());
                    Arc::clone(m)
                }
                _ => {
                    let mut model: Box<dyn GenerativeModel> = match &opts.open.backend {
                        OpenBackend::Swg(cfg) => Box::new(SwgModel::new(cfg.clone())),
                        OpenBackend::BayesNet(cfg) => Box::new(BnModel::new(cfg.clone())),
                    };
                    // Explicit backends want IPF weights; compute them when
                    // possible (ignore failure: marginals may not be IPF-able).
                    let ipf_weights = Ipf::new(&train_data, &marginals, &opts.binners)
                        .map(|ipf| ipf.fit(Some(&train_init), &opts.ipf).0)
                        .unwrap_or_else(|_| train_init.clone());
                    model.fit(&train_data, &ipf_weights, &marginals)?;
                    notes.push(format!(
                        "trained {} on {} rows with {} marginal(s)",
                        model.name(),
                        train_data.num_rows(),
                        marginals.len()
                    ));
                    let model: Arc<dyn GenerativeModel> = Arc::from(model);
                    // Evict models fitted at older catalog epochs: the
                    // epoch only grows, so they can never be served
                    // again — without this, every DDL statement strands
                    // its era's fitted models in the map forever.
                    cache.retain(|_, (e, _)| *e == epoch);
                    cache.insert(cache_key, (epoch, Arc::clone(&model)));
                    model
                }
            }
        };
        let per_sample = opts
            .open
            .rows_per_sample
            .unwrap_or_else(|| train_data.num_rows());
        Ok(OpenModel {
            model,
            meta_is_gp,
            view: view.cloned(),
            pop_size,
            per_sample,
        })
    }

    /// OPEN answering (paper §4.2, §5.3 protocol): train a generative
    /// model, draw `num_generated` samples, answer the query on each,
    /// keep groups present in every answer, average the aggregates, and
    /// uniformly reweight to the population size implied by the metadata.
    #[allow(clippy::too_many_arguments)]
    fn open_answer(
        &self,
        cat: &Catalog,
        opts: &EngineOptions,
        plans: QueryPlans<'_>,
        pop: &Population,
        sample: &Sample,
        view: Option<&Expr>,
        stmt: &SelectStmt,
    ) -> Result<(Table, Vec<String>)> {
        let mut notes = Vec::new();
        let om = self.open_model(cat, opts, pop, sample, view, &mut notes)?;
        let per_sample = om.per_sample;
        let pop_size = om.pop_size;
        let runs = opts.open.num_generated.max(1);
        let has_agg = crate::plan::has_aggregate_shape(stmt);
        // The engine owns one thread budget: when several replicates run
        // concurrently, each runs its inner query single-threaded; a lone
        // replicate hands the whole budget to the morsel executor. Either
        // way at most `parallelism` threads are busy — the replicate pool
        // and the executor pool never multiply.
        let parallelism = opts.parallelism.max(1);
        // One replicate: generate, view-filter, uniformly reweight to the
        // population size, answer the (inner) query. Returns the answer
        // plus the post-view generated row count (for diagnostics).
        let replicate = |stmt: &SelectStmt,
                         plan: Option<&PhysicalPlan>,
                         run: usize,
                         threads: usize|
         -> Result<(Table, usize)> {
            let (generated, weight) = om.generate(open_run_seed(opts.open.seed, run))?;
            let weights = vec![weight; generated.num_rows()];
            let rows = generated.num_rows();
            self.run_select(
                opts,
                stmt,
                &generated,
                Some(&weights),
                threads,
                plan,
                plans.params,
            )
            .map(|t| (t, rows))
        };
        if !has_agg {
            // Non-aggregate OPEN query: a single generated sample IS the
            // answer (a representative population).
            let (out, rows) = replicate(stmt, plans.plan, 0, parallelism)?;
            notes.push(format!(
                "non-aggregate OPEN query answered from one generated sample of {rows} rows"
            ));
            return Ok((out, notes));
        }
        // Inner statement: same body, no ORDER BY / LIMIT (applied after
        // combining).
        let inner = SelectStmt {
            order_by: Vec::new(),
            limit: None,
            ..stmt.clone()
        };
        // The replicates are independent and the fitted model is shared
        // immutably, so run the paper's `num_generated = 10` loop on a
        // bounded worker pool: idle workers pull the next run index off a
        // shared counter. Seeding per run index and collecting by run
        // index keep the combined answer identical to serial execution.
        let workers = runs.min(parallelism);
        let inner_threads = if workers > 1 { 1 } else { parallelism };
        let per_run: Vec<(Table, usize)> =
            crate::plan::parallel::run_ordered(runs, workers, |run| {
                replicate(&inner, plans.inner_plan, run, inner_threads)
            })
            .into_iter()
            .collect::<Result<_>>()?;
        notes.push(format!(
            "combined {} generated samples of {} rows across {} worker thread(s) (population size {:.0})",
            runs, per_sample, workers, pop_size
        ));
        let combined = combine_open_runs(&inner, per_run.into_iter().map(|(t, _)| t).collect())?;
        let combined = apply_order_limit(stmt, combined, plans.params)?;
        Ok((combined, notes))
    }
}

/// A fitted generative model plus the replicate parameters of the OPEN
/// loop (paper §4.2), produced by [`MosaicEngine::open_model`].
struct OpenModel {
    model: Arc<dyn GenerativeModel>,
    /// Whether the marginals (and thus the model) describe the GP: the
    /// view predicate then filters *generated* tuples.
    meta_is_gp: bool,
    /// The population's defining predicate over the GP, if any.
    view: Option<Expr>,
    /// Population size implied by the metadata (max marginal total).
    pop_size: f64,
    /// Rows drawn per replicate.
    per_sample: usize,
}

impl OpenModel {
    /// Generate one replicate: draw `per_sample` rows, view-filter when
    /// the model was trained on the GP, and return the per-row uniform
    /// weight — population size over draw count, 0 for an empty draw.
    fn generate(&self, seed: u64) -> Result<(Table, f64)> {
        let generated = self.model.generate(self.per_sample, seed)?;
        let generated = if self.meta_is_gp {
            apply_view(&generated, self.view.as_ref())?
        } else {
            generated
        };
        let weight = if generated.is_empty() {
            0.0
        } else {
            self.pop_size / self.per_sample as f64
        };
        Ok((generated, weight))
    }
}

/// Deterministic per-replicate seed: a splitmix-style multiply of the
/// base seed, offset by the run index, so run `k` draws the same rows
/// whichever worker thread executes it.
fn open_run_seed(base: u64, run: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(run as u64 + 1)
}

/// Rake the joined `weight` column — the product of per-side correction
/// weights, an independence assumption — against the declared marginals
/// that project onto the joined schema. A marginal attribute resolves to
/// the column of that exact name, or — when the join qualified colliding
/// names into `binding.column` form — to the leftmost `*.attr` column
/// (for equi-join keys both sides agree, and the left side is never
/// NULL-extended). Marginals naming attributes the join projected away
/// are skipped; with none applicable the product stands as-is.
fn recalibrate_joined_weights(
    joined: Table,
    marginals: &[Marginal],
    binners: &HashMap<String, Binner>,
    ipf: &IpfConfig,
) -> Result<Table> {
    let fields = joined.schema().fields();
    let resolve = |attr: &str| -> Option<usize> {
        fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(attr))
            .or_else(|| {
                fields.iter().position(|f| {
                    f.name
                        .rsplit_once('.')
                        .is_some_and(|(_, col)| col.eq_ignore_ascii_case(attr))
                })
            })
    };
    // The marginals that fully resolve, plus the projected view IPF
    // rakes over: each resolved attribute under its unqualified name.
    let mut applicable: Vec<Marginal> = Vec::new();
    let mut view_cols: Vec<(String, usize)> = Vec::new();
    for m in marginals {
        let Some(idxs) = m
            .attrs()
            .iter()
            .map(|a| resolve(a))
            .collect::<Option<Vec<usize>>>()
        else {
            continue;
        };
        if applicable.contains(m) {
            continue; // both sides declared the same marginal
        }
        for (attr, &idx) in m.attrs().iter().zip(&idxs) {
            if !view_cols.iter().any(|(n, _)| n.eq_ignore_ascii_case(attr)) {
                view_cols.push((attr.clone(), idx));
            }
        }
        applicable.push(m.clone());
    }
    if applicable.is_empty() || joined.is_empty() {
        return Ok(joined);
    }
    let widx = fields
        .iter()
        .position(|f| f.name.eq_ignore_ascii_case("weight"))
        .ok_or_else(|| {
            MosaicError::Execution(
                "combined-weight re-calibration requires the joined weight column".into(),
            )
        })?;
    let wcol = joined.column(widx);
    // NULL-extended (LEFT OUTER) rows enter IPF with weight 0 and stay
    // there; their output weight keeps the NULL validity.
    let init: Vec<f64> = (0..wcol.len())
        .map(|i| wcol.f64_at(i).unwrap_or(0.0))
        .collect();
    let view = Table::new(
        Schema::new(
            view_cols
                .iter()
                .map(|(n, i)| Field::new(n, fields[*i].data_type))
                .collect(),
        ),
        view_cols
            .iter()
            .map(|(_, i)| joined.column(*i).clone())
            .collect(),
    )?;
    let (weights, _report) = Ipf::new(&view, &applicable, binners)?.fit(Some(&init), ipf);
    let validity = wcol.validity().cloned();
    let mut columns = joined.columns().to_vec();
    columns[widx] = Column::from_f64_opt(weights, validity);
    Table::new(Arc::clone(joined.schema()), columns).map_err(Into::into)
}

/// The unknown-relation error, listing what the catalog does have so a
/// typo'd FROM is a one-glance fix.
pub(crate) fn unknown_relation(cat: &Catalog, name: &str) -> MosaicError {
    let names = cat.relation_names();
    if names.is_empty() {
        MosaicError::Catalog(format!(
            "unknown relation {name} (the catalog has no relations yet)"
        ))
    } else {
        MosaicError::Catalog(format!(
            "unknown relation {name}; available relations: {}",
            names.join(", ")
        ))
    }
}

/// How a scope relation sources its rows at execution time.
pub(crate) enum ScopeSource {
    /// Auxiliary table: scans as-is.
    Aux,
    /// Sample: scans with the engine-managed `weight` column exposed.
    Sample {
        /// The population the sample was declared on (its metadata
        /// feeds the combined-weight IPF re-calibration).
        population: String,
    },
    /// Population side of an open-world join, answered through its
    /// chosen sample under the statement's effective visibility.
    /// (Boxed: a `Sample` owns its full data table, dwarfing the other
    /// variants.)
    Population {
        /// The population.
        pop: Box<Population>,
        /// The chosen sample (paper §4 assumption 2).
        sample: Box<Sample>,
        /// The population's defining predicate when the sample belongs
        /// to the GP.
        view: Option<Expr>,
    },
}

/// One resolved relation of a multi-relation FROM scope.
pub(crate) struct ScopeRelInfo {
    /// The bound scope relation (binding, schema, weightedness).
    pub rel: crate::plan::join::ScopeRel,
    /// Where its rows come from.
    pub source: ScopeSource,
    /// Current row count (samples: sample size) — display only.
    pub rows: usize,
}

/// Resolve a multi-relation FROM clause against the catalog,
/// **population-aware**: auxiliary tables scan as-is, samples scan with
/// the engine-managed `weight` column exposed (and are marked
/// weighted), and populations resolve through their chosen sample under
/// the statement's visibility — CLOSED sides scan the raw sample
/// unweighted, SEMI-OPEN and OPEN sides expose correction weights.
///
/// Returns the resolved relations plus the scope's effective visibility:
/// `Some(vis)` when a population is in scope (the open-world join
/// pipeline), `None` for a plain table/sample scope. Rejects a
/// visibility clause on a population-free scope, a population outside a
/// JOIN, and an OPEN scope with more than one population side — each
/// with an error naming the offending relations.
pub(crate) fn resolve_scope(
    cat: &Catalog,
    default_vis: Visibility,
    from: &mosaic_sql::FromClause,
    stmt_vis: Option<Visibility>,
) -> Result<(Vec<ScopeRelInfo>, Option<Visibility>)> {
    use crate::plan::join::ScopeRel;
    let pops: Vec<String> = from
        .relations()
        .filter(|t| cat.population(&t.name).is_some())
        .map(|t| t.name.clone())
        .collect();
    if pops.is_empty() {
        if let Some(vis) = stmt_vis {
            let rels: Vec<String> = from.relations().map(|t| t.name.clone()).collect();
            return Err(MosaicError::Unsupported(format!(
                "visibility levels (CLOSED/SEMI-OPEN/OPEN) apply to population queries only: \
                 SELECT {vis} over ({}) references no population",
                rels.join(", ")
            )));
        }
    } else if !from.has_joins() {
        return Err(MosaicError::Unsupported(format!(
            "population {} can appear in a multi-relation FROM only as a JOIN side; \
             query the population directly or join its sample",
            pops[0]
        )));
    }
    let vis = stmt_vis.unwrap_or(default_vis);
    if !pops.is_empty() && vis == Visibility::Open && pops.len() > 1 {
        return Err(MosaicError::Unsupported(format!(
            "OPEN join of populations {} and {} is not supported: each OPEN replicate \
             generates rows for exactly one population side; query one side CLOSED or \
             SEMI-OPEN, or join a declared sample instead",
            pops[0], pops[1]
        )));
    }
    let mut infos = Vec::new();
    for tref in from.relations() {
        if let Some(pop) = cat.population(&tref.name) {
            let pop = pop.clone();
            let (sample, view) = choose_sample(cat, &pop)?;
            let (schema, weighted) = match vis {
                Visibility::Closed => (Arc::clone(sample.data.schema()), false),
                Visibility::SemiOpen | Visibility::Open => (sample_scan_schema(&sample), true),
            };
            infos.push(ScopeRelInfo {
                rel: ScopeRel {
                    name: pop.name.clone(),
                    binding: tref.binding().to_string(),
                    schema,
                    weighted,
                },
                rows: sample.len(),
                source: ScopeSource::Population {
                    pop: Box::new(pop),
                    sample: Box::new(sample),
                    view,
                },
            });
        } else if let Some(t) = cat.aux(&tref.name) {
            infos.push(ScopeRelInfo {
                rel: ScopeRel {
                    name: tref.name.clone(),
                    binding: tref.binding().to_string(),
                    schema: Arc::clone(t.schema()),
                    weighted: false,
                },
                rows: t.num_rows(),
                source: ScopeSource::Aux,
            });
        } else if let Some(s) = cat.sample(&tref.name) {
            infos.push(ScopeRelInfo {
                rel: ScopeRel {
                    name: s.name.clone(),
                    binding: tref.binding().to_string(),
                    schema: sample_scan_schema(s),
                    weighted: true,
                },
                rows: s.len(),
                source: ScopeSource::Sample {
                    population: s.population.clone(),
                },
            });
        } else {
            return Err(unknown_relation(cat, &tref.name));
        }
    }
    Ok((infos, if pops.is_empty() { None } else { Some(vis) }))
}

/// Materialize one resolved scope relation's table (non-OPEN sides: the
/// OPEN replicate loop generates its side per run instead). SEMI-OPEN
/// population sides run the full §4.1 reweighting pipeline and expose
/// the weights as the `weight` column.
fn scope_table(
    cat: &Catalog,
    opts: &EngineOptions,
    info: &ScopeRelInfo,
    vis: Option<Visibility>,
    notes: &mut Vec<String>,
) -> Result<Table> {
    match &info.source {
        ScopeSource::Aux => Ok(cat.aux(&info.rel.name).expect("resolved above").clone()),
        ScopeSource::Sample { .. } => {
            let s = cat.sample(&info.rel.name).expect("resolved above");
            notes.push(format!(
                "raw sample scan of {} (weights exposed as column `weight`)",
                s.name
            ));
            table_with_weight_column(&s.data, &s.weights)
        }
        ScopeSource::Population { pop, sample, view } => {
            match vis.expect("population sides carry a visibility") {
                Visibility::Closed => {
                    notes.push(format!(
                        "population {} via sample {} ({} rows), CLOSED side",
                        pop.name,
                        sample.name,
                        sample.len()
                    ));
                    apply_view(&sample.data, view.as_ref())
                }
                Visibility::SemiOpen => {
                    notes.push(format!(
                        "population {} via sample {} ({} rows), SEMI-OPEN side",
                        pop.name,
                        sample.name,
                        sample.len()
                    ));
                    let (data, weights, mut w_notes) =
                        semi_open_weights(cat, opts, pop, sample, view.as_ref())?;
                    notes.append(&mut w_notes);
                    table_with_weight_column(&data, &weights)
                }
                Visibility::Open => unreachable!("OPEN sides generate per replicate"),
            }
        }
    }
}

/// Pick "a single, optimal sample" (paper §4 assumption 2): prefer
/// samples declared on the query population, falling back to the GP's
/// samples (with the population's defining predicate as a view);
/// largest sample wins.
pub(crate) fn choose_sample(cat: &Catalog, pop: &Population) -> Result<(Sample, Option<Expr>)> {
    let own: Vec<&Sample> = cat.samples_for(&pop.name);
    if let Some(best) = own.iter().max_by_key(|s| s.len()) {
        if !best.is_empty() {
            return Ok(((*best).clone(), None));
        }
    }
    if let Some((gp, pred)) = &pop.source {
        let gp_samples = cat.samples_for(gp);
        if let Some(best) = gp_samples.iter().max_by_key(|s| s.len()) {
            if !best.is_empty() {
                return Ok(((*best).clone(), pred.clone()));
            }
        }
    }
    Err(MosaicError::Execution(format!(
        "no non-empty sample available for population {}",
        pop.name
    )))
}

/// SEMI-OPEN weighting (paper §4.1): inverse-probability weights when
/// the mechanism is known, IPF against the metadata otherwise.
/// Returns the (possibly view-filtered) sample data and its weights.
fn semi_open_weights(
    cat: &Catalog,
    opts: &EngineOptions,
    pop: &Population,
    sample: &Sample,
    view: Option<&Expr>,
) -> Result<(Table, Vec<f64>, Vec<String>)> {
    let mut notes = Vec::new();
    if let Some(mechanism) = &sample.mechanism {
        // Known mechanism: weight = 1 / Pr_S(t).
        let weights = mechanism_weights(cat, sample, mechanism, &mut notes)?;
        let (data, weights) = apply_view_weighted(&sample.data, &weights, view)?;
        return Ok((data, weights, notes));
    }
    // Unknown mechanism: IPF. Prefer metadata on the query population
    // (reweight the view directly — the more accurate bottom path of
    // Fig. 3); otherwise reweight to the GP and treat the population
    // as a view (left path).
    let own_meta = cat.metadata_for(&pop.name);
    if !own_meta.is_empty() {
        let (data, init) = apply_view_weighted(&sample.data, &sample.weights, view)?;
        let marginals: Vec<Marginal> = own_meta.iter().map(|m| m.marginal.clone()).collect();
        let ipf = Ipf::new(&data, &marginals, &opts.binners)?;
        let (weights, report) = ipf.fit(Some(&init), &opts.ipf);
        notes.push(format!(
            "IPF vs {} marginal(s) of {}: {} iterations, max rel err {:.2e}{}",
            marginals.len(),
            pop.name,
            report.iterations,
            report.max_rel_error,
            if report.converged {
                ""
            } else {
                " (not converged)"
            },
        ));
        return Ok((data, weights, notes));
    }
    if let Some((gp, _)) = &pop.source {
        let gp_meta = cat.metadata_for(gp);
        if !gp_meta.is_empty() {
            let marginals: Vec<Marginal> = gp_meta.iter().map(|m| m.marginal.clone()).collect();
            let ipf = Ipf::new(&sample.data, &marginals, &opts.binners)?;
            let (weights, report) = ipf.fit(Some(&sample.weights), &opts.ipf);
            notes.push(format!(
                "IPF vs {} marginal(s) of GP {gp}: {} iterations, max rel err {:.2e}",
                marginals.len(),
                report.iterations,
                report.max_rel_error
            ));
            let (data, weights) = apply_view_weighted(&sample.data, &weights, view)?;
            return Ok((data, weights, notes));
        }
    }
    Err(MosaicError::Execution(format!(
        "SEMI-OPEN query over {} needs either a known sampling mechanism or population metadata (CREATE METADATA …)",
        pop.name
    )))
}

fn mechanism_weights(
    cat: &Catalog,
    sample: &Sample,
    mechanism: &Mechanism,
    notes: &mut Vec<String>,
) -> Result<Vec<f64>> {
    let n = sample.len();
    match mechanism {
        Mechanism::Uniform { percent } => {
            let w = 100.0 / percent;
            notes.push(format!(
                "known UNIFORM mechanism: inverse-probability weight {w:.3}"
            ));
            Ok(vec![w; n])
        }
        Mechanism::Stratified { attr, percent } => {
            // Use a 1-D marginal over the stratification attribute to
            // compute N_h / n_h; fall back to 100/percent.
            let meta = cat
                .metadata_for(&sample.population)
                .into_iter()
                .find(|m| m.marginal.dim() == 1 && m.marginal.covers(attr));
            let col = sample.data.column_by_name(attr)?;
            match meta {
                Some(m) => {
                    let mut counts: HashMap<Value, f64> = HashMap::new();
                    for v in col.iter() {
                        *counts.entry(v).or_insert(0.0) += 1.0;
                    }
                    let mut weights = Vec::with_capacity(n);
                    for row in 0..n {
                        let v = col.value(row);
                        let n_h = counts.get(&v).copied().unwrap_or(1.0);
                        let cap_n_h = m.marginal.get(&[v]).unwrap_or(0.0);
                        weights.push(if cap_n_h > 0.0 { cap_n_h / n_h } else { 0.0 });
                    }
                    notes.push(format!(
                        "known STRATIFIED mechanism on {attr}: per-stratum N_h/n_h from metadata {}",
                        m.name
                    ));
                    Ok(weights)
                }
                None => {
                    let w = 100.0 / percent;
                    notes.push(format!(
                        "known STRATIFIED mechanism on {attr} but no marginal over it; falling back to uniform weight {w:.3}"
                    ));
                    Ok(vec![w; n])
                }
            }
        }
    }
}

/// EXPLAIN needs the same mechanism-vs-IPF decision the SEMI-OPEN
/// pipeline makes; expose a description of it without computing weights.
pub(crate) fn describe_semi_open(cat: &Catalog, pop: &Population, sample: &Sample) -> String {
    if let Some(mechanism) = &sample.mechanism {
        return match mechanism {
            Mechanism::Uniform { percent } => {
                format!("inverse-probability weights (known UNIFORM mechanism, {percent}%)")
            }
            Mechanism::Stratified { attr, percent } => format!(
                "inverse-probability weights (known STRATIFIED mechanism on {attr}, {percent}%)"
            ),
        };
    }
    let own_meta = cat.metadata_for(&pop.name);
    if !own_meta.is_empty() {
        return format!(
            "IPF reweighting against {} marginal(s) of {}",
            own_meta.len(),
            pop.name
        );
    }
    if let Some((gp, _)) = &pop.source {
        let gp_meta = cat.metadata_for(gp);
        if !gp_meta.is_empty() {
            return format!(
                "IPF reweighting against {} marginal(s) of GP {gp}",
                gp_meta.len()
            );
        }
    }
    "no known mechanism or metadata — execution would fail".into()
}

/// Why a statement cannot participate in the result cache, or `None`
/// when it is eligible. The only ineligible shape today: OPEN without an
/// explicitly pinned seed — its results are only reproducible when the
/// seed is fixed by the user, so caching would freeze one draw of a
/// deliberately re-randomized process.
pub(crate) fn result_cache_ineligibility(
    opts: &EngineOptions,
    vis: Visibility,
) -> Option<&'static str> {
    (vis == Visibility::Open && !opts.open_seed_explicit).then_some("OPEN without an explicit seed")
}

/// A stable rendering of the model-relevant options for the fingerprint:
/// everything beyond the plan that shapes SEMI-OPEN/OPEN results. CLOSED
/// queries consult none of it and hash `None`.
pub(crate) fn model_config_string(opts: &EngineOptions, vis: Visibility) -> Option<String> {
    let binners = || {
        // HashMap iteration order is nondeterministic — sort before
        // rendering or identical configs would hash apart.
        let mut entries: Vec<String> = opts
            .binners
            .iter()
            .map(|(k, b)| format!("{k}={b:?}"))
            .collect();
        entries.sort();
        entries.join(",")
    };
    match vis {
        Visibility::Closed => None,
        Visibility::SemiOpen => Some(format!("ipf={:?}|binners={}", opts.ipf, binners())),
        Visibility::Open => Some(format!(
            "ipf={:?}|binners={}|backend={:?}|num_generated={}|rows_per_sample={:?}|seed={}",
            opts.ipf,
            binners(),
            opts.open.backend,
            opts.open.num_generated,
            opts.open.rows_per_sample,
            opts.open.seed,
        )),
    }
}

/// The canonical result-cache fingerprint of a bound statement.
pub(crate) fn fingerprint_of(
    prepared: &crate::session::Prepared,
    params: &[Value],
    opts: &EngineOptions,
    vis: Visibility,
) -> u64 {
    crate::plan::fingerprint::plan_fingerprint(
        &prepared.logical_plan().to_string(),
        &prepared.relations(),
        params,
        vis,
        model_config_string(opts, vis).as_deref(),
    )
}

/// Snapshot the current epoch of every relation in `relations`.
pub(crate) fn epoch_snapshot(cat: &Catalog, relations: &[String]) -> Vec<(String, u64)> {
    relations
        .iter()
        .map(|r| (r.clone(), cat.relation_epoch(r)))
        .collect()
}

/// Hash the parts of the options that shape a fitted model (backend
/// hyper-parameters and IPF settings), for the model-cache key.
fn backend_fingerprint(opts: &EngineOptions) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}|{:?}", opts.open.backend, opts.ipf).hash(&mut h);
    h.finish()
}

/// Map a row (possibly with an explicit column list) onto the target
/// schema order, filling unmentioned columns with NULL.
fn arrange_row(
    schema: &Schema,
    columns: Option<&[String]>,
    values: Vec<Value>,
) -> Result<Vec<Value>> {
    match columns {
        None => {
            if values.len() != schema.len() {
                return Err(MosaicError::Execution(format!(
                    "INSERT arity {} != table arity {}",
                    values.len(),
                    schema.len()
                )));
            }
            Ok(values)
        }
        Some(cols) => {
            if values.len() != cols.len() {
                return Err(MosaicError::Execution(format!(
                    "INSERT arity {} != column list arity {}",
                    values.len(),
                    cols.len()
                )));
            }
            let mut row = vec![Value::Null; schema.len()];
            for (c, v) in cols.iter().zip(values) {
                row[schema.index_of(c)?] = v;
            }
            Ok(row)
        }
    }
}

fn coerce_to_sample_schema(cat: &Catalog, sample: &str, rows: Table) -> Result<Table> {
    let s = cat
        .sample(sample)
        .ok_or_else(|| MosaicError::Catalog(format!("unknown sample {sample}")))?;
    let schema = Arc::clone(s.data.schema());
    let mut b = TableBuilder::with_capacity(Arc::clone(&schema), rows.num_rows());
    // Reorder incoming columns by name.
    let mapping: Vec<usize> = schema
        .fields()
        .iter()
        .map(|f| rows.schema().index_of(&f.name))
        .collect::<mosaic_storage::Result<_>>()?;
    for r in 0..rows.num_rows() {
        b.push_row(mapping.iter().map(|&c| rows.value(r, c)).collect())?;
    }
    Ok(b.finish().dict_encoded())
}

/// Filter a table by an optional predicate.
fn apply_view(table: &Table, view: Option<&Expr>) -> Result<Table> {
    match view {
        None => Ok(table.clone()),
        Some(pred) => {
            let sel = crate::plan::vector::eval_predicate(pred, table)?;
            Ok(table.filter(&sel))
        }
    }
}

/// Filter a table and a parallel weight vector by an optional predicate.
fn apply_view_weighted(
    table: &Table,
    weights: &[f64],
    view: Option<&Expr>,
) -> Result<(Table, Vec<f64>)> {
    match view {
        None => Ok((table.clone(), weights.to_vec())),
        Some(pred) => {
            let sel = crate::plan::vector::eval_predicate(pred, table)?;
            let idx = sel.to_indices();
            let w = idx.iter().map(|&i| weights[i]).collect();
            Ok((table.take(&idx), w))
        }
    }
}

/// The schema a raw sample scan executes against: the sample's data
/// schema plus the engine-managed `weight` column (mirroring
/// [`table_with_weight_column`]). Prepared statements and EXPLAIN bind
/// and optimize against this, so projection pruning can never drop the
/// weight column a query references.
pub(crate) fn sample_scan_schema(sample: &Sample) -> Arc<Schema> {
    let schema = sample.data.schema();
    if schema.contains("weight") {
        return Arc::clone(schema);
    }
    let mut fields = schema.fields().to_vec();
    fields.push(Field::new("weight", DataType::Float));
    Schema::new(fields)
}

/// Append the engine-managed weight vector as a `weight` column (raw
/// sample scans).
fn table_with_weight_column(data: &Table, weights: &[f64]) -> Result<Table> {
    if data.schema().contains("weight") {
        return Ok(data.clone());
    }
    let mut fields = data.schema().fields().to_vec();
    fields.push(Field::new("weight", DataType::Float));
    let mut columns = data.columns().to_vec();
    columns.push(Column::from_f64(weights.to_vec()));
    Table::new(Schema::new(fields), columns).map_err(Into::into)
}

/// Combine the per-generated-sample answers of an aggregate OPEN query:
/// keep groups appearing in *all* runs, average the aggregate columns
/// (paper §5.3).
fn combine_open_runs(stmt: &SelectStmt, runs: Vec<Table>) -> Result<Table> {
    let first = runs
        .first()
        .ok_or_else(|| MosaicError::Execution("no OPEN runs".into()))?;
    let schema = Arc::clone(first.schema());
    // Which output columns are group keys vs aggregates?
    let is_agg: Vec<bool> = stmt
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        })
        .collect();
    if is_agg.len() != schema.len() {
        return Err(MosaicError::Execution(
            "OPEN combiner: projection arity mismatch".into(),
        ));
    }
    let key_cols: Vec<usize> = (0..is_agg.len()).filter(|&i| !is_agg[i]).collect();
    let agg_cols: Vec<usize> = (0..is_agg.len()).filter(|&i| is_agg[i]).collect();
    // key -> per-aggregate sums and appearance count.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut acc: HashMap<Vec<Value>, (usize, Vec<f64>, Vec<usize>)> = HashMap::new();
    for run in &runs {
        for row in 0..run.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|&c| run.value(row, c)).collect();
            let entry = acc.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (0, vec![0.0; agg_cols.len()], vec![0; agg_cols.len()])
            });
            entry.0 += 1;
            for (ai, &c) in agg_cols.iter().enumerate() {
                if let Some(x) = run.value(row, c).as_f64() {
                    entry.1[ai] += x;
                    entry.2[ai] += 1;
                }
            }
        }
    }
    let mut b = TableBuilder::new(Arc::clone(&schema));
    for key in &order {
        let (appearances, sums, counts) = &acc[key];
        if *appearances != runs.len() {
            continue; // paper: "return the groups appearing in all 10 answers"
        }
        let mut row = vec![Value::Null; schema.len()];
        for (ki, &c) in key_cols.iter().enumerate() {
            row[c] = key[ki].clone();
        }
        for (ai, &c) in agg_cols.iter().enumerate() {
            row[c] = if counts[ai] > 0 {
                Value::Float(sums[ai] / counts[ai] as f64)
            } else {
                Value::Null
            };
        }
        // Coerce to the schema's column types.
        let coerced: Vec<Value> = row
            .into_iter()
            .enumerate()
            .map(|(c, v)| {
                v.coerce_to(schema.field(c).data_type)
                    .unwrap_or(Value::Null)
            })
            .collect();
        b.push_row(coerced)?;
    }
    Ok(b.finish())
}

/// The single-owner Mosaic database handle: one [`MosaicEngine`] plus
/// one [`Session`], behind the original `&mut self` API.
///
/// This is a thin compatibility wrapper — `execute` simply forwards to
/// the session. New code that needs concurrency, prepared statements,
/// or per-session overrides should use [`MosaicEngine::session`]
/// directly; `MosaicDb::session()` opens additional sessions onto the
/// same engine.
///
/// See the crate docs for an end-to-end example. All statement execution
/// is deterministic given `EngineOptions::open.seed`.
pub struct MosaicDb {
    session: Session,
}

impl Default for MosaicDb {
    fn default() -> Self {
        Self::new()
    }
}

impl MosaicDb {
    /// New engine with default options (SEMI-OPEN default visibility,
    /// M-SWG OPEN backend).
    pub fn new() -> MosaicDb {
        Self::with_options(EngineOptions::default())
    }

    /// New engine with explicit options.
    pub fn with_options(options: EngineOptions) -> MosaicDb {
        let engine = Arc::new(MosaicEngine::with_options(options));
        MosaicDb {
            session: engine.session(),
        }
    }

    /// The shared engine under this handle (share it across threads
    /// with `Arc::clone`, then open sessions on it).
    pub fn engine(&self) -> &Arc<MosaicEngine> {
        self.session.engine()
    }

    /// Open a new independent session on the same engine.
    pub fn session(&self) -> Session {
        self.session.engine().session()
    }

    /// The catalog (read access for inspection). The returned guard
    /// blocks writers while held.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.engine().catalog()
    }

    /// Mutable engine options (a write guard — derefs to
    /// [`EngineOptions`]).
    pub fn options_mut(&mut self) -> RwLockWriteGuard<'_, EngineOptions> {
        self.engine().options_write()
    }

    /// Register a binner for a continuous attribute (shared by metadata
    /// construction and IPF).
    pub fn register_binner(&mut self, attr: &str, binner: Binner) {
        self.engine().register_binner(attr, binner);
    }

    /// Execute a script of semicolon-separated statements; returns the
    /// result of the last SELECT (or an empty result).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.session.execute(sql)
    }

    /// Execute a script and return just the last result table.
    pub fn query(&mut self, sql: &str) -> Result<Table> {
        self.execute(sql).map(|r| r.table)
    }

    /// Prepare a single SELECT: parse once, bind names against the
    /// catalog, lower and cache the physical plan (see
    /// [`Session::prepare`]).
    pub fn prepare(&self, sql: &str) -> Result<crate::session::Prepared> {
        self.session.prepare(sql)
    }

    /// Execute a prepared statement with positional-parameter values
    /// (see [`Session::execute_prepared`]).
    pub fn execute_prepared(
        &mut self,
        prepared: &crate::session::Prepared,
        params: &[Value],
    ) -> Result<QueryResult> {
        self.session.execute_prepared(prepared, params)
    }

    /// Ingest rows into a sample programmatically (the paper's "...Ingest
    /// Yahoo sample to YahooMigrants" step).
    pub fn ingest_sample(&mut self, sample: &str, rows: Table) -> Result<()> {
        self.engine().ingest_sample(sample, rows)
    }

    /// Register (or replace) an auxiliary table programmatically.
    pub fn register_table(&mut self, name: &str, table: Table) -> Result<()> {
        self.engine().register_table(name, table)
    }

    /// Attach a marginal to a population programmatically.
    pub fn add_metadata(&mut self, name: &str, population: &str, marginal: Marginal) -> Result<()> {
        self.engine().add_metadata(name, population, marginal)
    }

    /// Overwrite a sample's initial weights (paper §3.2).
    pub fn set_sample_weights(&mut self, sample: &str, weights: Vec<f64>) -> Result<()> {
        self.engine().set_sample_weights(sample, weights)
    }
}
