//! The Mosaic catalog: the three relation kinds of the paper's data model
//! (§3.1) plus population metadata (§3.2).

use std::collections::HashMap;
use std::sync::Arc;

use mosaic_sql::{Expr, MechanismSpec};
use mosaic_stats::Marginal;
use mosaic_storage::{Schema, Table, TableBuilder, Value};

use crate::{MosaicError, Result};

/// A known sampling mechanism: the inclusion probability of a tuple,
/// defined with respect to the global population (§3).
#[derive(Debug, Clone, PartialEq)]
pub enum Mechanism {
    /// Uniform sampling: every GP tuple kept with probability
    /// `percent/100`, so the inverse-probability weight is `100/percent`.
    Uniform {
        /// Sample percentage of the GP.
        percent: f64,
    },
    /// Stratified sampling on one attribute; within stratum `h` the weight
    /// is `N_h / n_h` where `N_h` comes from a marginal over the
    /// stratification attribute (falling back to `100/percent` when no
    /// such marginal exists).
    Stratified {
        /// Stratification attribute.
        attr: String,
        /// Sample percentage of the GP.
        percent: f64,
    },
}

impl From<&MechanismSpec> for Mechanism {
    fn from(spec: &MechanismSpec) -> Self {
        match spec {
            MechanismSpec::Uniform { percent } => Mechanism::Uniform { percent: *percent },
            MechanismSpec::Stratified { attr, percent } => Mechanism::Stratified {
                attr: attr.clone(),
                percent: *percent,
            },
        }
    }
}

/// A population relation: a set of tuples that *could* exist but is not
/// fully known to Mosaic (§3.1).
#[derive(Debug, Clone)]
pub struct Population {
    /// Population name.
    pub name: String,
    /// Attribute schema.
    pub schema: Arc<Schema>,
    /// True for the global population (GP).
    pub global: bool,
    /// For derived populations: `(global population name, defining
    /// predicate)` — the population is a view over the GP.
    pub source: Option<(String, Option<Expr>)>,
}

/// A sample relation: tuples that do exist in the GP and that Mosaic has
/// access to, with engine-managed weights (§3.1–3.2).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Sample name.
    pub name: String,
    /// Reference population (usually the GP).
    pub population: String,
    /// Defining predicate over the population (`CREATE SAMPLE … WHERE`).
    pub predicate: Option<Expr>,
    /// Declared sampling mechanism, if known.
    pub mechanism: Option<Mechanism>,
    /// Ingested tuples.
    pub data: Table,
    /// Tuple weights, "initialized to be one for every tuple" (§3.2).
    pub weights: Vec<f64>,
}

impl Sample {
    /// Number of ingested tuples.
    pub fn len(&self) -> usize {
        self.data.num_rows()
    }

    /// True if nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A named marginal bound to a population (§3.2).
#[derive(Debug, Clone)]
pub struct MetadataEntry {
    /// Metadata name (paper convention `<pop>_M1`).
    pub name: String,
    /// Population this metadata describes.
    pub population: String,
    /// The marginal itself.
    pub marginal: Marginal,
}

/// The Mosaic catalog: auxiliary tables, populations, samples, metadata.
#[derive(Debug, Default)]
pub struct Catalog {
    aux: HashMap<String, Table>,
    populations: HashMap<String, Population>,
    samples: HashMap<String, Sample>,
    metadata: Vec<MetadataEntry>,
    global_population: Option<String>,
    /// Bumped on any mutation that invalidates cached generative models.
    pub(crate) epoch: u64,
    /// Per-relation write epochs: for each relation (or metadata) name,
    /// the value of `epoch` at its last mutation. A cached artifact that
    /// reads a set of relations is valid iff every one of their epochs is
    /// unchanged. Entries survive `DROP` (the drop *is* a mutation), so a
    /// dropped-and-recreated relation never matches a stale epoch.
    relation_epochs: HashMap<String, u64>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Record a mutation of `name`: advance the global epoch and stamp
    /// the relation with it. Every write path calls this under the
    /// engine's catalog write lock, so epoch reads taken under the read
    /// lock are consistent with the data they describe.
    fn bump(&mut self, name: &str) {
        self.epoch += 1;
        self.relation_epochs.insert(key(name), self.epoch);
    }

    /// The write epoch of a relation (or metadata entry): the global
    /// epoch at its last mutation, `0` if it has never been written.
    /// Epochs are never reused — a `DROP` bumps the name too — so two
    /// equal epochs for a name always describe the same catalog state.
    pub fn relation_epoch(&self, name: &str) -> u64 {
        self.relation_epochs.get(&key(name)).copied().unwrap_or(0)
    }

    /// Register an auxiliary table, replacing any previous one of the same
    /// name.
    pub fn create_aux(&mut self, name: &str, table: Table) -> Result<()> {
        self.ensure_name_free(name, Kind::Aux)?;
        self.aux.insert(key(name), table);
        self.bump(name);
        Ok(())
    }

    /// Fetch an auxiliary table.
    pub fn aux(&self, name: &str) -> Option<&Table> {
        self.aux.get(&key(name))
    }

    /// Replace an auxiliary table's contents (INSERT target).
    pub fn replace_aux(&mut self, name: &str, table: Table) -> Result<()> {
        if !self.aux.contains_key(&key(name)) {
            return Err(MosaicError::Catalog(format!("unknown table {name}")));
        }
        self.aux.insert(key(name), table);
        self.bump(name);
        Ok(())
    }

    /// Register a population. Only one GLOBAL population may exist (the
    /// paper: "we assume the user defines only one GP").
    pub fn create_population(&mut self, pop: Population) -> Result<()> {
        self.ensure_name_free(&pop.name, Kind::Population)?;
        if pop.global {
            if let Some(gp) = &self.global_population {
                return Err(MosaicError::Catalog(format!(
                    "a global population already exists: {gp}"
                )));
            }
            self.global_population = Some(pop.name.clone());
        } else {
            let (gp, _) = pop.source.as_ref().ok_or_else(|| {
                MosaicError::Catalog(format!(
                    "non-global population {} must be defined AS a SELECT over the global population",
                    pop.name
                ))
            })?;
            if self.population(gp).is_none() {
                return Err(MosaicError::Catalog(format!(
                    "unknown global population {gp}"
                )));
            }
        }
        let name = pop.name.clone();
        self.populations.insert(key(&pop.name), pop);
        self.bump(&name);
        Ok(())
    }

    /// Fetch a population.
    pub fn population(&self, name: &str) -> Option<&Population> {
        self.populations.get(&key(name))
    }

    /// The global population, if declared.
    pub fn global_population(&self) -> Option<&Population> {
        self.global_population
            .as_deref()
            .and_then(|n| self.population(n))
    }

    /// Register a sample over an existing population.
    pub fn create_sample(&mut self, sample: Sample) -> Result<()> {
        self.ensure_name_free(&sample.name, Kind::Sample)?;
        if self.population(&sample.population).is_none() {
            return Err(MosaicError::Catalog(format!(
                "unknown population {} for sample {}",
                sample.population, sample.name
            )));
        }
        let (name, population) = (sample.name.clone(), sample.population.clone());
        self.samples.insert(key(&sample.name), sample);
        // A new sample changes what population-level queries (SEMI-OPEN
        // weight combination, OPEN model training) can see, so the
        // reference population is a dependency that must move too.
        self.bump(&name);
        self.bump(&population);
        Ok(())
    }

    /// Fetch a sample.
    pub fn sample(&self, name: &str) -> Option<&Sample> {
        self.samples.get(&key(name))
    }

    /// Append rows to a sample; new tuples get weight 1.
    pub fn append_to_sample(&mut self, name: &str, rows: Table) -> Result<()> {
        let s = self
            .samples
            .get_mut(&key(name))
            .ok_or_else(|| MosaicError::Catalog(format!("unknown sample {name}")))?;
        let added = rows.num_rows();
        s.data = if s.data.is_empty() {
            // Adopt incoming schema when the sample was declared without
            // explicit fields.
            if s.data.schema().is_empty() {
                rows
            } else {
                s.data.concat(&rows)?
            }
        } else {
            s.data.concat(&rows)?
        };
        s.weights.extend(std::iter::repeat_n(1.0, added));
        let population = s.population.clone();
        self.bump(name);
        self.bump(&population);
        Ok(())
    }

    /// Overwrite a sample's weights (user-initialized weights, §3.2).
    pub fn set_sample_weights(&mut self, name: &str, weights: Vec<f64>) -> Result<()> {
        let s = self
            .samples
            .get_mut(&key(name))
            .ok_or_else(|| MosaicError::Catalog(format!("unknown sample {name}")))?;
        if weights.len() != s.len() {
            return Err(MosaicError::Execution(format!(
                "weight vector length {} does not match sample size {}",
                weights.len(),
                s.len()
            )));
        }
        s.weights = weights;
        let population = s.population.clone();
        self.bump(name);
        self.bump(&population);
        Ok(())
    }

    /// Register metadata for a population.
    pub fn create_metadata(&mut self, entry: MetadataEntry) -> Result<()> {
        if self.population(&entry.population).is_none() {
            return Err(MosaicError::Catalog(format!(
                "unknown population {} for metadata {}",
                entry.population, entry.name
            )));
        }
        if self
            .metadata
            .iter()
            .any(|m| m.name.eq_ignore_ascii_case(&entry.name))
        {
            return Err(MosaicError::Catalog(format!(
                "metadata {} already exists",
                entry.name
            )));
        }
        let (name, population) = (entry.name.clone(), entry.population.clone());
        self.metadata.push(entry);
        // Marginals feed SEMI-OPEN re-weighting and OPEN model training,
        // so new metadata is a write against its population as well.
        self.bump(&name);
        self.bump(&population);
        Ok(())
    }

    /// All marginals bound to a population.
    pub fn metadata_for(&self, population: &str) -> Vec<&MetadataEntry> {
        self.metadata
            .iter()
            .filter(|m| m.population.eq_ignore_ascii_case(population))
            .collect()
    }

    /// Resolve a metadata name's target population: an explicit `FOR`
    /// binding wins; otherwise the paper's `<pop>_<suffix>` convention is
    /// applied (longest existing population prefix before an underscore).
    pub fn infer_metadata_population(&self, metadata_name: &str) -> Option<String> {
        let mut candidate: Option<&Population> = None;
        let lower = metadata_name.to_ascii_lowercase();
        for pop in self.populations.values() {
            let p = pop.name.to_ascii_lowercase();
            if lower
                .strip_prefix(&p)
                .is_some_and(|rest| rest.starts_with('_'))
                && candidate.is_none_or(|c| c.name.len() < pop.name.len())
            {
                candidate = Some(pop);
            }
        }
        candidate.map(|p| p.name.clone())
    }

    /// Every registered relation as a `(name, kind)` pair, sorted by
    /// name; kind is `"table"`, `"population"`, or `"sample"`. Drives
    /// the CLI's `.tables` listing and the unknown-relation error's
    /// "available relations" hint.
    pub fn relations(&self) -> Vec<(String, &'static str)> {
        let mut out: Vec<(String, &'static str)> = self
            .aux
            .keys()
            .map(|n| (n.clone(), "table"))
            .chain(
                self.populations
                    .values()
                    .map(|p| (p.name.clone(), "population")),
            )
            .chain(self.samples.values().map(|s| (s.name.clone(), "sample")))
            .collect();
        out.sort_by_key(|r| r.0.to_ascii_lowercase());
        out
    }

    /// Sorted names of every registered relation.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations().into_iter().map(|(n, _)| n).collect()
    }

    /// Samples whose reference population is `population`.
    pub fn samples_for(&self, population: &str) -> Vec<&Sample> {
        self.samples
            .values()
            .filter(|s| s.population.eq_ignore_ascii_case(population))
            .collect()
    }

    /// Drop any relation (table, population, sample) or metadata by name.
    /// The drop bumps the dropped name's epoch (and, for samples and
    /// metadata, their reference population's), so cached plans and
    /// results over it are invalidated exactly like any other write.
    pub fn drop_any(&mut self, name: &str) -> Result<()> {
        let k = key(name);
        if self.aux.remove(&k).is_some() {
            self.bump(name);
            return Ok(());
        }
        if let Some(s) = self.samples.remove(&k) {
            self.bump(name);
            self.bump(&s.population);
            return Ok(());
        }
        if self.populations.remove(&k).is_some() {
            if self.global_population.as_deref().map(key) == Some(k) {
                self.global_population = None;
            }
            self.bump(name);
            return Ok(());
        }
        let mut dropped_population: Option<String> = None;
        self.metadata.retain(|m| {
            if m.name.eq_ignore_ascii_case(name) {
                dropped_population = Some(m.population.clone());
                false
            } else {
                true
            }
        });
        if let Some(population) = dropped_population {
            self.bump(name);
            self.bump(&population);
            return Ok(());
        }
        Err(MosaicError::Catalog(format!("unknown relation {name}")))
    }

    fn ensure_name_free(&self, name: &str, kind: Kind) -> Result<()> {
        let k = key(name);
        let clash = match kind {
            // Auxiliary tables may be re-created (paper: TEMPORARY).
            Kind::Aux => self.populations.contains_key(&k) || self.samples.contains_key(&k),
            _ => {
                self.aux.contains_key(&k)
                    || self.populations.contains_key(&k)
                    || self.samples.contains_key(&k)
            }
        };
        if clash {
            Err(MosaicError::Catalog(format!(
                "relation {name} already exists"
            )))
        } else {
            Ok(())
        }
    }
}

enum Kind {
    Aux,
    Population,
    Sample,
}

/// Build an empty table for a declared schema (used when a sample is
/// declared before ingestion).
pub(crate) fn empty_table(schema: Arc<Schema>) -> Table {
    TableBuilder::new(schema).finish()
}

/// Convert a `(keys…, count)` result table into a [`Marginal`].
pub(crate) fn marginal_from_table(table: &Table) -> Result<Marginal> {
    if table.num_columns() < 2 {
        return Err(MosaicError::Execution(
            "metadata query must produce key column(s) plus a count column".into(),
        ));
    }
    let key_cols = table.num_columns() - 1;
    let attrs: Vec<String> = (0..key_cols)
        .map(|i| table.schema().field(i).name.clone())
        .collect();
    let mut m = Marginal::new(attrs);
    let count_col = table.column(key_cols);
    for row in 0..table.num_rows() {
        let count = count_col.f64_at(row).ok_or_else(|| {
            MosaicError::Execution("metadata count column must be numeric".into())
        })?;
        let key: Vec<Value> = (0..key_cols).map(|c| table.value(row, c)).collect();
        m.add(key, count);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{DataType, Field};

    fn pop(name: &str, global: bool) -> Population {
        Population {
            name: name.into(),
            schema: Schema::new(vec![Field::new("a", DataType::Int)]),
            global,
            source: if global {
                None
            } else {
                Some(("GP".into(), None))
            },
        }
    }

    #[test]
    fn only_one_global_population() {
        let mut c = Catalog::new();
        c.create_population(pop("GP", true)).unwrap();
        assert!(c.create_population(pop("GP2", true)).is_err());
        assert_eq!(c.global_population().unwrap().name, "GP");
    }

    #[test]
    fn derived_population_needs_source() {
        let mut c = Catalog::new();
        assert!(c
            .create_population(Population {
                source: None,
                ..pop("P", false)
            })
            .is_err());
        c.create_population(pop("GP", true)).unwrap();
        c.create_population(pop("P", false)).unwrap();
        assert!(c.population("p").is_some());
    }

    #[test]
    fn sample_requires_population() {
        let mut c = Catalog::new();
        let s = Sample {
            name: "S".into(),
            population: "GP".into(),
            predicate: None,
            mechanism: None,
            data: empty_table(Schema::new(vec![Field::new("a", DataType::Int)])),
            weights: vec![],
        };
        assert!(c.create_sample(s.clone()).is_err());
        c.create_population(pop("GP", true)).unwrap();
        c.create_sample(s).unwrap();
        assert_eq!(c.samples_for("gp").len(), 1);
    }

    #[test]
    fn append_extends_weights() {
        let mut c = Catalog::new();
        c.create_population(pop("GP", true)).unwrap();
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        c.create_sample(Sample {
            name: "S".into(),
            population: "GP".into(),
            predicate: None,
            mechanism: None,
            data: empty_table(Arc::clone(&schema)),
            weights: vec![],
        })
        .unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![1.into()]).unwrap();
        b.push_row(vec![2.into()]).unwrap();
        c.append_to_sample("S", b.finish()).unwrap();
        assert_eq!(c.sample("s").unwrap().weights, vec![1.0, 1.0]);
    }

    #[test]
    fn metadata_population_inference() {
        let mut c = Catalog::new();
        c.create_population(pop("EuropeMigrants", true)).unwrap();
        assert_eq!(
            c.infer_metadata_population("EuropeMigrants_M1"),
            Some("EuropeMigrants".to_string())
        );
        assert_eq!(c.infer_metadata_population("Unrelated_M1"), None);
    }

    #[test]
    fn drop_any_kind() {
        let mut c = Catalog::new();
        c.create_population(pop("GP", true)).unwrap();
        c.create_aux(
            "t",
            empty_table(Schema::new(vec![Field::new("a", DataType::Int)])),
        )
        .unwrap();
        c.drop_any("t").unwrap();
        assert!(c.aux("t").is_none());
        c.drop_any("GP").unwrap();
        assert!(c.global_population().is_none());
        assert!(c.drop_any("nothing").is_err());
    }

    #[test]
    fn name_clashes_rejected() {
        let mut c = Catalog::new();
        c.create_population(pop("GP", true)).unwrap();
        assert!(c
            .create_aux(
                "gp",
                empty_table(Schema::new(vec![Field::new("a", DataType::Int)]))
            )
            .is_err());
    }

    #[test]
    fn relation_epochs_track_writes() {
        let mut c = Catalog::new();
        assert_eq!(c.relation_epoch("t"), 0);
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        c.create_aux("t", empty_table(Arc::clone(&schema))).unwrap();
        let t1 = c.relation_epoch("T");
        assert!(t1 > 0, "creation stamps an epoch (case-insensitively)");
        c.create_population(pop("GP", true)).unwrap();
        assert_eq!(c.relation_epoch("t"), t1, "unrelated writes leave t alone");
        let gp1 = c.relation_epoch("gp");
        c.create_sample(Sample {
            name: "S".into(),
            population: "GP".into(),
            predicate: None,
            mechanism: None,
            data: empty_table(Arc::clone(&schema)),
            weights: vec![],
        })
        .unwrap();
        assert!(
            c.relation_epoch("gp") > gp1,
            "a sample write moves its population too"
        );
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![1.into()]).unwrap();
        let gp2 = c.relation_epoch("gp");
        let s1 = c.relation_epoch("s");
        c.append_to_sample("S", b.finish()).unwrap();
        assert!(c.relation_epoch("s") > s1);
        assert!(c.relation_epoch("gp") > gp2);
        let t_before_drop = c.relation_epoch("t");
        c.drop_any("t").unwrap();
        assert!(c.relation_epoch("t") > t_before_drop, "DROP is a write");
    }

    #[test]
    fn marginal_from_result_table() {
        let schema = Schema::new(vec![
            Field::new("country", DataType::Str),
            Field::new("cnt", DataType::Int),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec!["UK".into(), 100.into()]).unwrap();
        b.push_row(vec!["FR".into(), 50.into()]).unwrap();
        let m = marginal_from_table(&b.finish()).unwrap();
        assert_eq!(m.get(&["UK".into()]), Some(100.0));
        assert_eq!(m.total(), 150.0);
    }
}
