//! Row-at-a-time expression evaluation over tables (SQL three-valued
//! logic, numeric coercion between `Int` and `Float`).
//!
//! This module is the **reference oracle** for the vectorized evaluator
//! in [`crate::plan::vector`]: it defines the semantics, the vectorized
//! kernels must reproduce it value-for-value (the property-based suite
//! in `tests/` asserts exactly that), and unsupported expression shapes
//! fall back to it at runtime.

use std::cmp::Ordering;

use mosaic_sql::{BinOp, Expr, UnaryOp};
use mosaic_storage::{Bitmap, Column, ColumnBuilder, DataType, Table, Value};

use crate::{MosaicError, Result};

/// Evaluate a scalar expression with no column references (INSERT VALUES
/// literals, constant folding).
pub fn eval_scalar(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Column(c) => Err(MosaicError::Execution(format!(
            "column {c} not allowed in this context"
        ))),
        _ => eval_row(expr, None, 0),
    }
}

/// Evaluate an expression for every row of `table`, returning a column
/// (row-at-a-time reference path; prefer [`crate::eval_expr`]).
pub fn eval_expr_rowwise(expr: &Expr, table: &Table) -> Result<Column> {
    let n = table.num_rows();
    let mut values = Vec::with_capacity(n);
    for row in 0..n {
        values.push(eval_row(expr, Some(table), row)?);
    }
    // Infer the output type: prefer the first non-null value's type; mixed
    // Int/Float widens to Float.
    let mut ty: Option<DataType> = None;
    for v in &values {
        match (ty, v.data_type()) {
            (None, Some(t)) => ty = Some(t),
            (Some(DataType::Int), Some(DataType::Float)) => ty = Some(DataType::Float),
            _ => {}
        }
    }
    let ty = ty.unwrap_or(DataType::Int);
    let mut b = ColumnBuilder::with_capacity(ty, n);
    for v in values {
        let v = match (&v, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            _ => v,
        };
        b.push(v)?;
    }
    Ok(b.finish())
}

/// Evaluate a predicate into a selection bitmap (NULL ⇒ excluded, per SQL
/// semantics; row-at-a-time reference path; prefer
/// [`crate::eval_predicate`]).
pub fn eval_predicate_rowwise(expr: &Expr, table: &Table) -> Result<Bitmap> {
    let n = table.num_rows();
    let mut bm = Bitmap::zeros(n);
    for row in 0..n {
        if matches!(eval_row(expr, Some(table), row)?, Value::Bool(true)) {
            bm.set(row, true);
        }
    }
    Ok(bm)
}

/// Evaluate `expr` at one row.
pub(crate) fn eval_row(expr: &Expr, table: Option<&Table>, row: usize) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => Err(MosaicError::Param(format!(
            "unbound parameter ?{}: supply values through a prepared statement",
            i + 1
        ))),
        Expr::Column(name) => {
            let t = table
                .ok_or_else(|| MosaicError::Execution(format!("column {name} not allowed here")))?;
            Ok(t.column_by_name(name)?.value(row))
        }
        Expr::Unary { op, expr } => {
            let v = eval_row(expr, table, row)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(MosaicError::Execution(format!("cannot negate {other}"))),
                },
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(MosaicError::Execution(format!(
                        "NOT of non-boolean {other}"
                    ))),
                },
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, table, row),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let c = eval_row(item, table, row)?;
                if c.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&c) == Some(Ordering::Equal) {
                    return Ok(Value::Bool(!negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            let lo = eval_row(low, table, row)?;
            let hi = eval_row(high, table, row)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(expr, table, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Agg { .. } => Err(MosaicError::Execution(
            "aggregate in a non-aggregate context".into(),
        )),
    }
}

fn eval_binary(
    left: &Expr,
    op: BinOp,
    right: &Expr,
    table: Option<&Table>,
    row: usize,
) -> Result<Value> {
    // AND/OR use three-valued logic with short circuits.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval_row(left, table, row)?;
        let lb = match &l {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => {
                return Err(MosaicError::Execution(format!(
                    "logical operand must be boolean, got {other}"
                )))
            }
        };
        match (op, lb) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval_row(right, table, row)?;
        let rb = match &r {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => {
                return Err(MosaicError::Execution(format!(
                    "logical operand must be boolean, got {other}"
                )))
            }
        };
        return Ok(match (op, lb, rb) {
            (BinOp::And, Some(true), Some(b)) => Value::Bool(b),
            (BinOp::And, _, Some(false)) => Value::Bool(false),
            (BinOp::And, _, _) => Value::Null,
            (BinOp::Or, Some(false), Some(b)) => Value::Bool(b),
            (BinOp::Or, _, Some(true)) => Value::Bool(true),
            (BinOp::Or, _, _) => Value::Null,
            _ => unreachable!(),
        });
    }
    let l = eval_row(left, table, row)?;
    let r = eval_row(right, table, row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let ord = l
                .sql_cmp(&r)
                .ok_or_else(|| MosaicError::Execution(format!("cannot compare {l} with {r}")))?;
            let res = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::NotEq => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::LtEq => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(res))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            // Integer arithmetic stays integral except for division.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return match op {
                    BinOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
                    BinOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    BinOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    BinOp::Div => {
                        if *b == 0 {
                            Ok(Value::Null)
                        } else {
                            Ok(Value::Float(*a as f64 / *b as f64))
                        }
                    }
                    BinOp::Mod => {
                        if *b == 0 {
                            Ok(Value::Null)
                        } else {
                            Ok(Value::Int(a % b))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let (a, b) = (
                l.as_f64()
                    .ok_or_else(|| MosaicError::Execution(format!("non-numeric operand {l}")))?,
                r.as_f64()
                    .ok_or_else(|| MosaicError::Execution(format!("non-numeric operand {r}")))?,
            );
            let x = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(x))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::parse_expr;
    use mosaic_storage::{Field, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![1.into(), "a".into(), 0.5.into()]).unwrap();
        b.push_row(vec![2.into(), "b".into(), 1.5.into()]).unwrap();
        b.push_row(vec![3.into(), "a".into(), Value::Null]).unwrap();
        b.finish()
    }

    fn pred(src: &str, t: &Table) -> Vec<usize> {
        eval_predicate_rowwise(&parse_expr(src).unwrap(), t)
            .unwrap()
            .to_indices()
    }

    #[test]
    fn comparisons_and_logic() {
        let t = table();
        assert_eq!(pred("x > 1", &t), vec![1, 2]);
        assert_eq!(pred("x > 1 AND s = 'a'", &t), vec![2]);
        assert_eq!(pred("x = 1 OR s = 'b'", &t), vec![0, 1]);
        assert_eq!(pred("NOT x = 2", &t), vec![0, 2]);
    }

    #[test]
    fn null_excluded_from_predicates() {
        let t = table();
        // f is NULL in row 2: comparison yields NULL, excluded.
        assert_eq!(pred("f < 100", &t), vec![0, 1]);
        assert_eq!(pred("f IS NULL", &t), vec![2]);
        assert_eq!(pred("f IS NOT NULL", &t), vec![0, 1]);
    }

    #[test]
    fn in_list_and_between() {
        let t = table();
        assert_eq!(pred("s IN ('a', 'z')", &t), vec![0, 2]);
        assert_eq!(pred("s NOT IN ('a')", &t), vec![1]);
        assert_eq!(pred("x BETWEEN 2 AND 3", &t), vec![1, 2]);
        assert_eq!(pred("x NOT BETWEEN 2 AND 3", &t), vec![0]);
    }

    #[test]
    fn arithmetic_types() {
        let t = table();
        let c = eval_expr_rowwise(&parse_expr("x * 2").unwrap(), &t).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.value(2), Value::Int(6));
        let c = eval_expr_rowwise(&parse_expr("x + f").unwrap(), &t).unwrap();
        assert_eq!(c.data_type(), DataType::Float);
        assert_eq!(c.value(0), Value::Float(1.5));
        assert!(c.is_null(2)); // null propagates
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(
            eval_scalar(&parse_expr("1 / 0").unwrap()).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_scalar(&parse_expr("5 / 2").unwrap()).unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn three_valued_logic() {
        let t = table();
        // NULL OR true = true; NULL AND true = NULL (excluded).
        assert_eq!(pred("f > 0 OR x = 3", &t), vec![0, 1, 2]);
        assert_eq!(pred("f > 0 AND x >= 1", &t), vec![0, 1]);
    }

    #[test]
    fn scalar_rejects_columns() {
        assert!(eval_scalar(&parse_expr("x + 1").unwrap()).is_err());
        assert_eq!(
            eval_scalar(&parse_expr("2 + 3").unwrap()).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn aggregates_rejected_here() {
        let t = table();
        assert!(eval_expr_rowwise(&parse_expr("COUNT(*)").unwrap(), &t).is_err());
    }
}
