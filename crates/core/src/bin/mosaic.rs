//! `mosaic` — an interactive SQL shell for the Mosaic open-world database.
//!
//! ```text
//! $ cargo run --release -p mosaic-core --bin mosaic
//! mosaic> CREATE GLOBAL POPULATION People (city TEXT);
//! ok
//! mosaic> SELECT SEMI-OPEN city, COUNT(*) FROM People GROUP BY city;
//! ...
//! ```
//!
//! Statements may span lines; they execute at each `;`. Meta-commands:
//! `.help`, `.quit`, `.notes on|off` (execution diagnostics),
//! `.load <csv> <table>` (ingest a CSV file as an auxiliary table).
//!
//! Flags: `--batch` (no prompts), `--threads N` (worker-thread cap for
//! the morsel-driven executor; overrides `MOSAIC_PARALLELISM`; never
//! changes results).

use std::io::{BufRead, Write};

use mosaic_core::MosaicDb;

fn main() {
    let mut db = MosaicDb::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let interactive = !args.iter().any(|a| a == "--batch");
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => db.options_mut().parallelism = n,
            _ => {
                eprintln!("error: --threads requires a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut show_notes = true;
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    if interactive {
        eprintln!("Mosaic — a sample-based database for open-world query processing");
        eprintln!("type .help for meta-commands; statements end with ';'");
    }
    loop {
        if interactive && buffer.is_empty() {
            eprint!("mosaic> ");
        } else if interactive {
            eprint!("   ...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let mut parts = trimmed.split_whitespace();
            match parts.next() {
                Some(".quit") | Some(".exit") => break,
                Some(".help") => {
                    println!(
                        ".help                 this message\n\
                         .quit                 exit\n\
                         .notes on|off         toggle execution diagnostics\n\
                         .load <csv> <table>   ingest a CSV file as an auxiliary table\n\
                         SQL: CREATE TABLE / [GLOBAL] POPULATION / SAMPLE / METADATA,\n\
                              INSERT, DROP, SELECT [CLOSED|SEMI-OPEN|OPEN] ..."
                    );
                }
                Some(".notes") => {
                    show_notes = parts.next() != Some("off");
                    println!("notes {}", if show_notes { "on" } else { "off" });
                }
                Some(".load") => match (parts.next(), parts.next()) {
                    (Some(path), Some(table)) => {
                        match mosaic_storage::csv::read_csv_path(path) {
                            Ok(t) => {
                                let rows = t.num_rows();
                                // Register (or replace) as an auxiliary
                                // table via the engine's DDL path.
                                let schema_sql: Vec<String> = t
                                    .schema()
                                    .fields()
                                    .iter()
                                    .map(|f| format!("{} {}", f.name, f.data_type))
                                    .collect();
                                let create =
                                    format!("CREATE TABLE {table} ({})", schema_sql.join(", "));
                                match db.execute(&create).and_then(|_| {
                                    // Bulk-insert the rows.
                                    let mut stmts = String::new();
                                    for r in 0..t.num_rows() {
                                        let vals: Vec<String> = (0..t.num_columns())
                                            .map(|c| match t.value(r, c) {
                                                mosaic_core::Value::Str(s) => {
                                                    format!("'{}'", s.replace('\'', "''"))
                                                }
                                                mosaic_core::Value::Null => "NULL".into(),
                                                v => v.to_string(),
                                            })
                                            .collect();
                                        stmts.push_str(&format!(
                                            "INSERT INTO {table} VALUES ({});",
                                            vals.join(",")
                                        ));
                                    }
                                    db.execute(&stmts)
                                }) {
                                    Ok(_) => println!("loaded {rows} rows into {table}"),
                                    Err(e) => eprintln!("error: {e}"),
                                }
                            }
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                    _ => eprintln!("usage: .load <csv-path> <table-name>"),
                },
                _ => eprintln!("unknown meta-command (try .help)"),
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        if sql.trim().is_empty() {
            continue;
        }
        match db.execute(&sql) {
            Ok(result) => {
                if result.table.num_columns() > 0 {
                    print!("{}", result.table);
                } else {
                    println!("ok");
                }
                if show_notes {
                    for note in &result.notes {
                        eprintln!("-- {note}");
                    }
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
