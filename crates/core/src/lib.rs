//! # mosaic-core
//!
//! **Mosaic** — a sample-based database system for open-world query
//! processing (Orr, Ainsworth, Cai, Jamieson, Balazinska, Suciu;
//! CIDR 2020).
//!
//! Traditional DBMSs make the *closed world assumption*: a tuple not in
//! the database does not exist. Data scientists analysing biased samples
//! need the opposite — the *open world assumption* — plus machinery to
//! debias samples whose sampling mechanism is unknown. Mosaic provides:
//!
//! * a sample-oriented data model: population, sample, and auxiliary
//!   relations plus population metadata (marginals) — see [`catalog`],
//! * SQL extensions to declare them (`CREATE [GLOBAL] POPULATION`,
//!   `CREATE SAMPLE … USING MECHANISM`, `CREATE METADATA`) — parsed by
//!   `mosaic-sql`,
//! * three query visibility levels (paper §3.3):
//!   - `CLOSED` — answer from the raw samples,
//!   - `SEMI-OPEN` — reweight the sample (inverse-probability weights for
//!     known mechanisms, IPF against the marginals otherwise),
//!   - `OPEN` — additionally *generate* missing tuples with a pluggable
//!     generative model ([`GenerativeModel`]: the M-SWG by default, a
//!     Chow–Liu Bayesian network as the explicit-model alternative).
//!
//! ## Quickstart
//!
//! ```
//! use mosaic_core::MosaicDb;
//!
//! let mut db = MosaicDb::new();
//! db.execute(
//!     "CREATE TABLE Eurostat (country TEXT, reported_count INT);
//!      INSERT INTO Eurostat VALUES ('UK', 30000), ('FR', 20000);
//!      CREATE GLOBAL POPULATION EuropeMigrants (country TEXT);
//!      CREATE METADATA EuropeMigrants_M1 AS
//!        (SELECT country, reported_count FROM Eurostat);
//!      CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants);
//!      INSERT INTO YahooMigrants VALUES ('UK'), ('UK'), ('FR');",
//! )
//! .unwrap();
//! // SEMI-OPEN reweights the 3-row sample so the marginal is satisfied.
//! let result = db
//!     .execute("SELECT SEMI-OPEN country, COUNT(*) FROM EuropeMigrants GROUP BY country ORDER BY country")
//!     .unwrap();
//! let t = &result.table;
//! assert_eq!(t.num_rows(), 2);
//! assert!((t.value(1, 1).as_f64().unwrap() - 30000.0).abs() < 1.0);
//! ```
//!
//! See `examples/migrants.rs` for the full §2 scenario.
//!
//! ## Sessions, prepared statements, EXPLAIN
//!
//! [`MosaicDb`] is the single-owner convenience handle; the engine
//! underneath it is [`MosaicEngine`], which is `Arc`-shareable: its
//! catalog sits behind a reader–writer lock, so any number of
//! [`Session`]s execute SELECTs concurrently while DDL/DML serializes.
//! Sessions carry per-session overrides (default visibility, seed,
//! thread cap, OPEN backend) without touching the engine-wide options:
//!
//! ```
//! use std::sync::Arc;
//! use mosaic_core::{MosaicEngine, Value};
//!
//! let engine = Arc::new(MosaicEngine::new());
//! let session = engine.session();
//! session.execute("CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2), (3);").unwrap();
//! // Prepare once (parse + bind + plan), execute many (bind values only).
//! let prepared = session.prepare("SELECT COUNT(*) FROM t WHERE x >= ?").unwrap();
//! assert_eq!(session.query_prepared(&prepared, &[Value::Int(2)]).unwrap().value(0, 0), 2i64.into());
//! assert_eq!(session.query_prepared(&prepared, &[Value::Int(3)]).unwrap().value(0, 0), 1i64.into());
//! // EXPLAIN renders the bound plan as a result table.
//! let plan = session.query("EXPLAIN SELECT COUNT(*) FROM t WHERE x >= 2").unwrap();
//! assert!(plan.num_rows() > 2);
//! ```
//!
//! ## Planning and the logical optimizer
//!
//! A bound SELECT plans in three layers: the statement becomes a
//! [`LogicalPlan`] IR (`Scan → Filter? → Project | Aggregate → Sort? →
//! Limit?` — a tree with a [`LogicalPlan::Join`] leaf once a `FROM …
//! JOIN …` appears), a rule-based optimizer rewrites it (projection
//! pruning, param-aware constant folding, join predicate pushdown,
//! Sort+Limit → `TopK` fusion — see [`plan::optimize`]), and the
//! result lowers to a [`PhysicalPlan`].
//!
//! ## Joins
//!
//! Relations join with INNER and LEFT OUTER equi-joins (`FROM flights f
//! JOIN carriers c ON f.carrier = c.code`, `a LEFT JOIN b ON …`): the
//! scope binder resolves aliases and qualified columns (with bind-time
//! ambiguity errors), the vectorized [`HashJoinOp`] builds on the
//! smaller input and probes the larger one morsel-parallel, and output
//! rows keep the canonical (left row, right row) order — bit-identical
//! at every thread count and to the row-wise [`reference_join`] /
//! [`reference_join_kinded`] oracles. LEFT OUTER joins NULL-extend the
//! right side of unmatched left rows. A joined sample carries its
//! engine-managed `weight` column through; when **both** sides are
//! weighted the join emits one combined `weight` column — the product
//! of the per-side weights (see [`plan::join`]). Populations join too:
//! a population side resolves through its chosen sample under the
//! statement's visibility — CLOSED scans it raw, SEMI-OPEN attaches
//! correction weights (with IPF re-calibration of a two-sided product
//! against the declared marginals), and OPEN runs the generate+query
//! replicate loop over the whole joined plan.
//! The optimizer is a pure plan rewrite — results are **bit-identical**
//! with it on or off (the oracle suite A/Bs both paths) — and is gated
//! by [`EngineOptions::with_optimizer`], [`Session::with_optimizer`],
//! or the `MOSAIC_OPTIMIZER=off` environment variable. Prepared
//! statements optimize once, at prepare time; `EXPLAIN` shows the
//! logical plan before and after rewriting with the fired rule names.
//!
//! ## Parallel execution
//!
//! Query execution is morsel-driven: scans split into fixed-size morsels
//! of Arc-shared column slices that a scoped worker pool processes in
//! parallel, with per-worker partial aggregates merged in a final
//! single-threaded pass (see [`plan`]). The thread cap comes from
//! [`EngineOptions::parallelism`] / [`run_select_parallel`], defaulting
//! to the `MOSAIC_PARALLELISM` environment variable or the core count —
//! and never changes results, only latency.

#![warn(missing_docs)]

mod cache;
pub mod catalog;
mod engine;
mod error;
mod eval;
mod exec;
mod explain;
mod models;
pub mod plan;
mod session;

pub use cache::{default_result_cache_mb, CacheStats};
pub use catalog::{Catalog, Mechanism, MetadataEntry, Population, Sample};
pub use engine::{EngineOptions, MosaicDb, MosaicEngine, OpenBackend, OpenOptions, QueryResult};
pub use error::MosaicError;
pub use eval::{eval_expr_rowwise, eval_predicate_rowwise, eval_scalar};
pub use exec::{
    run_select, run_select_parallel, run_select_partitioned, run_select_rowwise, run_select_with,
};
pub use models::{BnModel, GenerativeModel, SwgModel};
pub use plan::fingerprint::{format_fingerprint, plan_fingerprint, StableHasher};
pub use plan::join::{reference_join, reference_join_kinded, HashJoinOp, JoinSide};
pub use plan::logical::{JoinOutCol, LogicalPlan, ScanColumn};
pub use plan::optimize::{default_optimizer, optimize};
pub use plan::parallel::{
    active_worker_threads, default_parallelism, reset_worker_thread_peak, worker_thread_peak,
    MORSEL_ROWS,
};
pub use plan::vector::{eval_expr, eval_predicate};
pub use plan::{
    lower, lower_logical, plan_logical, plan_select, PhysicalOperator, PhysicalPlan, Planned,
};
pub use session::{Prepared, Session, SessionOptions};

// Re-export the pieces users need to drive the engine programmatically.
pub use mosaic_sql::{
    parse, Expr, FromClause, JoinClause, JoinKind, SelectStmt, Statement, TableRef, Visibility,
};
pub use mosaic_stats::{Binner, IpfConfig, Marginal};
pub use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
pub use mosaic_swg::SwgConfig;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MosaicError>;
