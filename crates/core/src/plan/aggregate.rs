//! Vectorized hash aggregation.
//!
//! Group keys are dictionary-encoded per column into dense `u32` codes
//! (no per-row `Vec<Value>` materialization), aggregates accumulate
//! through the grouped kernels in `mosaic_storage::kernels`, and only the
//! final per-group outputs round-trip through [`Value`] — mirroring the
//! row-at-a-time reference in `exec.rs` value-for-value, including its
//! error messages and its Int/Float output-typing rules.

use std::collections::HashMap;

use mosaic_sql::{AggFunc, Expr, SelectItem};
use mosaic_storage::kernels;
use mosaic_storage::{Column, DataType, Table, Value};

use crate::plan::vector;
use crate::{MosaicError, Result};

/// Execute the aggregate shape of a SELECT over an already-filtered
/// table. `weights` realize the paper's §5.3 weighted-aggregate rewrite.
pub(crate) fn execute(
    items: &[SelectItem],
    group_by: &[Expr],
    table: &Table,
    weights: Option<&[f64]>,
) -> Result<Table> {
    let n = table.num_rows();
    // 1. Group identification.
    let (group_ids, rep_rows, key_cols) = if group_by.is_empty() {
        (vec![0u32; n], Vec::new(), Vec::new())
    } else {
        let key_cols: Vec<Column> = group_by
            .iter()
            .map(|e| vector::eval_expr(e, table))
            .collect::<Result<_>>()?;
        let (ids, reps) = compute_group_ids(&key_cols);
        (ids, reps, key_cols)
    };
    let n_groups = if group_by.is_empty() {
        1
    } else {
        rep_rows.len()
    };

    // 2. Per-item, per-group output values.
    let mut fields = Vec::with_capacity(items.len());
    let mut value_rows: Vec<Vec<Value>> = vec![Vec::new(); n_groups];
    for item in items {
        let expr = match item {
            SelectItem::Wildcard => {
                return Err(MosaicError::Execution(
                    "SELECT * cannot be combined with GROUP BY / aggregates".into(),
                ))
            }
            SelectItem::Expr { expr, .. } => expr,
        };
        if expr.contains_aggregate() {
            // Compute every distinct base aggregate in the expression
            // vectorized, then fold the outer arithmetic per group.
            let mut base: Vec<(Expr, Vec<Value>)> = Vec::new();
            collect_aggregates(expr, &mut base)?;
            for (agg_expr, out) in &mut base {
                let Expr::Agg { func, arg } = agg_expr else {
                    unreachable!("collect_aggregates only collects Agg nodes")
                };
                *out =
                    compute_aggregate(*func, arg.as_deref(), table, &group_ids, n_groups, weights)?;
            }
            for (gi, row) in value_rows.iter_mut().enumerate() {
                row.push(eval_over_groups(expr, gi, &base)?);
            }
        } else {
            let pos = group_by.iter().position(|g| g == expr).ok_or_else(|| {
                MosaicError::Execution(format!(
                    "projection {} is neither an aggregate nor a GROUP BY expression",
                    expr.default_name()
                ))
            })?;
            for (gi, row) in value_rows.iter_mut().enumerate() {
                row.push(key_cols[pos].value(rep_rows[gi]));
            }
        }
        fields.push(super::output_name(item));
    }
    super::assemble_value_rows(&fields, &value_rows)
}

/// Dictionary-encode each key column, then iteratively combine per-column
/// codes into dense group ids in first-appearance order. Returns the
/// per-row group id plus each group's first row index.
fn compute_group_ids(key_cols: &[Column]) -> (Vec<u32>, Vec<usize>) {
    let n = key_cols.first().map_or(0, Column::len);
    let mut ids = encode_column(&key_cols[0]);
    for col in &key_cols[1..] {
        let next = encode_column(col);
        // Combine (ids, next) pairs into fresh dense codes.
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        for i in 0..n {
            let key = (ids[i], next[i]);
            let new_len = index.len() as u32;
            let code = *index.entry(key).or_insert(new_len);
            ids[i] = code;
        }
    }
    // Densify to first-appearance order (single-column dictionaries and
    // the pairwise combiner both already assign in appearance order, but
    // re-densifying also yields the representative rows).
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut reps = Vec::new();
    for (row, id) in ids.iter_mut().enumerate() {
        let new_len = remap.len() as u32;
        let code = *remap.entry(*id).or_insert_with(|| {
            reps.push(row);
            new_len
        });
        *id = code;
    }
    (ids, reps)
}

/// Per-column dictionary codes. Equality must match `Value` equality
/// within the column's type: exact for ints/bools/strings, bit-pattern
/// for floats (`Value::PartialEq` compares floats by `to_bits`).
fn encode_column(col: &Column) -> Vec<u32> {
    let n = col.len();
    let mut codes = vec![0u32; n];
    const NULL: u32 = 0;
    if let Some(data) = col.i64_data() {
        let mut dict: HashMap<i64, u32> = HashMap::new();
        for (i, &v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) {
                NULL
            } else {
                let next = dict.len() as u32 + 1;
                *dict.entry(v).or_insert(next)
            };
        }
    } else if let Some(data) = col.f64_data() {
        let mut dict: HashMap<u64, u32> = HashMap::new();
        for (i, &v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) {
                NULL
            } else {
                let next = dict.len() as u32 + 1;
                *dict.entry(v.to_bits()).or_insert(next)
            };
        }
    } else if let Some(data) = col.str_data() {
        let mut dict: HashMap<&str, u32> = HashMap::new();
        for (i, v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) {
                NULL
            } else {
                let next = dict.len() as u32 + 1;
                *dict.entry(v.as_str()).or_insert(next)
            };
        }
    } else if let Some(data) = col.bool_data() {
        for (i, &v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) { NULL } else { v as u32 + 1 };
        }
    }
    codes
}

/// Collect the distinct `Agg` nodes of an aggregate expression, erroring
/// on shapes the reference evaluator also rejects.
fn collect_aggregates(expr: &Expr, out: &mut Vec<(Expr, Vec<Value>)>) -> Result<()> {
    match expr {
        Expr::Agg { .. } => {
            if !out.iter().any(|(e, _)| e == expr) {
                out.push((expr.clone(), Vec::new()));
            }
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out)?;
            collect_aggregates(right, out)
        }
        Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        Expr::Literal(_) => Ok(()),
        other => Err(MosaicError::Execution(format!(
            "expression {} mixes aggregates with row-level terms",
            other.default_name()
        ))),
    }
}

/// Evaluate the non-aggregate shell of an item for one group, with every
/// `Agg` node replaced by its precomputed per-group value.
fn eval_over_groups(expr: &Expr, gi: usize, base: &[(Expr, Vec<Value>)]) -> Result<Value> {
    match expr {
        Expr::Agg { .. } => Ok(base
            .iter()
            .find(|(e, _)| e == expr)
            .expect("collected above")
            .1[gi]
            .clone()),
        Expr::Binary { left, op, right } => {
            let l = eval_over_groups(left, gi, base)?;
            let r = eval_over_groups(right, gi, base)?;
            crate::eval::eval_row(
                &Expr::Binary {
                    left: Box::new(Expr::Literal(l)),
                    op: *op,
                    right: Box::new(Expr::Literal(r)),
                },
                None,
                0,
            )
        }
        Expr::Unary { op, expr } => {
            let v = eval_over_groups(expr, gi, base)?;
            crate::eval::eval_row(
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(Expr::Literal(v)),
                },
                None,
                0,
            )
        }
        Expr::Literal(v) => Ok(v.clone()),
        other => Err(MosaicError::Execution(format!(
            "expression {} mixes aggregates with row-level terms",
            other.default_name()
        ))),
    }
}

/// Compute one base aggregate for every group through the grouped
/// kernels.
fn compute_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    table: &Table,
    group_ids: &[u32],
    n_groups: usize,
    weights: Option<&[f64]>,
) -> Result<Vec<Value>> {
    match func {
        AggFunc::Count => {
            let arg_col = arg.map(|e| vector::eval_expr(e, table)).transpose()?;
            let mut wsums = vec![0.0; n_groups];
            let mut counts = vec![0u64; n_groups];
            kernels::group_count(
                arg_col.as_ref().and_then(Column::validity),
                group_ids,
                weights,
                &mut wsums,
                &mut counts,
            );
            Ok((0..n_groups)
                .map(|g| {
                    if weights.is_none() {
                        Value::Int(wsums[g] as i64)
                    } else {
                        Value::Float(wsums[g])
                    }
                })
                .collect())
        }
        AggFunc::Sum | AggFunc::Avg => {
            let e = arg.ok_or_else(|| {
                MosaicError::Execution(format!("{}(*) requires an argument", func.name()))
            })?;
            let col = vector::eval_expr(e, table)?;
            let mut sums = vec![0.0; n_groups];
            let mut wsums = vec![0.0; n_groups];
            let mut counts = vec![0u64; n_groups];
            let all_int = col.data_type() == DataType::Int;
            match col.data_type() {
                DataType::Int if weights.is_none() => {
                    kernels::group_sum_i64(
                        col.i64_data().expect("typed"),
                        col.validity(),
                        group_ids,
                        &mut sums,
                        &mut counts,
                    );
                    for (w, &c) in wsums.iter_mut().zip(&counts) {
                        *w = c as f64;
                    }
                }
                DataType::Int => {
                    let widened = kernels::widen_i64(col.i64_data().expect("typed"));
                    kernels::group_sum_f64(
                        &widened,
                        col.validity(),
                        group_ids,
                        weights,
                        &mut sums,
                        &mut wsums,
                        &mut counts,
                    );
                }
                DataType::Float => {
                    kernels::group_sum_f64(
                        col.f64_data().expect("typed"),
                        col.validity(),
                        group_ids,
                        weights,
                        &mut sums,
                        &mut wsums,
                        &mut counts,
                    );
                }
                DataType::Bool => {
                    let widened: Vec<f64> = col
                        .bool_data()
                        .expect("typed")
                        .iter()
                        .map(|&b| b as u8 as f64)
                        .collect();
                    kernels::group_sum_f64(
                        &widened,
                        col.validity(),
                        group_ids,
                        weights,
                        &mut sums,
                        &mut wsums,
                        &mut counts,
                    );
                }
                DataType::Str => {
                    // Any non-null string makes some group error in the
                    // reference path, which fails the whole statement.
                    if col.null_count() < col.len() {
                        return Err(MosaicError::Execution(format!(
                            "{} over non-numeric value",
                            func.name()
                        )));
                    }
                }
            }
            Ok((0..n_groups)
                .map(|g| {
                    if counts[g] == 0 {
                        return Value::Null;
                    }
                    match func {
                        AggFunc::Sum => {
                            if weights.is_none() && all_int {
                                Value::Int(sums[g] as i64)
                            } else {
                                Value::Float(sums[g])
                            }
                        }
                        AggFunc::Avg => Value::Float(sums[g] / wsums[g]),
                        _ => unreachable!(),
                    }
                })
                .collect())
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg.ok_or_else(|| {
                MosaicError::Execution(format!("{}(*) requires an argument", func.name()))
            })?;
            let col = vector::eval_expr(e, table)?;
            compute_min_max(func, &col, group_ids, n_groups)
        }
    }
}

fn compute_min_max(
    func: AggFunc,
    col: &Column,
    group_ids: &[u32],
    n_groups: usize,
) -> Result<Vec<Value>> {
    let mut counts = vec![0u64; n_groups];
    match col.data_type() {
        DataType::Int => {
            // The reference compares through sql_cmp's f64 coercion with
            // first-wins ties, so ints beyond 2^53 (where f64 collapses
            // neighbours) must use the scalar reference loop to match.
            let data = col.i64_data().expect("typed");
            if data.iter().any(|v| v.unsigned_abs() >= (1u64 << 53)) {
                return min_max_by_cmp(func, col, group_ids, n_groups);
            }
            let mut mins = vec![i64::MAX; n_groups];
            let mut maxs = vec![i64::MIN; n_groups];
            kernels::group_min_max_i64(
                col.i64_data().expect("typed"),
                col.validity(),
                group_ids,
                &mut mins,
                &mut maxs,
                &mut counts,
            );
            Ok((0..n_groups)
                .map(|g| {
                    if counts[g] == 0 {
                        Value::Null
                    } else if func == AggFunc::Min {
                        Value::Int(mins[g])
                    } else {
                        Value::Int(maxs[g])
                    }
                })
                .collect())
        }
        DataType::Float => {
            let data = col.f64_data().expect("typed");
            if data.iter().any(|v| v.is_nan()) {
                // NaN compares as incomparable in sql_cmp (the earlier
                // value survives); delegate to the scalar reference loop.
                return min_max_by_cmp(func, col, group_ids, n_groups);
            }
            let mut mins = vec![f64::INFINITY; n_groups];
            let mut maxs = vec![f64::NEG_INFINITY; n_groups];
            kernels::group_min_max_f64(
                data,
                col.validity(),
                group_ids,
                &mut mins,
                &mut maxs,
                &mut counts,
            );
            Ok((0..n_groups)
                .map(|g| {
                    if counts[g] == 0 {
                        Value::Null
                    } else if func == AggFunc::Min {
                        Value::Float(mins[g])
                    } else {
                        Value::Float(maxs[g])
                    }
                })
                .collect())
        }
        DataType::Str | DataType::Bool => min_max_by_cmp(func, col, group_ids, n_groups),
    }
}

/// Scalar min/max replicating the reference comparison semantics
/// (`sql_cmp`, first-wins on incomparable values).
fn min_max_by_cmp(
    func: AggFunc,
    col: &Column,
    group_ids: &[u32],
    n_groups: usize,
) -> Result<Vec<Value>> {
    let mut best: Vec<Value> = vec![Value::Null; n_groups];
    for row in 0..col.len() {
        let v = col.value(row);
        if v.is_null() {
            continue;
        }
        let b = &mut best[group_ids[row] as usize];
        if b.is_null() {
            *b = v;
            continue;
        }
        let keep_new = match v.sql_cmp(b) {
            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
            _ => false,
        };
        if keep_new {
            *b = v;
        }
    }
    Ok(best)
}
