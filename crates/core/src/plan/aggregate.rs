//! Vectorized hash aggregation, split into a mergeable partial phase and
//! a radix-partitioned parallel merge phase.
//!
//! Group keys are dictionary-encoded per column into dense `u32` codes
//! (no per-row `Vec<Value>` materialization; string keys reuse their
//! column's own dictionary codes), aggregates accumulate through the
//! grouped kernels in `mosaic_storage::kernels`, and only the final
//! per-group outputs round-trip through [`Value`] — mirroring the
//! row-at-a-time reference in `exec.rs` value-for-value, including its
//! error messages and its Int/Float output-typing rules.
//!
//! The split exists for the morsel-driven driver in
//! [`crate::plan::parallel`]: each worker computes a [`MorselPartial`]
//! over its morsel ([`compute_partial`]), and [`merge_finalize`] unifies
//! the per-morsel group dictionaries, hash-partitions the global group
//! space into P radix partitions by group-key hash, and merges each
//! partition independently on the shared worker pool — folding partial
//! states **in morsel order** within every group, so the result is
//! independent of which thread ran which morsel *and* of P (partition
//! outputs are scattered back into global first-appearance order).
//! Executing a table as one single morsel with P = 1 reproduces the
//! previous whole-table vectorized path bit-for-bit.

use std::collections::HashMap;
use std::sync::Arc;

use mosaic_sql::{AggFunc, Expr, SelectItem};
use mosaic_storage::kernels::{self, AggState};
use mosaic_storage::{Column, DataType, Dictionary, Table, Value};

use crate::plan::vector;
use crate::{MosaicError, Result};

/// Execute the aggregate shape of a SELECT over an already-filtered
/// table. `weights` realize the paper's §5.3 weighted-aggregate rewrite;
/// `params` bind any positional-parameter placeholders.
pub(crate) fn execute(
    items: &[SelectItem],
    group_by: &[Expr],
    table: &Table,
    weights: Option<&[f64]>,
    params: &[Value],
) -> Result<Table> {
    let partial = compute_partial(items, group_by, table, weights, params).map_err(|(_, e)| e)?;
    merge_finalize(items, weights.is_some(), &[partial], params, 1, 1)
}

/// A result whose error carries the rank of the stage that failed
/// (0 = group keys, `1 + i` = SELECT item `i`). The morsel driver picks
/// the error with the lowest (rank, morsel) pair, which reproduces the
/// stage-by-stage error order of a whole-table pass.
pub(crate) type Ranked<T> = std::result::Result<T, (u32, MosaicError)>;

/// The per-morsel output of the partial aggregation phase.
pub(crate) struct MorselPartial {
    /// Per local group (in first-appearance order), the evaluated
    /// GROUP BY key tuple. A single empty tuple for global aggregates.
    /// Empty when `codes` carries the group identities instead.
    keys: Vec<Vec<Value>>,
    /// Per local group, a deterministic hash of its key tuple (the radix
    /// partitioning key of the merge phase). Equal tuples always hash
    /// equal, across morsels and across runs. Empty when `codes` is set.
    hashes: Vec<u64>,
    /// Fast-path group identity: when the single GROUP BY key evaluates
    /// to a dictionary-encoded column, each local group is its
    /// dictionary code (`dict.len()` encodes the NULL group) and no key
    /// tuples are materialized. Every morsel slices the same column, so
    /// the merge unifies codes through a dense code-indexed table with
    /// no hashing, and materializes one string per *global* group at
    /// output time instead of one per local group.
    codes: Option<(Arc<Dictionary>, Vec<u32>)>,
    /// Per SELECT item, its partial state.
    items: Vec<ItemPartial>,
}

enum ItemPartial {
    /// The item projects GROUP BY expression `pos`.
    Key(usize),
    /// The item aggregates: partial state per distinct base aggregate.
    Aggs(Vec<(Expr, AggPartial)>),
}

enum AggPartial {
    /// COUNT / SUM / AVG accumulators. `int_typed` records whether the
    /// argument column evaluated to Int in this morsel (drives the
    /// Int-vs-Float output typing of unweighted SUM).
    Num { state: AggState, int_typed: bool },
    /// MIN / MAX best-so-far per local group (`Value::Null` = no
    /// qualifying row), under `sql_cmp` first-wins semantics.
    MinMax(Vec<Value>),
}

/// Compute the partial aggregate state of one (already filtered) morsel.
/// Group keys and items are processed in SELECT order, and errors carry
/// the failing stage's rank, so the error the driver ultimately selects
/// matches what the whole-table executor would report on the same data.
pub(crate) fn compute_partial(
    items: &[SelectItem],
    group_by: &[Expr],
    table: &Table,
    weights: Option<&[f64]>,
    params: &[Value],
) -> Ranked<MorselPartial> {
    let n = table.num_rows();
    // Positional parameters bind up front; grouped-projection matching
    // below compares the *bound* forms, so `GROUP BY x + ?` pairs with
    // the projection `x + ?` even though the two placeholders carry
    // different lexical indices.
    let group_by: Vec<std::borrow::Cow<'_, Expr>> = group_by
        .iter()
        .map(|e| super::bind_expr(e, params))
        .collect::<Result<_>>()
        .map_err(|e| (0, e))?;
    // 1. Group identification (stage rank 0).
    let (group_ids, rep_rows, key_cols) = if group_by.is_empty() {
        (vec![0u32; n], Vec::new(), Vec::new())
    } else {
        let key_cols: Vec<Column> = group_by
            .iter()
            .map(|e| vector::eval_expr(e, table))
            .collect::<Result<_>>()
            .map_err(|e| (0, e))?;
        let (ids, reps) = compute_group_ids(&key_cols);
        (ids, reps, key_cols)
    };
    // Dictionary fast path: a single dict-encoded key column identifies
    // every local group by code alone — skip the per-group Value-tuple
    // materialization and hashing entirely (the dominant merge-side cost
    // when groups are numerous).
    let dict_codes = match &key_cols[..] {
        [col] => col.dict_parts().map(|(codes, dict)| {
            let kcodes = rep_rows
                .iter()
                .map(|&r| {
                    if col.is_null(r) {
                        dict.len() as u32
                    } else {
                        codes[r]
                    }
                })
                .collect();
            (Arc::clone(dict), kcodes)
        }),
        _ => None,
    };
    let (n_groups, keys) = if group_by.is_empty() {
        (1, vec![Vec::new()])
    } else if dict_codes.is_some() {
        (rep_rows.len(), Vec::new())
    } else {
        let keys = rep_rows
            .iter()
            .map(|&row| key_cols.iter().map(|c| c.value(row)).collect())
            .collect::<Vec<Vec<Value>>>();
        (rep_rows.len(), keys)
    };

    // 2. Per-item partial state (item `ii` is stage rank `1 + ii`).
    let mut item_partials = Vec::with_capacity(items.len());
    for (ii, item) in items.iter().enumerate() {
        let rank = 1 + ii as u32;
        let expr = match item {
            SelectItem::Wildcard => {
                return Err((
                    rank,
                    MosaicError::Execution(
                        "SELECT * cannot be combined with GROUP BY / aggregates".into(),
                    ),
                ))
            }
            SelectItem::Expr { expr, .. } => expr,
        };
        let expr = super::bind_expr(expr, params).map_err(|e| (rank, e))?;
        if expr.contains_aggregate() {
            let mut base: Vec<(Expr, Vec<Value>)> = Vec::new();
            collect_aggregates(&expr, &mut base).map_err(|e| (rank, e))?;
            let mut states = Vec::with_capacity(base.len());
            for (agg_expr, _) in &base {
                let Expr::Agg { func, arg } = agg_expr else {
                    unreachable!("collect_aggregates only collects Agg nodes")
                };
                let state =
                    partial_aggregate(*func, arg.as_deref(), table, &group_ids, n_groups, weights)
                        .map_err(|e| (rank, e))?;
                states.push((agg_expr.clone(), state));
            }
            item_partials.push(ItemPartial::Aggs(states));
        } else {
            let pos = group_by
                .iter()
                .position(|g| g.as_ref() == expr.as_ref())
                .ok_or_else(|| {
                    (
                        rank,
                        MosaicError::Execution(format!(
                            "projection {} is neither an aggregate nor a GROUP BY expression",
                            expr.default_name()
                        )),
                    )
                })?;
            item_partials.push(ItemPartial::Key(pos));
        }
    }
    let hashes = keys.iter().map(|k| key_hash(k)).collect();
    Ok(MorselPartial {
        keys,
        hashes,
        codes: dict_codes,
        items: item_partials,
    })
}

/// Deterministic hash of a group-key tuple. Uses `DefaultHasher::new()`
/// (fixed SipHash keys — stable within a build, unlike `RandomState`)
/// with floats hashed by bit pattern, matching the bit-pattern equality
/// that [`encode_column`] and `Value::eq` use for float group keys.
fn key_hash(key: &[Value]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in key {
        match v {
            Value::Null => 0u8.hash(&mut h),
            Value::Bool(b) => {
                1u8.hash(&mut h);
                b.hash(&mut h);
            }
            Value::Int(i) => {
                2u8.hash(&mut h);
                i.hash(&mut h);
            }
            Value::Float(f) => {
                3u8.hash(&mut h);
                f.to_bits().hash(&mut h);
            }
            Value::Str(s) => {
                4u8.hash(&mut h);
                s.hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Cheap deterministic mix of a dictionary code into a radix-partition
/// hash (the splitmix64 finalizer). Only partition assignment depends
/// on it, and the partitioned merge is partition-layout-invariant, so
/// it need not agree with [`key_hash`] on the materialized-key path.
fn mix_code(c: u32) -> u64 {
    let mut x = c as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Minimum global group count for the partitioned merge to engage:
/// below this, partition-layout bookkeeping costs more than the merge
/// itself, so the single-partition path runs regardless of the setting.
const MIN_PARTITION_GROUPS: usize = 64;

/// Unify the per-morsel group dictionaries (global group order =
/// first-appearance order across morsels, which for a single morsel is
/// the serial order), hash-partition the group space into `partitions`
/// radix partitions, merge each partition independently on the shared
/// worker pool (folding partial states in morsel order within every
/// group), and assemble the output table in global group order.
///
/// The partition count never changes results: per-group fold order is
/// morsel order for any P, and partition outputs are scattered back to
/// first-appearance positions before assembly.
pub(crate) fn merge_finalize(
    items: &[SelectItem],
    weighted: bool,
    partials: &[MorselPartial],
    params: &[Value],
    threads: usize,
    partitions: usize,
) -> Result<Table> {
    // 1. Global group dictionary + per-morsel local→global maps (serial:
    // first-appearance order is inherently sequential). When every
    // morsel identifies its groups by dictionary code over the same
    // Arc'd dictionary (single dict-encoded GROUP BY key), unification
    // is a dense code-indexed table — no hashing, no tuple compares, and
    // key strings materialize once per global group instead of once per
    // (morsel, group) pair. Otherwise, a hash map over key tuples.
    let fast_dict = partials
        .first()
        .and_then(|p| p.codes.as_ref())
        .map(|(d, _)| d)
        .filter(|d| {
            partials
                .iter()
                .all(|p| matches!(&p.codes, Some((pd, _)) if Arc::ptr_eq(pd, d)))
        });
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut ghash: Vec<u64> = Vec::new();
    let mut maps: Vec<Vec<u32>> = Vec::with_capacity(partials.len());
    if let Some(dict) = fast_dict {
        let null_code = dict.len() as u32;
        let mut code_gid: Vec<u32> = vec![u32::MAX; dict.len() + 1];
        let mut gcodes: Vec<u32> = Vec::new();
        for partial in partials {
            let (_, codes) = partial.codes.as_ref().expect("checked by fast_dict");
            let mut map = Vec::with_capacity(codes.len());
            for &c in codes {
                let slot = &mut code_gid[c as usize];
                if *slot == u32::MAX {
                    *slot = gcodes.len() as u32;
                    gcodes.push(c);
                }
                map.push(*slot);
            }
            maps.push(map);
        }
        order = gcodes
            .iter()
            .map(|&c| {
                vec![if c == null_code {
                    Value::Null
                } else {
                    Value::Str(dict.get(c).to_string())
                }]
            })
            .collect();
        ghash = gcodes.iter().map(|&c| mix_code(c)).collect();
    } else {
        let mut index: HashMap<&[Value], u32> = HashMap::new();
        for partial in partials {
            let mut map = Vec::with_capacity(partial.keys.len());
            for (l, key) in partial.keys.iter().enumerate() {
                let next = order.len() as u32;
                let gid = *index.entry(key.as_slice()).or_insert_with(|| {
                    order.push(key.clone());
                    ghash.push(partial.hashes[l]);
                    next
                });
                map.push(gid);
            }
            maps.push(map);
        }
    }
    let n_global = order.len();

    // 2. Radix partition layout. Groups keep ascending (= first
    // appearance) order within each partition; each morsel's local
    // groups scatter into per-partition (local, dense) pairs in one pass
    // over the maps.
    let p = if partitions > 1 && n_global >= MIN_PARTITION_GROUPS {
        partitions
    } else {
        1
    };
    let part_of: Vec<usize> = ghash.iter().map(|h| (h % p as u64) as usize).collect();
    let mut pgroups: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut pdense: Vec<u32> = vec![0; n_global];
    for (g, &pi) in part_of.iter().enumerate() {
        pdense[g] = pgroups[pi].len() as u32;
        pgroups[pi].push(g as u32);
    }
    let mut ppairs: Vec<Vec<Vec<(u32, u32)>>> = vec![vec![Vec::new(); partials.len()]; p];
    for (mi, map) in maps.iter().enumerate() {
        for (l, &g) in map.iter().enumerate() {
            ppairs[part_of[g as usize]][mi].push((l as u32, pdense[g as usize]));
        }
    }

    // Pre-bind aggregate item shells the same way the partial phase did,
    // so they match the stored (bound) base aggregates. The partial
    // phase already bound these expressions, so this cannot newly fail.
    let mut bound: Vec<Option<std::borrow::Cow<'_, Expr>>> = Vec::with_capacity(items.len());
    for (ii, item) in items.iter().enumerate() {
        match first_item_partial(partials, ii) {
            ItemPartial::Key(_) => bound.push(None),
            ItemPartial::Aggs(_) => {
                let SelectItem::Expr { expr, .. } = item else {
                    unreachable!("wildcards were rejected in the partial phase")
                };
                bound.push(Some(super::bind_expr(expr, params)?));
            }
        }
    }

    // 3. Merge every partition independently (p == 1 runs inline).
    let results = super::parallel::run_ordered(p, threads, |pi| {
        merge_partition(
            items,
            weighted,
            partials,
            &bound,
            &order,
            &pgroups[pi],
            &ppairs[pi],
        )
    });

    // Deterministic error selection: each partition reports its first
    // error in (item, global group) order, so the minimum across
    // partitions is exactly the error a serial pass would hit first.
    let mut outs = Vec::with_capacity(p);
    let mut first_err: Option<(usize, u32, MosaicError)> = None;
    for r in results {
        match r {
            Ok(cols) => outs.push(cols),
            Err(e) => {
                if first_err
                    .as_ref()
                    .is_none_or(|(ii, g, _)| (e.0, e.1) < (*ii, *g))
                {
                    first_err = Some(e);
                }
                outs.push(Vec::new());
            }
        }
    }
    if let Some((_, _, e)) = first_err {
        return Err(e);
    }

    // 4. Scatter partition outputs back into global group order (making
    // the result invariant in P), then assemble. Partitions hold disjoint
    // group sets, so draining each partition's columns in item order
    // fills every group's row in item order.
    let mut value_rows: Vec<Vec<Value>> = vec![Vec::with_capacity(items.len()); n_global];
    for (out, groups) in outs.iter_mut().zip(&pgroups) {
        for col in out.drain(..) {
            for (&g, v) in groups.iter().zip(col) {
                value_rows[g as usize].push(v);
            }
        }
    }
    let fields: Vec<String> = items.iter().map(super::output_name).collect();
    super::assemble_value_rows(&fields, &value_rows)
}

/// Merge and finalize one radix partition. `pgroups` lists the
/// partition's global groups (ascending), `ppairs[mi]` the morsel-local →
/// partition-dense index pairs of morsel `mi`. Returns one output column
/// (over the partition's groups) per item, or the partition's first
/// error in (item, global group) order.
#[allow(clippy::type_complexity)]
fn merge_partition(
    items: &[SelectItem],
    weighted: bool,
    partials: &[MorselPartial],
    bound: &[Option<std::borrow::Cow<'_, Expr>>],
    order: &[Vec<Value>],
    pgroups: &[u32],
    ppairs: &[Vec<(u32, u32)>],
) -> std::result::Result<Vec<Vec<Value>>, (usize, u32, MosaicError)> {
    let n_local = pgroups.len();
    let mut cols = Vec::with_capacity(items.len());
    for (ii, bound_item) in bound.iter().enumerate() {
        match first_item_partial(partials, ii) {
            ItemPartial::Key(pos) => {
                cols.push(
                    pgroups
                        .iter()
                        .map(|&g| order[g as usize][*pos].clone())
                        .collect(),
                );
            }
            ItemPartial::Aggs(bases) => {
                let mut merged: Vec<(Expr, Vec<Value>)> = Vec::with_capacity(bases.len());
                for (bi, (agg_expr, _)) in bases.iter().enumerate() {
                    let Expr::Agg { func, .. } = agg_expr else {
                        unreachable!("collect_aggregates only collects Agg nodes")
                    };
                    let values =
                        merge_base_aggregate(*func, weighted, partials, ppairs, ii, bi, n_local);
                    merged.push((agg_expr.clone(), values));
                }
                let expr = bound_item.as_ref().expect("aggregate items are pre-bound");
                let mut out = Vec::with_capacity(n_local);
                for (dense, &g) in pgroups.iter().enumerate() {
                    out.push(eval_over_groups(expr, dense, &merged).map_err(|e| (ii, g, e))?);
                }
                cols.push(out);
            }
        }
    }
    Ok(cols)
}

/// The item partial of item `ii` in the first morsel (every morsel has
/// the same item structure — it depends only on the statement).
fn first_item_partial(partials: &[MorselPartial], ii: usize) -> &ItemPartial {
    &partials.first().expect("at least one morsel partial").items[ii]
}

/// Merge base aggregate `bi` of item `ii` across all morsels (in morsel
/// order) and finalize it into one `Value` per group of this partition.
/// Each morsel contributes at most one local group per target group, so
/// folding morsels in order gives every group the same addition order as
/// a dense whole-space merge — the partition count cannot perturb floats.
fn merge_base_aggregate(
    func: AggFunc,
    weighted: bool,
    partials: &[MorselPartial],
    ppairs: &[Vec<(u32, u32)>],
    ii: usize,
    bi: usize,
    n_local: usize,
) -> Vec<Value> {
    let locals = partials.iter().zip(ppairs).map(|(p, pairs)| {
        let ItemPartial::Aggs(bases) = &p.items[ii] else {
            unreachable!("item structure is morsel-invariant")
        };
        (&bases[bi].1, pairs.as_slice())
    });
    match func {
        AggFunc::Count | AggFunc::Sum | AggFunc::Avg => {
            let mut state = AggState::new(n_local);
            let mut int_typed = true;
            for (local, pairs) in locals {
                let AggPartial::Num {
                    state: ls,
                    int_typed: li,
                } = local
                else {
                    unreachable!("numeric aggregate has numeric partials")
                };
                // A morsel whose argument column came out all-NULL
                // reports Int (the evaluator's degenerate-type rule); it
                // contributes no rows, so only real Int morsels keep the
                // output integral — exactly the whole-column rule.
                int_typed &= *li;
                state.merge_pairs(ls, pairs);
            }
            (0..n_local)
                .map(|g| match func {
                    AggFunc::Count => {
                        if weighted {
                            Value::Float(state.wsums[g])
                        } else {
                            Value::Int(state.wsums[g] as i64)
                        }
                    }
                    AggFunc::Sum => {
                        if state.counts[g] == 0 {
                            Value::Null
                        } else if !weighted && int_typed {
                            Value::Int(state.sums[g] as i64)
                        } else {
                            Value::Float(state.sums[g])
                        }
                    }
                    AggFunc::Avg => {
                        if state.counts[g] == 0 {
                            Value::Null
                        } else {
                            Value::Float(state.sums[g] / state.wsums[g])
                        }
                    }
                    _ => unreachable!(),
                })
                .collect()
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Vec<Value> = vec![Value::Null; n_local];
            for (local, pairs) in locals {
                let AggPartial::MinMax(lb) = local else {
                    unreachable!("min/max aggregate has min/max partials")
                };
                for &(l, d) in pairs {
                    let v = &lb[l as usize];
                    if v.is_null() {
                        continue;
                    }
                    let b = &mut best[d as usize];
                    if b.is_null() {
                        *b = v.clone();
                        continue;
                    }
                    // First-wins on incomparable values, like the scalar
                    // reference loop — merging per-morsel bests in morsel
                    // order preserves the sequential-scan outcome.
                    let keep_new = match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                        Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                        _ => false,
                    };
                    if keep_new {
                        *b = v.clone();
                    }
                }
            }
            best
        }
    }
}

/// Dictionary-encode each key column, then iteratively combine per-column
/// codes into dense group ids in first-appearance order. Returns the
/// per-row group id plus each group's first row index.
fn compute_group_ids(key_cols: &[Column]) -> (Vec<u32>, Vec<usize>) {
    let n = key_cols.first().map_or(0, Column::len);
    let mut ids = encode_column(&key_cols[0]);
    for col in &key_cols[1..] {
        let next = encode_column(col);
        // Combine (ids, next) pairs into fresh dense codes.
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        for i in 0..n {
            let key = (ids[i], next[i]);
            let new_len = index.len() as u32;
            let code = *index.entry(key).or_insert(new_len);
            ids[i] = code;
        }
    }
    // Densify to first-appearance order (single-column dictionaries and
    // the pairwise combiner both already assign in appearance order, but
    // re-densifying also yields the representative rows).
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut reps = Vec::new();
    for (row, id) in ids.iter_mut().enumerate() {
        let new_len = remap.len() as u32;
        let code = *remap.entry(*id).or_insert_with(|| {
            reps.push(row);
            new_len
        });
        *id = code;
    }
    (ids, reps)
}

/// Per-column dictionary codes. Equality must match `Value` equality
/// within the column's type: exact for ints/bools/strings, bit-pattern
/// for floats (`Value::PartialEq` compares floats by `to_bits`).
fn encode_column(col: &Column) -> Vec<u32> {
    let n = col.len();
    let mut codes = vec![0u32; n];
    const NULL: u32 = 0;
    if let Some(data) = col.i64_data() {
        let mut dict: HashMap<i64, u32> = HashMap::new();
        for (i, &v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) {
                NULL
            } else {
                let next = dict.len() as u32 + 1;
                *dict.entry(v).or_insert(next)
            };
        }
    } else if let Some(data) = col.f64_data() {
        let mut dict: HashMap<u64, u32> = HashMap::new();
        for (i, &v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) {
                NULL
            } else {
                let next = dict.len() as u32 + 1;
                *dict.entry(v.to_bits()).or_insert(next)
            };
        }
    } else if let Some((data, _)) = col.dict_parts() {
        // Dictionary-encoded strings: the column's own codes already
        // identify distinct values, so no per-row string hashing at all.
        // (compute_group_ids re-densifies to first-appearance order, so
        // the dictionary's code order never leaks into group order.)
        for (i, &c) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) { NULL } else { c + 1 };
        }
    } else if let Some(data) = col.str_data() {
        let mut dict: HashMap<&str, u32> = HashMap::new();
        for (i, v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) {
                NULL
            } else {
                let next = dict.len() as u32 + 1;
                *dict.entry(v.as_str()).or_insert(next)
            };
        }
    } else if let Some(data) = col.bool_data() {
        for (i, &v) in data.iter().enumerate() {
            codes[i] = if col.is_null(i) { NULL } else { v as u32 + 1 };
        }
    }
    codes
}

/// Collect the distinct `Agg` nodes of an aggregate expression, erroring
/// on shapes the reference evaluator also rejects.
fn collect_aggregates(expr: &Expr, out: &mut Vec<(Expr, Vec<Value>)>) -> Result<()> {
    match expr {
        Expr::Agg { .. } => {
            if !out.iter().any(|(e, _)| e == expr) {
                out.push((expr.clone(), Vec::new()));
            }
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out)?;
            collect_aggregates(right, out)
        }
        Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        Expr::Literal(_) => Ok(()),
        other => Err(MosaicError::Execution(format!(
            "expression {} mixes aggregates with row-level terms",
            other.default_name()
        ))),
    }
}

/// Evaluate the non-aggregate shell of an item for one group, with every
/// `Agg` node replaced by its precomputed per-group value.
fn eval_over_groups(expr: &Expr, gi: usize, base: &[(Expr, Vec<Value>)]) -> Result<Value> {
    match expr {
        Expr::Agg { .. } => Ok(base
            .iter()
            .find(|(e, _)| e == expr)
            .expect("collected above")
            .1[gi]
            .clone()),
        Expr::Binary { left, op, right } => {
            let l = eval_over_groups(left, gi, base)?;
            let r = eval_over_groups(right, gi, base)?;
            crate::eval::eval_row(
                &Expr::Binary {
                    left: Box::new(Expr::Literal(l)),
                    op: *op,
                    right: Box::new(Expr::Literal(r)),
                },
                None,
                0,
            )
        }
        Expr::Unary { op, expr } => {
            let v = eval_over_groups(expr, gi, base)?;
            crate::eval::eval_row(
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(Expr::Literal(v)),
                },
                None,
                0,
            )
        }
        Expr::Literal(v) => Ok(v.clone()),
        other => Err(MosaicError::Execution(format!(
            "expression {} mixes aggregates with row-level terms",
            other.default_name()
        ))),
    }
}

/// Compute the partial state of one base aggregate over one morsel
/// through the grouped kernels.
fn partial_aggregate(
    func: AggFunc,
    arg: Option<&Expr>,
    table: &Table,
    group_ids: &[u32],
    n_groups: usize,
    weights: Option<&[f64]>,
) -> Result<AggPartial> {
    match func {
        AggFunc::Count => {
            let arg_col = arg.map(|e| vector::eval_expr(e, table)).transpose()?;
            let mut state = AggState::new(n_groups);
            kernels::group_count(
                arg_col.as_ref().and_then(Column::validity),
                group_ids,
                weights,
                &mut state.wsums,
                &mut state.counts,
            );
            Ok(AggPartial::Num {
                state,
                int_typed: false,
            })
        }
        AggFunc::Sum | AggFunc::Avg => {
            let e = arg.ok_or_else(|| {
                MosaicError::Execution(format!("{}(*) requires an argument", func.name()))
            })?;
            let col = vector::eval_expr(e, table)?;
            let mut state = AggState::new(n_groups);
            let int_typed = col.data_type() == DataType::Int;
            match col.data_type() {
                DataType::Int if weights.is_none() => {
                    kernels::group_sum_i64(
                        col.i64_data().expect("typed"),
                        col.validity(),
                        group_ids,
                        &mut state.sums,
                        &mut state.counts,
                    );
                    for (w, &c) in state.wsums.iter_mut().zip(&state.counts) {
                        *w = c as f64;
                    }
                }
                DataType::Int => {
                    let widened = kernels::widen_i64(col.i64_data().expect("typed"));
                    kernels::group_sum_f64(
                        &widened,
                        col.validity(),
                        group_ids,
                        weights,
                        &mut state.sums,
                        &mut state.wsums,
                        &mut state.counts,
                    );
                }
                DataType::Float => {
                    kernels::group_sum_f64(
                        col.f64_data().expect("typed"),
                        col.validity(),
                        group_ids,
                        weights,
                        &mut state.sums,
                        &mut state.wsums,
                        &mut state.counts,
                    );
                }
                DataType::Bool => {
                    let widened: Vec<f64> = col
                        .bool_data()
                        .expect("typed")
                        .iter()
                        .map(|&b| b as u8 as f64)
                        .collect();
                    kernels::group_sum_f64(
                        &widened,
                        col.validity(),
                        group_ids,
                        weights,
                        &mut state.sums,
                        &mut state.wsums,
                        &mut state.counts,
                    );
                }
                DataType::Str => {
                    // Any non-null string makes some group error in the
                    // reference path, which fails the whole statement.
                    // (An all-NULL argument never evaluates to Str.)
                    if col.null_count() < col.len() {
                        return Err(MosaicError::Execution(format!(
                            "{} over non-numeric value",
                            func.name()
                        )));
                    }
                }
            }
            Ok(AggPartial::Num { state, int_typed })
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg.ok_or_else(|| {
                MosaicError::Execution(format!("{}(*) requires an argument", func.name()))
            })?;
            let col = vector::eval_expr(e, table)?;
            compute_min_max(func, &col, group_ids, n_groups).map(AggPartial::MinMax)
        }
    }
}

fn compute_min_max(
    func: AggFunc,
    col: &Column,
    group_ids: &[u32],
    n_groups: usize,
) -> Result<Vec<Value>> {
    let mut counts = vec![0u64; n_groups];
    match col.data_type() {
        DataType::Int => {
            // The reference compares through sql_cmp's f64 coercion with
            // first-wins ties, so ints beyond 2^53 (where f64 collapses
            // neighbours) must use the scalar reference loop to match.
            // Below 2^53 the i64 and f64 orders agree, so the kernel and
            // the cmp loop pick identical bests — which also keeps this
            // per-morsel choice consistent with the whole-column one.
            let data = col.i64_data().expect("typed");
            if data.iter().any(|v| v.unsigned_abs() >= (1u64 << 53)) {
                return min_max_by_cmp(func, col, group_ids, n_groups);
            }
            let mut mins = vec![i64::MAX; n_groups];
            let mut maxs = vec![i64::MIN; n_groups];
            kernels::group_min_max_i64(
                col.i64_data().expect("typed"),
                col.validity(),
                group_ids,
                &mut mins,
                &mut maxs,
                &mut counts,
            );
            Ok((0..n_groups)
                .map(|g| {
                    if counts[g] == 0 {
                        Value::Null
                    } else if func == AggFunc::Min {
                        Value::Int(mins[g])
                    } else {
                        Value::Int(maxs[g])
                    }
                })
                .collect())
        }
        DataType::Float => {
            let data = col.f64_data().expect("typed");
            if data.iter().any(|v| v.is_nan()) {
                // NaN compares as incomparable in sql_cmp (the earlier
                // value survives); delegate to the scalar reference loop.
                return min_max_by_cmp(func, col, group_ids, n_groups);
            }
            let mut mins = vec![f64::INFINITY; n_groups];
            let mut maxs = vec![f64::NEG_INFINITY; n_groups];
            kernels::group_min_max_f64(
                data,
                col.validity(),
                group_ids,
                &mut mins,
                &mut maxs,
                &mut counts,
            );
            Ok((0..n_groups)
                .map(|g| {
                    if counts[g] == 0 {
                        Value::Null
                    } else if func == AggFunc::Min {
                        Value::Float(mins[g])
                    } else {
                        Value::Float(maxs[g])
                    }
                })
                .collect())
        }
        DataType::Str | DataType::Bool => min_max_by_cmp(func, col, group_ids, n_groups),
    }
}

/// Scalar min/max replicating the reference comparison semantics
/// (`sql_cmp`, first-wins on incomparable values).
fn min_max_by_cmp(
    func: AggFunc,
    col: &Column,
    group_ids: &[u32],
    n_groups: usize,
) -> Result<Vec<Value>> {
    let mut best: Vec<Value> = vec![Value::Null; n_groups];
    for row in 0..col.len() {
        let v = col.value(row);
        if v.is_null() {
            continue;
        }
        let b = &mut best[group_ids[row] as usize];
        if b.is_null() {
            *b = v;
            continue;
        }
        let keep_new = match v.sql_cmp(b) {
            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
            _ => false,
        };
        if keep_new {
            *b = v;
        }
    }
    Ok(best)
}
