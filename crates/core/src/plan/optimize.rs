//! The rule-based logical optimizer.
//!
//! [`optimize`] rewrites a [`LogicalPlan`] with three rules, reporting
//! which fired (the names surface in `EXPLAIN`):
//!
//! * **`constant_folding`** — every constant subexpression (no columns,
//!   no parameters, no aggregates) collapses to the literal the
//!   row-at-a-time reference evaluator produces for it, so folding can
//!   never change a value. Parameter-aware: at prepare time, subtrees
//!   containing `?` keep their placeholders while their constant
//!   siblings still fold (`v > ? + (1 + 1)` → `v > ?1 + 2`). Constant
//!   subtrees whose evaluation *errors* are left intact so the error
//!   surfaces at execution exactly as the unoptimized plan reports it.
//!   Unaliased SELECT items that fold keep their original output name
//!   via a synthesized alias, so result schemas are identical with the
//!   optimizer on or off. Inside an `Aggregate` node only
//!   aggregate-containing items fold: GROUP BY expressions and the key
//!   items pair by structural equality at execution time, so rewriting
//!   either side could create (or destroy) a pairing the unoptimized
//!   plan doesn't have — both spellings stay intact instead.
//! * **`projection_pruning`** — when the statement has no `*` item, the
//!   scan keeps only the columns the statement references (resolved
//!   against the bound source schema). Columns are `Arc`-shared, so a
//!   pruned scan is free to build — the win is downstream: `Filter`'s
//!   row gather and the sort fallback input stop materializing columns
//!   nobody reads. A statement referencing no columns at all (e.g.
//!   `SELECT COUNT(*)`) keeps the first column so the scan's row count
//!   survives.
//! * **`sort_limit_fusion`** — `Sort → Limit` fuses into
//!   [`LogicalPlan::TopK`], which selects the first `n` rows of the
//!   stable sort order with bounded per-morsel heaps (O(rows · log n))
//!   instead of sorting everything (O(rows · log rows)). Ties break on
//!   the original row index — exactly the stable sort's order — so the
//!   fusion is bit-identical.
//!
//! All rules are pure functions of the plan (and the bound schema), so
//! optimization is deterministic; the whole pass is gated by
//! `EngineOptions::with_optimizer` / the `MOSAIC_OPTIMIZER` environment
//! variable so the unoptimized path stays exercisable (the oracle suite
//! A/Bs both paths bit-identically).

use std::sync::OnceLock;

use mosaic_sql::{Expr, JoinKind, SelectItem};
use mosaic_storage::Schema;

use super::logical::{LogicalPlan, ScanColumn};

/// Whether new plans are optimized by default: `false` when the
/// `MOSAIC_OPTIMIZER` environment variable is set to `off`/`0`/`false`/
/// `no`, `true` otherwise. Computed once per process; engine options and
/// per-session overrides take precedence over this default.
pub fn default_optimizer() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("MOSAIC_OPTIMIZER") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    })
}

/// Run every rule over the plan; returns the rewritten plan plus the
/// names of the rules that fired, in application order. `schema` is the
/// bound source schema when known (single-relation projection pruning
/// needs it to resolve column ids; without it that rule is skipped).
/// Join plans carry their own binding (the [`LogicalPlan::Join`] output
/// map), so the join rules — predicate pushdown, then join-aware
/// projection pruning — never need the schema parameter.
pub fn optimize(
    mut plan: LogicalPlan,
    schema: Option<&Schema>,
) -> (LogicalPlan, Vec<&'static str>) {
    let mut fired = Vec::new();
    if constant_folding(&mut plan) {
        fired.push("constant_folding");
    }
    if matches!(plan.scan(), LogicalPlan::Join { .. }) {
        if predicate_pushdown(&mut plan) {
            fired.push("predicate_pushdown");
        }
        if join_projection_pruning(&mut plan) {
            fired.push("projection_pruning");
        }
    } else if let Some(schema) = schema {
        if projection_pruning(&mut plan, schema) {
            fired.push("projection_pruning");
        }
    }
    if sort_limit_fusion(&mut plan) {
        fired.push("sort_limit_fusion");
    }
    (plan, fired)
}

// ---- constant folding ----

/// Fold constant subexpressions throughout the plan. Returns true if
/// anything changed.
fn constant_folding(plan: &mut LogicalPlan) -> bool {
    let mut changed = false;
    let mut cur = Some(plan);
    while let Some(node) = cur {
        match node {
            LogicalPlan::Scan { .. } | LogicalPlan::Limit { .. } => {}
            LogicalPlan::Join {
                left, right, keys, ..
            } => {
                // Keys fold like any expression: a folded constant
                // subtree evaluates to the exact value every row saw, so
                // the matched pairs are unchanged. Recurse into both
                // input chains (they may carry filters).
                for (l, r) in keys.iter_mut() {
                    changed |= fold_in_place(l);
                    changed |= fold_in_place(r);
                }
                changed |= constant_folding(left);
                changed |= constant_folding(right);
            }
            LogicalPlan::Filter { predicate, .. } => {
                changed |= fold_in_place(predicate);
            }
            LogicalPlan::Project { items, .. } => {
                changed |= fold_items(items, false);
            }
            LogicalPlan::Aggregate { items, .. } => {
                // Fold only aggregate-containing items. GROUP BY
                // expressions and key items pair by *structural*
                // equality at execution time ("projection X is neither
                // an aggregate nor a GROUP BY expression" otherwise), so
                // rewriting either side independently could create a
                // match the unoptimized plan doesn't have — e.g.
                // `SELECT x + 2 … GROUP BY x + (1 + 1)` errors
                // unoptimized but would succeed folded. Keeping both
                // spellings intact keeps the pairing — and therefore
                // the result or error — bit-identical.
                changed |= fold_items(items, true);
            }
            LogicalPlan::Sort { keys, .. } | LogicalPlan::TopK { keys, .. } => {
                for (e, _) in keys.iter_mut() {
                    changed |= fold_in_place(e);
                }
            }
        }
        cur = node.input_mut();
    }
    changed
}

/// Fold the SELECT list. Unaliased items that fold get an alias carrying
/// their original display name, so output schemas never change. With
/// `aggregates_only`, non-aggregate items are left untouched (they pair
/// with GROUP BY expressions structurally — see the Aggregate arm of
/// [`constant_folding`]).
fn fold_items(items: &mut [SelectItem], aggregates_only: bool) -> bool {
    let mut changed = false;
    for item in items.iter_mut() {
        if let SelectItem::Expr { expr, alias } = item {
            if aggregates_only && !expr.contains_aggregate() {
                continue;
            }
            let mut c = false;
            let folded = fold_expr(expr, &mut c);
            if c {
                if alias.is_none() {
                    *alias = Some(expr.default_name());
                }
                *expr = folded;
                changed = true;
            }
        }
    }
    changed
}

fn fold_in_place(expr: &mut Expr) -> bool {
    let mut changed = false;
    let folded = fold_expr(expr, &mut changed);
    if changed {
        *expr = folded;
    }
    changed
}

/// Recursively fold constant subtrees to literals via the row-at-a-time
/// reference evaluator (so a folded value is *by definition* the value
/// every row would have seen). Erroring constants stay unfolded.
fn fold_expr(expr: &Expr, changed: &mut bool) -> Expr {
    if expr.is_const() && !matches!(expr, Expr::Literal(_)) {
        if let Ok(v) = crate::eval::eval_scalar(expr) {
            *changed = true;
            return Expr::Literal(v);
        }
        return expr.clone();
    }
    let fold_box = |e: &Expr, changed: &mut bool| Box::new(fold_expr(e, changed));
    match expr {
        Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => expr.clone(),
        Expr::Unary { op, expr: inner } => Expr::Unary {
            op: *op,
            expr: fold_box(inner, changed),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: fold_box(left, changed),
            op: *op,
            right: fold_box(right, changed),
        },
        Expr::InList {
            expr: inner,
            list,
            negated,
        } => Expr::InList {
            expr: fold_box(inner, changed),
            list: list.iter().map(|e| fold_expr(e, changed)).collect(),
            negated: *negated,
        },
        Expr::Between {
            expr: inner,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: fold_box(inner, changed),
            low: fold_box(low, changed),
            high: fold_box(high, changed),
            negated: *negated,
        },
        Expr::IsNull {
            expr: inner,
            negated,
        } => Expr::IsNull {
            expr: fold_box(inner, changed),
            negated: *negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func: *func,
            arg: arg.as_deref().map(|a| fold_box(a, changed)),
        },
    }
}

// ---- projection pruning ----

/// Restrict the scan to the columns the plan references. Fires only when
/// the statement has no wildcard and the referenced set is narrower than
/// the source schema.
fn projection_pruning(plan: &mut LogicalPlan, schema: &Schema) -> bool {
    let mut referenced: Vec<String> = Vec::new();
    let mut add = |exprs: &[&Expr]| {
        for e in exprs {
            for c in e.referenced_columns() {
                if !referenced.iter().any(|n| n.eq_ignore_ascii_case(&c)) {
                    referenced.push(c);
                }
            }
        }
    };
    for node in plan.nodes() {
        match node {
            LogicalPlan::Scan { .. } | LogicalPlan::Limit { .. } => {}
            LogicalPlan::Join { .. } => return false, // join plans use join_projection_pruning
            LogicalPlan::Filter { predicate, .. } => add(&[predicate]),
            LogicalPlan::Project { items, .. } => {
                if !collect_item_columns(items, &mut add) {
                    return false; // wildcard: the scan schema is the output
                }
            }
            LogicalPlan::Aggregate {
                items, group_by, ..
            } => {
                if !collect_item_columns(items, &mut add) {
                    return false;
                }
                add(&group_by.iter().collect::<Vec<_>>());
            }
            LogicalPlan::Sort { keys, .. } | LogicalPlan::TopK { keys, .. } => {
                add(&keys.iter().map(|(e, _)| e).collect::<Vec<_>>());
            }
        }
    }
    // Resolve against the bound schema, in schema order. Referenced
    // names the schema lacks are dropped here — evaluation reports the
    // same unknown-column error with or without pruning.
    let mut ids: Vec<usize> = referenced
        .iter()
        .filter_map(|n| schema.index_of(n).ok())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() >= schema.len() {
        return false; // nothing to prune
    }
    if ids.is_empty() {
        if schema.is_empty() {
            return false;
        }
        // No columns referenced (SELECT COUNT(*), SELECT 1, …): keep one
        // column so the scan's row count survives the pruning.
        ids.push(0);
    }
    let cols: Vec<ScanColumn> = ids
        .into_iter()
        .map(|id| ScanColumn {
            name: schema.field(id).name.clone(),
            id,
        })
        .collect();
    *scan_columns_mut(plan) = Some(cols);
    true
}

/// Collect column references from SELECT items into `add`; returns false
/// if a wildcard makes pruning unsafe.
fn collect_item_columns(items: &[SelectItem], add: &mut impl FnMut(&[&Expr])) -> bool {
    for item in items {
        match item {
            SelectItem::Wildcard => return false,
            SelectItem::Expr { expr, .. } => add(&[expr]),
        }
    }
    true
}

fn scan_columns_mut(plan: &mut LogicalPlan) -> &mut Option<Vec<ScanColumn>> {
    match plan {
        LogicalPlan::Scan { columns, .. } => columns,
        other => scan_columns_mut(
            other
                .input_mut()
                .expect("non-scan logical nodes have an input"),
        ),
    }
}

// ---- join predicate pushdown ----

/// Push WHERE conjuncts that reference exactly one join input — and that
/// provably cannot error (see [`crate::plan::join::push_safe`]) — below
/// the join, into that input's filter chain. For an INNER join a
/// single-sided conjunct drops the same output rows whether it runs
/// before or after the join; running it before shrinks the build /
/// probe inputs. A LEFT OUTER join only admits *left*-side pushes:
/// filtering the right input before the join would NULL-extend rows the
/// unpushed plan drops. Conjuncts that span both sides, reference
/// unknown columns or the combined weight column, carry parameters in
/// unsafe shapes, or could error stay above the join untouched.
///
/// The rule fires only when **every** conjunct — pushed *and* residual —
/// is provably error-free: pushing one conjunct shrinks the set of rows
/// the residual conjuncts evaluate over, so a residual that *could*
/// error (say, a Float comparison hitting NaN on a row the pushed
/// filter now removes) would error with the optimizer off but succeed
/// with it on, breaking the bit-identical-including-errors contract.
fn predicate_pushdown(plan: &mut LogicalPlan) -> bool {
    // Find the Filter directly above the Join.
    let mut cur = Some(plan);
    while let Some(node) = cur {
        if matches!(node, LogicalPlan::Filter { input, .. } if matches!(input.as_ref(), LogicalPlan::Join { .. }))
        {
            return push_filter_into_join(node);
        }
        cur = node.input_mut();
    }
    false
}

fn push_filter_into_join(node: &mut LogicalPlan) -> bool {
    // Phase 1: classify the conjuncts (immutable).
    let (mut pushed, residual): ([Vec<Expr>; 2], Vec<Expr>) = {
        let LogicalPlan::Filter { input, predicate } = &*node else {
            unreachable!("caller matched a filter-over-join");
        };
        let LogicalPlan::Join { output, kind, .. } = input.as_ref() else {
            unreachable!("caller matched a filter-over-join");
        };
        let mut conjuncts = Vec::new();
        crate::plan::join::split_and(predicate, &mut conjuncts);
        let out_type = |name: &str| {
            output
                .iter()
                .find(|o| o.name.eq_ignore_ascii_case(name))
                .map(|o| o.data_type)
        };
        // Every conjunct must be provably error-free before anything
        // moves: a pushed conjunct shrinks the rows the residual ones
        // evaluate over, which must never suppress (or introduce) an
        // error the unoptimized plan reports.
        if !conjuncts
            .iter()
            .all(|c| crate::plan::join::push_safe(c, &out_type))
        {
            return false;
        }
        let mut residual: Vec<Expr> = Vec::new();
        let mut pushed: [Vec<Expr>; 2] = [Vec::new(), Vec::new()];
        for conj in conjuncts {
            match conjunct_side(conj, output) {
                // Rewrite output names back to source column names. A
                // LEFT OUTER join never pushes into the NULL-extending
                // (right) side.
                Some(s) if *kind == JoinKind::Inner || s == 0 => {
                    pushed[s].push(rewrite_to_source(conj, output))
                }
                _ => residual.push(conj.clone()),
            }
        }
        (pushed, residual)
    };
    if pushed[0].is_empty() && pushed[1].is_empty() {
        return false;
    }
    // Phase 2: wrap the join inputs in the pushed filters.
    {
        let LogicalPlan::Filter { input, .. } = node else {
            unreachable!("matched above");
        };
        let LogicalPlan::Join { left, right, .. } = input.as_mut() else {
            unreachable!("matched above");
        };
        for (s, side) in [left, right].into_iter().enumerate() {
            if !pushed[s].is_empty() {
                let inner = std::mem::replace(
                    side,
                    Box::new(LogicalPlan::Scan {
                        source: s,
                        columns: None,
                    }),
                );
                **side = LogicalPlan::Filter {
                    input: inner,
                    predicate: crate::plan::join::and_chain(std::mem::take(&mut pushed[s])),
                };
            }
        }
    }
    // Phase 3: shrink or splice out the residual filter.
    if residual.is_empty() {
        let LogicalPlan::Filter { input, .. } = node else {
            unreachable!("matched above");
        };
        let join = std::mem::replace(
            input,
            Box::new(LogicalPlan::Scan {
                source: 0,
                columns: None,
            }),
        );
        *node = *join;
    } else {
        let LogicalPlan::Filter { predicate, .. } = node else {
            unreachable!("matched above");
        };
        *predicate = crate::plan::join::and_chain(residual);
    }
    true
}

/// The single join input a conjunct references, if any: every referenced
/// column must resolve to an output column of the same source. Unknown
/// columns (the error surfaces at execution either way) and column-free
/// conjuncts return `None`.
fn conjunct_side(conj: &Expr, output: &[crate::plan::logical::JoinOutCol]) -> Option<usize> {
    let cols = conj.referenced_columns();
    let mut side = None;
    for c in &cols {
        let out = output.iter().find(|o| o.name.eq_ignore_ascii_case(c))?;
        if out.combined {
            // The combined weight is a product of *both* sides' weight
            // columns — it exists only after the join.
            return None;
        }
        match side {
            None => side = Some(out.source),
            Some(s) if s != out.source => return None,
            _ => {}
        }
    }
    side
}

/// Rewrite a single-sided conjunct's output-name references to the
/// side's source column names (names that resolve to no output column
/// pass through untouched — the execution error is identical either
/// way).
fn rewrite_to_source(conj: &Expr, output: &[crate::plan::logical::JoinOutCol]) -> Expr {
    crate::plan::join::map_columns(conj, &|name| {
        Ok(output
            .iter()
            .find(|o| o.name.eq_ignore_ascii_case(name))
            .map(|o| o.column.clone())
            .unwrap_or_else(|| name.to_string()))
    })
    .expect("infallible column mapping")
}

// ---- join projection pruning ----

/// Projection pruning through both join sides: narrow the join's output
/// to the columns referenced above it (always keeping the weighted
/// side's `weight` column — the sample-weight carrying rule — and at
/// least one column so the row count survives), then prune each side's
/// scan to the columns its keys, pushed filters, and surviving output
/// need. Fires only when the statement has no `*` item.
fn join_projection_pruning(plan: &mut LogicalPlan) -> bool {
    // 1. Collect output-name references from the chain above the join.
    let mut referenced: Vec<String> = Vec::new();
    let mut add = |exprs: &[&Expr]| {
        for e in exprs {
            for c in e.referenced_columns() {
                if !referenced.iter().any(|n| n.eq_ignore_ascii_case(&c)) {
                    referenced.push(c);
                }
            }
        }
    };
    for node in plan.nodes() {
        match node {
            LogicalPlan::Scan { .. } | LogicalPlan::Limit { .. } | LogicalPlan::Join { .. } => {}
            LogicalPlan::Filter { predicate, .. } => add(&[predicate]),
            LogicalPlan::Project { items, .. } => {
                if !collect_item_columns(items, &mut add) {
                    return false;
                }
            }
            LogicalPlan::Aggregate {
                items, group_by, ..
            } => {
                if !collect_item_columns(items, &mut add) {
                    return false;
                }
                add(&group_by.iter().collect::<Vec<_>>());
            }
            LogicalPlan::Sort { keys, .. } | LogicalPlan::TopK { keys, .. } => {
                add(&keys.iter().map(|(e, _)| e).collect::<Vec<_>>());
            }
        }
    }

    // 2. Narrow the join node.
    let join = join_mut(plan);
    let LogicalPlan::Join {
        left,
        right,
        keys,
        output,
        weighted,
        ..
    } = join
    else {
        unreachable!("optimize() only calls this on join plans");
    };
    let mut changed = false;
    let kept: Vec<crate::plan::logical::JoinOutCol> = output
        .iter()
        .filter(|o| {
            referenced.iter().any(|n| n.eq_ignore_ascii_case(&o.name))
                || o.combined
                || (weighted.contains(&o.source) && o.column.eq_ignore_ascii_case("weight"))
                // Combined-weight joins feed post-join IPF re-calibration,
                // which resolves declared marginal attributes against the
                // joined schema — pruning a weighted side could silently
                // skip the raking (and make results depend on the
                // optimizer). Keep every weighted-side column.
                || (weighted.len() > 1 && weighted.contains(&o.source))
        })
        .cloned()
        .collect();
    let kept = if kept.is_empty() {
        vec![output[0].clone()]
    } else {
        kept
    };
    // 3. Prune each side's scan to (surviving output ∪ key refs ∪
    //    pushed-filter refs), resolved through the pre-pruning output
    //    map (which lists every source column with its bound id).
    for (s, side) in [&mut *left, &mut *right].into_iter().enumerate() {
        if s == 1 && kept.iter().any(|o| o.combined) {
            // The combined weight gathers from the right side's weight
            // column, which (by construction) has no output entry of
            // its own — leave the right scan unpruned so it survives.
            continue;
        }
        let mut needed: Vec<&str> = kept
            .iter()
            .filter(|o| o.source == s)
            .map(|o| o.column.as_str())
            .collect();
        for (lk, rk) in keys.iter() {
            let k = if s == 0 { lk } else { rk };
            for c in k.referenced_columns() {
                if let Some(o) = output
                    .iter()
                    .find(|o| o.source == s && o.column.eq_ignore_ascii_case(&c))
                {
                    if !needed.iter().any(|n| n.eq_ignore_ascii_case(&o.column)) {
                        needed.push(o.column.as_str());
                    }
                }
            }
        }
        let mut chain = Some(side.as_ref());
        let mut filter_cols: Vec<String> = Vec::new();
        while let Some(node) = chain {
            if let LogicalPlan::Filter { predicate, .. } = node {
                filter_cols.extend(predicate.referenced_columns());
            }
            chain = node.input();
        }
        for c in &filter_cols {
            if let Some(o) = output
                .iter()
                .find(|o| o.source == s && o.column.eq_ignore_ascii_case(c))
            {
                if !needed.iter().any(|n| n.eq_ignore_ascii_case(&o.column)) {
                    needed.push(o.column.as_str());
                }
            }
        }
        let mut cols: Vec<ScanColumn> = output
            .iter()
            .filter(|o| o.source == s && needed.iter().any(|n| n.eq_ignore_ascii_case(&o.column)))
            .map(|o| ScanColumn {
                name: o.column.clone(),
                id: o.column_id,
            })
            .collect();
        cols.sort_by_key(|c| c.id);
        cols.dedup();
        let side_width = output.iter().filter(|o| o.source == s).count();
        if cols.is_empty() && side_width > 0 {
            // Keep one column so the side's row count survives.
            let first = output.iter().find(|o| o.source == s).expect("non-empty");
            cols.push(ScanColumn {
                name: first.column.clone(),
                id: first.column_id,
            });
        }
        if cols.len() < side_width {
            let scan = side_scan_mut(side);
            if let LogicalPlan::Scan { columns, .. } = scan {
                if columns.as_ref() != Some(&cols) {
                    *columns = Some(cols);
                    changed = true;
                }
            }
        }
    }
    if kept.len() < output.len() {
        *output = kept;
        changed = true;
    }
    changed
}

/// Mutable access to the join node at the bottom of the chain.
fn join_mut(plan: &mut LogicalPlan) -> &mut LogicalPlan {
    if matches!(plan, LogicalPlan::Join { .. }) {
        return plan;
    }
    join_mut(
        plan.input_mut()
            .expect("join plans bottom out at the join node"),
    )
}

/// Mutable access to the scan at the bottom of a join input chain.
fn side_scan_mut(side: &mut LogicalPlan) -> &mut LogicalPlan {
    if matches!(side, LogicalPlan::Scan { .. }) {
        return side;
    }
    side_scan_mut(side.input_mut().expect("join inputs bottom out at a scan"))
}

// ---- sort/limit fusion ----

/// Fuse `Limit(Sort(x))` into `TopK(x)`.
fn sort_limit_fusion(plan: &mut LogicalPlan) -> bool {
    if let LogicalPlan::Limit { input, n } = plan {
        let n = *n;
        if let LogicalPlan::Sort {
            input: sort_in,
            keys,
        } = input.as_mut()
        {
            let keys = std::mem::take(keys);
            let inner = std::mem::replace(
                sort_in,
                Box::new(LogicalPlan::Scan {
                    source: 0,
                    columns: None,
                }),
            );
            *plan = LogicalPlan::TopK {
                input: inner,
                keys,
                n,
            };
            return true;
        }
    }
    match plan.input_mut() {
        Some(input) => sort_limit_fusion(input),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::{parse, parse_expr, SelectStmt, Statement};
    use mosaic_storage::{DataType, Field};

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    fn schema() -> std::sync::Arc<Schema> {
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
            Field::new("w", DataType::Float),
        ])
    }

    fn optimize_stmt(src: &str) -> (LogicalPlan, Vec<&'static str>) {
        let plan = LogicalPlan::from_stmt(&select(src), false);
        optimize(plan, Some(&schema()))
    }

    #[test]
    fn folds_constants_and_keeps_param_residuals() {
        let (plan, fired) = optimize_stmt("SELECT v FROM t WHERE v > 1 + 1");
        assert!(fired.contains(&"constant_folding"), "{fired:?}");
        let nodes = plan.nodes();
        let LogicalPlan::Filter { predicate, .. } = nodes[1] else {
            panic!("expected filter, got {}", nodes[1].describe());
        };
        assert_eq!(predicate, &parse_expr("v > 2").unwrap());

        // A `?` residual blocks its own subtree but not constant siblings.
        let (plan, fired) = optimize_stmt("SELECT v FROM t WHERE v > ? + (2 * 3)");
        assert!(fired.contains(&"constant_folding"), "{fired:?}");
        let text = plan.to_string();
        assert!(text.contains("?1 + 6"), "{text}");
    }

    #[test]
    fn folded_items_keep_their_output_name() {
        let (plan, _) = optimize_stmt("SELECT 1 + 2, v FROM t");
        let nodes = plan.nodes();
        let LogicalPlan::Project { items, .. } = nodes[1] else {
            panic!("expected project");
        };
        let mosaic_sql::SelectItem::Expr { expr, alias } = &items[0] else {
            panic!("expected expr item");
        };
        assert_eq!(expr, &parse_expr("3").unwrap());
        assert_eq!(alias.as_deref(), Some("1 + 2"));
    }

    #[test]
    fn group_by_pairing_is_never_rewritten() {
        // Execution pairs non-aggregate items with GROUP BY expressions
        // by structural equality; folding either side independently
        // could create a match the unoptimized plan rejects. Both
        // spellings must survive untouched — in both directions.
        for src in [
            "SELECT v + 2, COUNT(*) FROM t GROUP BY v + (1 + 1)",
            "SELECT v + (1 + 1), COUNT(*) FROM t GROUP BY v + 2",
        ] {
            let (plan, _) = optimize_stmt(src);
            let LogicalPlan::Aggregate {
                items, group_by, ..
            } = plan.nodes()[1]
            else {
                panic!("expected aggregate: {plan}");
            };
            let stmt = select(src);
            assert_eq!(&stmt.group_by, group_by, "{src}");
            let mosaic_sql::SelectItem::Expr { expr, .. } = &items[0] else {
                panic!("expected expr item");
            };
            let mosaic_sql::SelectItem::Expr { expr: orig, .. } = &stmt.items[0] else {
                panic!("expected expr item");
            };
            assert_eq!(expr, orig, "{src}");
        }
        // Aggregate-containing items still fold (their shells never
        // participate in GROUP BY pairing).
        let (plan, fired) = optimize_stmt("SELECT k, SUM(v) * (1 + 1) FROM t GROUP BY k");
        assert!(fired.contains(&"constant_folding"), "{fired:?}");
        let LogicalPlan::Aggregate { items, .. } = plan.nodes()[1] else {
            panic!("expected aggregate: {plan}");
        };
        let mosaic_sql::SelectItem::Expr { expr, alias } = &items[1] else {
            panic!("expected expr item");
        };
        assert_eq!(expr, &parse_expr("SUM(v) * 2").unwrap());
        assert_eq!(alias.as_deref(), Some("SUM(v) * 1 + 1"));
    }

    #[test]
    fn erroring_constants_stay_unfolded() {
        // `'x' > 1` is constant but errors in the reference evaluator;
        // it must survive folding untouched so execution reports the
        // same error with the optimizer on or off.
        let (plan, _) = optimize_stmt("SELECT v FROM t WHERE k = 'a' AND 'x' > 1");
        let nodes = plan.nodes();
        let LogicalPlan::Filter { predicate, .. } = nodes[1] else {
            panic!("expected filter, got {}", nodes[1].describe());
        };
        assert_eq!(predicate, &parse_expr("k = 'a' AND 'x' > 1").unwrap());
    }

    #[test]
    fn prunes_scan_to_referenced_columns() {
        let (plan, fired) = optimize_stmt("SELECT k FROM t WHERE v > 1 ORDER BY v DESC");
        assert!(fired.contains(&"projection_pruning"), "{fired:?}");
        let LogicalPlan::Scan {
            columns: Some(cols),
            ..
        } = plan.scan()
        else {
            panic!("expected pruned scan: {plan}");
        };
        let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["k", "v"]);
        assert_eq!(cols[0].id, 0);
        assert_eq!(cols[1].id, 1);
    }

    #[test]
    fn wildcard_blocks_pruning() {
        let (plan, fired) = optimize_stmt("SELECT * FROM t WHERE v > 1");
        assert!(!fired.contains(&"projection_pruning"), "{fired:?}");
        assert!(matches!(
            plan.scan(),
            LogicalPlan::Scan { columns: None, .. }
        ));
    }

    #[test]
    fn column_free_statement_keeps_one_column() {
        let (plan, fired) = optimize_stmt("SELECT COUNT(*) FROM t");
        assert!(fired.contains(&"projection_pruning"), "{fired:?}");
        let LogicalPlan::Scan {
            columns: Some(cols),
            ..
        } = plan.scan()
        else {
            panic!("expected pruned scan");
        };
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].id, 0);
    }

    #[test]
    fn fully_referenced_schema_not_pruned() {
        let (_, fired) = optimize_stmt("SELECT k, v, w FROM t");
        assert!(!fired.contains(&"projection_pruning"), "{fired:?}");
    }

    #[test]
    fn sort_limit_fuses_to_topk() {
        let (plan, fired) = optimize_stmt("SELECT k FROM t ORDER BY v DESC, k LIMIT 5");
        assert!(fired.contains(&"sort_limit_fusion"), "{fired:?}");
        let names: Vec<&str> = plan.nodes().iter().map(|n| n.name()).collect();
        assert_eq!(names, vec!["Scan", "Project", "TopK"]);
        assert!(plan.to_string().contains("TopK[v DESC, k](n=5)"), "{plan}");

        // No LIMIT → Sort stays.
        let (plan, fired) = optimize_stmt("SELECT k FROM t ORDER BY v");
        assert!(!fired.contains(&"sort_limit_fusion"), "{fired:?}");
        assert!(plan.to_string().contains("Sort[v]"), "{plan}");
    }
}
