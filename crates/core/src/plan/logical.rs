//! The logical-plan IR — the layer between binding and physical
//! lowering.
//!
//! A bound SELECT first becomes a [`LogicalPlan`]: a chain of relational
//! nodes (`Scan → Filter? → Project | Aggregate → Sort? → Limit?`) whose
//! expressions are the statement's own, with the weighted-rewrite
//! property resolved. The rule-based optimizer in
//! [`crate::plan::optimize`] rewrites this IR (pruning scans, folding
//! constants, fusing Sort+Limit into [`LogicalPlan::TopK`]) before
//! [`crate::plan::lower_logical`] turns it into a [`PhysicalPlan`].
//!
//! Keeping the IR separate from both the AST and the physical operators
//! is what makes future operators (joins, unions, multi-backend routing)
//! one node away: rules speak in relational terms, the executor never
//! sees un-optimized shapes, and `EXPLAIN` can show the plan before and
//! after rewriting.
//!
//! [`PhysicalPlan`]: crate::plan::PhysicalPlan

use std::fmt;

use mosaic_sql::{Expr, JoinKind, SelectItem, SelectStmt};

/// A column kept by a pruned scan: the source column's name plus the
/// column id resolved against the source schema at plan time. Execution
/// re-resolves by name (relations can be re-bound between prepare and
/// execute); the id is the plan-time resolution, kept for display and
/// for rules that want positional reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanColumn {
    /// Source column name (schema casing).
    pub name: String,
    /// Column id in the source schema the plan was bound against.
    pub id: usize,
}

impl fmt::Display for ScanColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name, self.id)
    }
}

/// One output column of a [`LogicalPlan::Join`]: the join's output name
/// plus the provenance of the value (which input relation, which source
/// column). Output names follow the scope rule: a column name that is
/// unique across both sides keeps its bare name; a duplicated name is
/// qualified as `binding.column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOutCol {
    /// Join output column name.
    pub name: String,
    /// Input relation index (0 = left/base, 1 = joined).
    pub source: usize,
    /// Column name in the source relation's schema.
    pub column: String,
    /// Column index in the source schema the plan was bound against
    /// (plan-time resolution; execution re-resolves by name).
    pub column_id: usize,
    /// Bound column type (drives the pushdown safety check).
    pub data_type: mosaic_storage::DataType,
    /// True for the *combined* `weight` column of a weighted×weighted
    /// join: its value is the elementwise product of both sides' weight
    /// columns (independence assumption), not a gather from one side.
    pub combined: bool,
}

/// A logical query plan: the relational IR a bound SELECT lowers to
/// before optimization. Every node owns its input(s) — a chain for
/// single-relation statements, a tree once a [`LogicalPlan::Join`]
/// replaces the scan leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf: scan the source relation. `columns: None` reads every
    /// column; `Some(cols)` is a pruned scan that materializes only the
    /// referenced columns (the projection-pruning rule's output).
    Scan {
        /// Which bound relation this scan reads (0 for single-relation
        /// statements; join inputs index the FROM clause's relations).
        source: usize,
        /// Columns the scan keeps (`None` = all).
        columns: Option<Vec<ScanColumn>>,
    },
    /// Equi-join of two input subtrees. Keys are `(left, right)`
    /// expression pairs written in each side's *source* column names;
    /// a pair of rows joins iff every key pair is `sql_cmp`-equal
    /// (NULL and NaN keys never match). Output rows are ordered by
    /// (left row, right row) — the canonical nested-loop order — no
    /// matter which side the executor builds its hash table on. A
    /// LEFT OUTER join additionally emits every unmatched left row
    /// once, NULL-extended on the right, at its canonical position.
    Join {
        /// Left input (`Scan → Filter*` after predicate pushdown).
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// INNER or LEFT OUTER.
        kind: JoinKind,
        /// Equi-join key pairs `(left expr, right expr)`.
        keys: Vec<(Expr, Expr)>,
        /// The join's output columns (narrowed by projection pruning).
        output: Vec<JoinOutCol>,
        /// Indices of the inputs that expose the engine-managed `weight`
        /// column (sample sides) — pruning must keep it. Both sides
        /// weighted means the output carries one *combined* `weight`
        /// column (the per-side product).
        weighted: Vec<usize>,
    },
    /// `WHERE` — keep rows satisfying the predicate.
    Filter {
        /// Input node.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: Expr,
    },
    /// Projection without aggregates.
    Project {
        /// Input node.
        input: Box<LogicalPlan>,
        /// The SELECT list.
        items: Vec<SelectItem>,
    },
    /// Grouped (or global) aggregation; `weighted` marks the paper's
    /// §5.3 weighted-aggregate rewrite.
    Aggregate {
        /// Input node.
        input: Box<LogicalPlan>,
        /// The SELECT list.
        items: Vec<SelectItem>,
        /// GROUP BY expressions (empty = one global group).
        group_by: Vec<Expr>,
        /// Weighted-rewrite property.
        weighted: bool,
    },
    /// `ORDER BY` — stable sort on the key expressions.
    Sort {
        /// Input node.
        input: Box<LogicalPlan>,
        /// `(expr, descending)` sort keys.
        keys: Vec<(Expr, bool)>,
    },
    /// `LIMIT n`.
    Limit {
        /// Input node.
        input: Box<LogicalPlan>,
        /// Maximum number of output rows.
        n: usize,
    },
    /// Fused Sort+Limit: the first `n` rows of the stable sort order,
    /// computed with bounded per-morsel heaps instead of a full sort
    /// (the sort/limit-fusion rule's output). Bit-identical to
    /// `Sort → Limit` by construction.
    TopK {
        /// Input node.
        input: Box<LogicalPlan>,
        /// `(expr, descending)` sort keys.
        keys: Vec<(Expr, bool)>,
        /// Number of rows to keep.
        n: usize,
    },
}

impl LogicalPlan {
    /// Build the canonical (un-optimized) logical plan of a bound
    /// SELECT: `Scan → Filter? → Project | Aggregate → Sort? → Limit?`,
    /// a direct structural mirror of the statement. `weighted` marks
    /// whether execution will carry row weights.
    pub fn from_stmt(stmt: &SelectStmt, weighted: bool) -> LogicalPlan {
        Self::from_stmt_over(
            stmt,
            weighted,
            LogicalPlan::Scan {
                source: 0,
                columns: None,
            },
        )
    }

    /// Build the statement's chain (`Filter? → Project | Aggregate →
    /// Sort? → Limit?`) over an arbitrary leaf — the plain scan for
    /// single-relation statements, a [`LogicalPlan::Join`] subtree for
    /// multi-relation ones.
    pub(crate) fn from_stmt_over(
        stmt: &SelectStmt,
        weighted: bool,
        leaf: LogicalPlan,
    ) -> LogicalPlan {
        let mut node = leaf;
        if let Some(pred) = &stmt.where_clause {
            node = LogicalPlan::Filter {
                input: Box::new(node),
                predicate: pred.clone(),
            };
        }
        node = if super::has_aggregate_shape(stmt) {
            LogicalPlan::Aggregate {
                input: Box::new(node),
                items: stmt.items.clone(),
                group_by: stmt.group_by.clone(),
                weighted,
            }
        } else {
            LogicalPlan::Project {
                input: Box::new(node),
                items: stmt.items.clone(),
            }
        };
        if !stmt.order_by.is_empty() {
            node = LogicalPlan::Sort {
                input: Box::new(node),
                keys: stmt.order_by.clone(),
            };
        }
        if let Some(n) = stmt.limit {
            node = LogicalPlan::Limit {
                input: Box::new(node),
                n,
            };
        }
        node
    }

    /// Node name for plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::TopK { .. } => "TopK",
        }
    }

    /// The node's chain input, if any (`None` for the scan leaf and for
    /// [`LogicalPlan::Join`], whose two inputs are reached through the
    /// node itself).
    pub fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } => None,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::TopK { input, .. } => Some(input),
        }
    }

    /// Mutable access to the node's chain input, if any.
    pub(crate) fn input_mut(&mut self) -> Option<&mut LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } => None,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::TopK { input, .. } => Some(input),
        }
    }

    /// The join node at the bottom of the chain, if this plan scans more
    /// than one relation.
    pub fn join(&self) -> Option<&LogicalPlan> {
        match self.scan() {
            j @ LogicalPlan::Join { .. } => Some(j),
            _ => None,
        }
    }

    /// The plan's nodes in execution order (scan first).
    pub fn nodes(&self) -> Vec<&LogicalPlan> {
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(node) = cur {
            out.push(node);
            cur = node.input();
        }
        out.reverse();
        out
    }

    /// The leaf at the bottom of the chain: the scan for single-relation
    /// plans, the [`LogicalPlan::Join`] node for multi-relation ones.
    pub fn scan(&self) -> &LogicalPlan {
        let mut cur = self;
        while let Some(input) = cur.input() {
            cur = input;
        }
        cur
    }

    /// One-line description of this node alone (expressions included),
    /// EXPLAIN-style. A join's description embeds its two input chains.
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { columns: None, .. } => "Scan".to_string(),
            LogicalPlan::Scan {
                columns: Some(cols),
                ..
            } => {
                let names: Vec<String> = cols.iter().map(ScanColumn::to_string).collect();
                format!("Scan[{}]", names.join(", "))
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                keys,
                ..
            } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|(l, r)| format!("{} = {}", l.default_name(), r.default_name()))
                    .collect();
                let sym = match kind {
                    JoinKind::Inner => "⋈",
                    JoinKind::LeftOuter => "⟕",
                };
                format!("Join[{}]({left} {sym} {right})", keys.join(", "))
            }
            LogicalPlan::Filter { predicate, .. } => {
                format!("Filter({})", predicate.default_name())
            }
            LogicalPlan::Project { items, .. } => {
                let names: Vec<String> = items.iter().map(super::output_name).collect();
                format!("Project[{}]", names.join(", "))
            }
            LogicalPlan::Aggregate {
                items,
                group_by,
                weighted,
                ..
            } => {
                let keys: Vec<String> = group_by.iter().map(Expr::default_name).collect();
                let names: Vec<String> = items.iter().map(super::output_name).collect();
                format!(
                    "Aggregate{}(keys=[{}], items=[{}])",
                    if *weighted { "[weighted]" } else { "" },
                    keys.join(", "),
                    names.join(", ")
                )
            }
            LogicalPlan::Sort { keys, .. } => format!("Sort[{}]", describe_keys(keys)),
            LogicalPlan::Limit { n, .. } => format!("Limit({n})"),
            LogicalPlan::TopK { keys, n, .. } => {
                format!("TopK[{}](n={n})", describe_keys(keys))
            }
        }
    }
}

fn describe_keys(keys: &[(Expr, bool)]) -> String {
    keys.iter()
        .map(|(e, desc)| format!("{}{}", e.default_name(), if *desc { " DESC" } else { "" }))
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.nodes().iter().map(|n| n.describe()).collect();
        write!(f, "{}", parts.join(" → "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::{parse, Statement};

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn from_stmt_mirrors_clause_order() {
        let plan = LogicalPlan::from_stmt(
            &select("SELECT k, COUNT(*) FROM t WHERE v > 1 GROUP BY k ORDER BY k LIMIT 2"),
            true,
        );
        let names: Vec<&str> = plan.nodes().iter().map(|n| n.name()).collect();
        assert_eq!(names, vec!["Scan", "Filter", "Aggregate", "Sort", "Limit"]);
        let text = plan.to_string();
        assert!(text.contains("Filter(v > 1)"), "{text}");
        assert!(text.contains("Aggregate[weighted]"), "{text}");
    }

    #[test]
    fn projection_plan_display() {
        let plan = LogicalPlan::from_stmt(&select("SELECT k FROM t"), false);
        assert_eq!(plan.to_string(), "Scan → Project[k]");
        assert_eq!(plan.scan().name(), "Scan");
    }
}
