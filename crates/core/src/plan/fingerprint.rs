//! Stable plan fingerprinting — the cache key of the result cache.
//!
//! A fingerprint is a 64-bit hash over everything that determines a
//! query's result under the engine's determinism contract: the
//! *optimized* [`LogicalPlan`] rendering, the resolved relation names it
//! reads, the bound parameter values, the effective visibility, and the
//! model configuration (IPF options, OPEN backend and seed) for
//! visibilities that consult generative machinery. Thread count,
//! partition count, and optimizer setting are deliberately **excluded**:
//! results are bit-identical across all of them, so one entry serves
//! every execution configuration. (The optimizer setting still changes
//! the optimized plan *text*, so cache entries naturally split per
//! setting — each is correct, they just don't share.)
//!
//! The hash is FNV-1a over length-prefixed components. `DefaultHasher`
//! is explicitly avoided: fingerprints are rendered by `EXPLAIN` and
//! travel over the wire in cache-hit notes, so they must be stable
//! across processes, runs, and Rust versions.
//!
//! [`LogicalPlan`]: crate::plan::logical::LogicalPlan

use mosaic_sql::Visibility;
use mosaic_storage::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny process-stable streaming hasher (64-bit FNV-1a).
///
/// Unlike `std::hash::DefaultHasher`, the output is specified by the
/// algorithm alone, so two processes (or a server and its `EXPLAIN`
/// output read by a human) agree on every fingerprint.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a string, length-prefixed so adjacent components can never
    /// alias (`"ab" + "c"` hashes differently from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorb a dynamic value: a type tag plus the exact payload bits.
    /// Floats hash their raw bit pattern, matching the engine-wide
    /// convention that float equality is bit equality.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u8(0),
            Value::Bool(b) => {
                self.write_u8(1);
                self.write_u8(*b as u8);
            }
            Value::Int(i) => {
                self.write_u8(2);
                self.write_u64(*i as u64);
            }
            Value::Float(f) => {
                self.write_u8(3);
                self.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                self.write_u8(4);
                self.write_str(s);
            }
        }
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Compute the canonical fingerprint of a query.
///
/// * `logical` — the rendering of the **optimized** logical plan (its
///   `Display` output), which canonicalizes the statement: two SQL
///   spellings that optimize to the same plan share a fingerprint.
/// * `relations` — resolved relation names the plan reads, in bind
///   order. The logical plan refers to relations by index, so the names
///   must be hashed alongside it.
/// * `params` — bound positional parameter values.
/// * `visibility` — effective visibility the query runs under.
/// * `model_config` — for SEMI-OPEN/OPEN: a stable rendering of the
///   model-relevant options (IPF configuration, OPEN backend, replicate
///   count, and seed). `None` for CLOSED queries.
pub fn plan_fingerprint(
    logical: &str,
    relations: &[String],
    params: &[Value],
    visibility: Visibility,
    model_config: Option<&str>,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(logical);
    h.write_u64(relations.len() as u64);
    for r in relations {
        h.write_str(&r.to_ascii_lowercase());
    }
    h.write_u64(params.len() as u64);
    for p in params {
        h.write_value(p);
    }
    h.write_u8(match visibility {
        Visibility::Closed => 0,
        Visibility::SemiOpen => 1,
        Visibility::Open => 2,
    });
    match model_config {
        Some(cfg) => {
            h.write_u8(1);
            h.write_str(cfg);
        }
        None => h.write_u8(0),
    }
    h.finish()
}

/// Render a fingerprint the way `EXPLAIN` and cache notes show it.
pub fn format_fingerprint(fp: u64) -> String {
    format!("{fp:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(logical: &str, params: &[Value]) -> u64 {
        plan_fingerprint(
            logical,
            &["t".to_string()],
            params,
            Visibility::Closed,
            None,
        )
    }

    #[test]
    fn stable_across_calls_and_processes() {
        // A pinned vector: FNV-1a is fully specified, so this value must
        // never change — it is what makes fingerprints meaningful in
        // EXPLAIN output and across the wire.
        let a = fp("Scan → Project[k]", &[]);
        assert_eq!(a, fp("Scan → Project[k]", &[]));
        assert_eq!(format_fingerprint(a).len(), 16);
    }

    #[test]
    fn every_component_matters() {
        let base = fp("Scan → Project[k]", &[]);
        assert_ne!(base, fp("Scan → Project[j]", &[]), "plan text");
        assert_ne!(base, fp("Scan → Project[k]", &[Value::Int(1)]), "params");
        assert_ne!(
            base,
            plan_fingerprint(
                "Scan → Project[k]",
                &["u".to_string()],
                &[],
                Visibility::Closed,
                None
            ),
            "relation name"
        );
        assert_ne!(
            base,
            plan_fingerprint(
                "Scan → Project[k]",
                &["t".to_string()],
                &[],
                Visibility::SemiOpen,
                Some("ipf")
            ),
            "visibility + model config"
        );
    }

    #[test]
    fn relation_names_are_case_insensitive_like_the_catalog() {
        let lower = plan_fingerprint("p", &["t".into()], &[], Visibility::Closed, None);
        let upper = plan_fingerprint("p", &["T".into()], &[], Visibility::Closed, None);
        assert_eq!(lower, upper);
    }

    #[test]
    fn float_params_hash_by_bit_pattern() {
        let pos = fp("p", &[Value::Float(0.0)]);
        let neg = fp("p", &[Value::Float(-0.0)]);
        assert_ne!(pos, neg, "0.0 and -0.0 are different results downstream");
        let nan = fp("p", &[Value::Float(f64::NAN)]);
        assert_eq!(nan, fp("p", &[Value::Float(f64::NAN)]));
    }

    #[test]
    fn length_prefix_prevents_component_aliasing() {
        let a = plan_fingerprint("ab", &["c".into()], &[], Visibility::Closed, None);
        let b = plan_fingerprint("a", &["bc".into()], &[], Visibility::Closed, None);
        assert_ne!(a, b);
    }
}
