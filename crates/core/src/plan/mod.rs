//! The physical plan layer: lowering a [`SelectStmt`] into a pipeline of
//! vectorized physical operators.
//!
//! A SELECT lowers to `Scan → Filter? → (Project | HashAggregate) →
//! Sort? → Limit?`. Operators implement [`PhysicalOperator`] and exchange
//! [`Batch`]es (a table plus optional parallel row weights — the weights
//! realize the paper's §5.3 weighted-aggregate rewrite and are a
//! first-class plan property, not an executor afterthought). Expression
//! evaluation inside the operators is vectorized over the typed kernels
//! of `mosaic_storage::kernels`, with the row-at-a-time evaluator in
//! `crate::eval` retained as the semantics oracle and runtime fallback.
//!
//! Execution is **morsel-driven and parallel** (see [`parallel`]): the
//! scan splits into fixed-size morsels of Arc-shared column slices,
//! Filter/Project and the partial-aggregate phase of HashAggregate run
//! per morsel on a scoped worker pool, and a single-threaded final pass
//! merges the per-worker partial states before Sort/Limit. The thread
//! count is a plan property ([`PhysicalPlan::with_parallelism`],
//! defaulting to the `MOSAIC_PARALLELISM` environment variable or the
//! machine's core count) and never affects results.

pub(crate) mod aggregate;
pub mod parallel;
pub mod vector;

use std::borrow::Cow;
use std::fmt;

use mosaic_sql::{Expr, SelectItem, SelectStmt};
use mosaic_storage::kernels;
use mosaic_storage::{Column, ColumnBuilder, DataType, Field, Schema, Table, Value};

use crate::{MosaicError, Result};

/// Bind an expression's positional parameters against the execution's
/// parameter vector. Parameter-free expressions (the overwhelmingly
/// common case) are borrowed, not cloned.
pub(crate) fn bind_expr<'a>(expr: &'a Expr, params: &[Value]) -> Result<Cow<'a, Expr>> {
    if !expr.has_params() {
        return Ok(Cow::Borrowed(expr));
    }
    expr.bind_params(params)
        .map(Cow::Owned)
        .map_err(|i| missing_param(i, params.len()))
}

/// The error for a `?` placeholder with no bound value.
pub(crate) fn missing_param(index: usize, supplied: usize) -> MosaicError {
    MosaicError::Param(format!(
        "statement references parameter ?{} but only {supplied} value(s) were supplied",
        index + 1
    ))
}

/// The unit of exchange between physical operators: a table plus an
/// optional weight per row.
pub struct Batch {
    /// Rows.
    pub table: Table,
    /// Optional per-row weights (parallel to `table`).
    pub weights: Option<Vec<f64>>,
}

/// Execution-scoped context handed to operators.
pub struct ExecContext<'a> {
    /// The post-filter, pre-projection input. `Sort` uses it to resolve
    /// ORDER BY keys that reference source columns dropped by the
    /// projection (non-aggregate queries only).
    pub filtered_input: Option<&'a Table>,
    /// Positional-parameter values for this execution (empty for
    /// unprepared statements). Operators bind [`Expr::Param`] nodes
    /// against this vector before evaluating.
    pub params: &'a [Value],
}

/// A vectorized physical operator.
pub trait PhysicalOperator: Send + Sync {
    /// Operator name for plan rendering.
    fn name(&self) -> &'static str;

    /// One-line operator description for `EXPLAIN` output (name plus its
    /// bound expressions).
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Consume an input batch, produce the output batch.
    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch>;
}

/// `WHERE` — evaluate the predicate into a selection bitmap and gather
/// the surviving rows (and their weights).
pub struct FilterOp {
    /// The predicate.
    pub predicate: Expr,
}

impl PhysicalOperator for FilterOp {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn describe(&self) -> String {
        format!("Filter: {}", self.predicate.default_name())
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        let predicate = bind_expr(&self.predicate, ctx.params)?;
        let sel = vector::eval_predicate(&predicate, &input.table)?;
        let idx = sel.to_indices();
        let weights = input.weights.as_ref().map(|w| kernels::take_f64(w, &idx));
        Ok(Batch {
            table: input.table.take(&idx),
            weights,
        })
    }
}

/// Projection without aggregates.
pub struct ProjectOp {
    /// The SELECT list.
    pub items: Vec<SelectItem>,
}

impl ProjectOp {
    /// Evaluate the projection, tagging any error with the failing
    /// item's stage rank (`1 + i` for item `i`; rank 0 is reserved for
    /// stages that precede the shape). The morsel driver uses the rank
    /// to reproduce whole-table error ordering across morsels.
    pub(crate) fn project_ranked(
        &self,
        table: &Table,
        params: &[Value],
    ) -> aggregate::Ranked<Table> {
        let mut fields = Vec::new();
        let mut columns = Vec::new();
        for (ii, item) in self.items.iter().enumerate() {
            let rank = 1 + ii as u32;
            match item {
                SelectItem::Wildcard => {
                    for (i, f) in table.schema().fields().iter().enumerate() {
                        fields.push(f.clone());
                        columns.push(table.column(i).clone());
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    let expr = bind_expr(expr, params).map_err(|e| (rank, e))?;
                    let col = vector::eval_expr(&expr, table).map_err(|e| (rank, e))?;
                    fields.push(Field::new(output_name(item), col.data_type()));
                    columns.push(col);
                }
            }
        }
        Table::new(Schema::new(fields), columns).map_err(|e| (u32::MAX, e.into()))
    }
}

impl PhysicalOperator for ProjectOp {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn describe(&self) -> String {
        let names: Vec<String> = self.items.iter().map(output_name).collect();
        format!("Project: [{}]", names.join(", "))
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        self.project_ranked(&input.table, ctx.params)
            .map(|table| Batch {
                table,
                weights: None,
            })
            .map_err(|(_, e)| e)
    }
}

/// Grouped (or global) aggregation; `weighted` records whether the plan
/// rewrites aggregates into their weighted forms.
pub struct HashAggregateOp {
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// GROUP BY expressions (empty = one global group).
    pub group_by: Vec<Expr>,
    /// Weighted-rewrite property (paper §5.3): COUNT(*) → SUM(weight),
    /// SUM(x) → SUM(weight·x), AVG → weighted mean.
    pub weighted: bool,
}

impl PhysicalOperator for HashAggregateOp {
    fn name(&self) -> &'static str {
        "HashAggregate"
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self.group_by.iter().map(Expr::default_name).collect();
        let items: Vec<String> = self.items.iter().map(output_name).collect();
        format!(
            "HashAggregate{}: keys=[{}], items=[{}]",
            if self.weighted { "[weighted]" } else { "" },
            keys.join(", "),
            items.join(", ")
        )
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        debug_assert_eq!(self.weighted, input.weights.is_some());
        let table = aggregate::execute(
            &self.items,
            &self.group_by,
            &input.table,
            input.weights.as_deref(),
            ctx.params,
        )?;
        Ok(Batch {
            table,
            weights: None,
        })
    }
}

/// `ORDER BY` — stable sort on evaluated key columns.
pub struct SortOp {
    /// `(expr, descending)` sort keys.
    pub keys: Vec<(Expr, bool)>,
}

impl PhysicalOperator for SortOp {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .keys
            .iter()
            .map(|(e, desc)| format!("{}{}", e.default_name(), if *desc { " DESC" } else { "" }))
            .collect();
        format!("Sort: [{}]", keys.join(", "))
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        let out = &input.table;
        // Prefer keys resolved against the output (aliases, aggregate
        // names); fall back to the pre-projection input when the output
        // lacks the column and row counts line up.
        let mut key_cols: Vec<Column> = Vec::with_capacity(self.keys.len());
        for (expr, _) in &self.keys {
            let expr = bind_expr(expr, ctx.params)?;
            let col = match vector::eval_expr(&expr, out) {
                Ok(c) => c,
                Err(e) => match ctx.filtered_input {
                    Some(t) if t.num_rows() == out.num_rows() => vector::eval_expr(&expr, t)?,
                    _ => return Err(e),
                },
            };
            key_cols.push(col);
        }
        let mut idx: Vec<usize> = (0..out.num_rows()).collect();
        idx.sort_by(|&a, &b| {
            for (ki, (_, desc)) in self.keys.iter().enumerate() {
                let ord = key_cols[ki].total_cmp_rows(a, b);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(Batch {
            table: out.take(&idx),
            weights: input.weights.as_ref().map(|w| kernels::take_f64(w, &idx)),
        })
    }
}

/// `LIMIT n`.
pub struct LimitOp {
    /// Maximum number of output rows.
    pub n: usize,
}

impl PhysicalOperator for LimitOp {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn describe(&self) -> String {
        format!("Limit: {}", self.n)
    }

    fn execute(&self, _ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        Ok(Batch {
            table: input.table.limit(self.n),
            weights: input
                .weights
                .as_ref()
                .map(|w| w[..w.len().min(self.n)].to_vec()),
        })
    }
}

/// The shape stage of a plan: exactly one of projection or aggregation.
/// Kept as an enum (not a boxed trait object) so the morsel driver can
/// split aggregation into its partial and final phases.
pub(crate) enum Shape {
    /// Projection without aggregates.
    Project(ProjectOp),
    /// Grouped or global aggregation.
    Aggregate(HashAggregateOp),
}

impl Shape {
    fn name(&self) -> &'static str {
        match self {
            Shape::Project(op) => op.name(),
            Shape::Aggregate(op) => op.name(),
        }
    }

    fn describe(&self) -> String {
        match self {
            Shape::Project(op) => op.describe(),
            Shape::Aggregate(op) => op.describe(),
        }
    }
}

/// A lowered SELECT: filter stages, one shape stage (projection or
/// aggregation), then ordering stages.
///
/// Execution is morsel-driven (see [`parallel`]): the scan splits into
/// fixed-size morsels of Arc-shared column slices, the filter and shape
/// stages run per morsel — on `parallelism` worker threads when the
/// input spans several morsels — and per-morsel outputs merge in morsel
/// order before the ordering stages. Morsel boundaries depend only on
/// the row count, so results are **bit-identical at every thread
/// count**, and a single-morsel input reproduces the serial whole-table
/// path exactly.
pub struct PhysicalPlan {
    pre_shape: Vec<Box<dyn PhysicalOperator>>,
    pub(crate) shape: Shape,
    pub(crate) post_shape: Vec<Box<dyn PhysicalOperator>>,
    parallelism: usize,
}

impl PhysicalPlan {
    /// Execute against a source table with optional row weights.
    pub fn execute(&self, table: &Table, weights: Option<&[f64]>) -> Result<Table> {
        self.execute_with_params(table, weights, &[])
    }

    /// Execute with positional-parameter values bound into the plan's
    /// [`Expr::Param`] placeholders (the prepared-statement fast path:
    /// the plan was built once at prepare time; only parameter binding
    /// and execution happen here).
    pub fn execute_with_params(
        &self,
        table: &Table,
        weights: Option<&[f64]>,
        params: &[Value],
    ) -> Result<Table> {
        parallel::execute_plan(self, table, weights, params, self.parallelism)
    }

    /// [`Self::execute_with_params`] with a per-execution worker-thread
    /// cap overriding the plan's own. The OPEN replicate loop uses this
    /// to run a prepared plan single-threaded inside its worker pool.
    pub(crate) fn execute_capped(
        &self,
        table: &Table,
        weights: Option<&[f64]>,
        params: &[Value],
        threads: usize,
    ) -> Result<Table> {
        parallel::execute_plan(self, table, weights, params, threads.max(1))
    }

    /// Cap the number of worker threads the plan may use (minimum 1).
    /// The thread count never changes results — only wall-clock time.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// The plan's worker-thread cap.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// True when the shape stage aggregates. ORDER BY keys must then
    /// resolve against the aggregate output only — offering the
    /// pre-shape input as a fallback would let sorts silently bind to
    /// unaggregated source columns whenever the group count happens to
    /// equal the input row count.
    pub(crate) fn is_aggregate(&self) -> bool {
        matches!(self.shape, Shape::Aggregate(_))
    }

    /// The filter stages that run before the shape stage.
    pub(crate) fn pre_shape(&self) -> &[Box<dyn PhysicalOperator>] {
        &self.pre_shape
    }

    /// Operator names in execution order (EXPLAIN-style).
    pub fn operators(&self) -> Vec<&'static str> {
        let mut names = vec!["Scan"];
        names.extend(self.pre_shape.iter().map(|op| op.name()));
        names.push(self.shape.name());
        names.extend(self.post_shape.iter().map(|op| op.name()));
        names
    }

    /// One description line per operator (excluding the scan, which only
    /// the engine can describe — it knows the relation) in execution
    /// order. Used by `EXPLAIN`.
    pub fn describe_operators(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.pre_shape.iter().map(|op| op.describe()).collect();
        lines.push(self.shape.describe());
        lines.extend(self.post_shape.iter().map(|op| op.describe()));
        lines
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.operators().join(" → "))
    }
}

/// True when the statement needs the aggregate shape.
pub(crate) fn has_aggregate_shape(stmt: &SelectStmt) -> bool {
    !stmt.group_by.is_empty()
        || stmt.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        })
}

/// Lower a SELECT into a physical plan. `weighted` marks whether the
/// execution will carry row weights (population queries under SEMI-OPEN /
/// OPEN visibility).
pub fn lower(stmt: &SelectStmt, weighted: bool) -> PhysicalPlan {
    let mut pre_shape: Vec<Box<dyn PhysicalOperator>> = Vec::new();
    if let Some(pred) = &stmt.where_clause {
        pre_shape.push(Box::new(FilterOp {
            predicate: pred.clone(),
        }));
    }
    let shape = if has_aggregate_shape(stmt) {
        Shape::Aggregate(HashAggregateOp {
            items: stmt.items.clone(),
            group_by: stmt.group_by.clone(),
            weighted,
        })
    } else {
        Shape::Project(ProjectOp {
            items: stmt.items.clone(),
        })
    };
    let mut post_shape: Vec<Box<dyn PhysicalOperator>> = Vec::new();
    if !stmt.order_by.is_empty() {
        post_shape.push(Box::new(SortOp {
            keys: stmt.order_by.clone(),
        }));
    }
    if let Some(n) = stmt.limit {
        post_shape.push(Box::new(LimitOp { n }));
    }
    PhysicalPlan {
        pre_shape,
        shape,
        post_shape,
        parallelism: parallel::default_parallelism(),
    }
}

/// Output column name of a projection item.
pub(crate) fn output_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".into(),
        SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| expr.default_name()),
    }
}

/// Assemble per-group output rows into a table, inferring each column's
/// type with the Int→Float widening rule the reference executor uses.
pub(crate) fn assemble_value_rows(fields: &[String], value_rows: &[Vec<Value>]) -> Result<Table> {
    let ncols = fields.len();
    let mut schema_fields = Vec::with_capacity(ncols);
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut ty: Option<DataType> = None;
        for row in value_rows {
            match (ty, row[c].data_type()) {
                (None, Some(t)) => ty = Some(t),
                (Some(DataType::Int), Some(DataType::Float)) => ty = Some(DataType::Float),
                _ => {}
            }
        }
        let ty = ty.unwrap_or(DataType::Int);
        let mut b = ColumnBuilder::with_capacity(ty, value_rows.len());
        for row in value_rows {
            let v = match (&row[c], ty) {
                (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
                (v, _) => v.clone(),
            };
            b.push(v)?;
        }
        schema_fields.push(Field::new(fields[c].clone(), ty));
        columns.push(b.finish());
    }
    Table::new(Schema::new(schema_fields), columns).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::{parse, Statement};
    use mosaic_storage::TableBuilder;

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ]);
        let mut b = TableBuilder::new(schema);
        for (k, v) in [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)] {
            b.push_row(vec![k.into(), (v as i64).into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn lowering_shapes() {
        let plan = lower(&select("SELECT * FROM t"), false);
        assert_eq!(plan.operators(), vec!["Scan", "Project"]);
        let plan = lower(
            &select("SELECT k, COUNT(*) FROM t WHERE v > 1 GROUP BY k ORDER BY k LIMIT 2"),
            true,
        );
        assert_eq!(
            plan.operators(),
            vec!["Scan", "Filter", "HashAggregate", "Sort", "Limit"]
        );
        assert_eq!(
            plan.to_string(),
            "Scan → Filter → HashAggregate → Sort → Limit"
        );
    }

    #[test]
    fn plan_executes_group_by() {
        let plan = lower(
            &select("SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY s DESC"),
            false,
        );
        let out = plan.execute(&table(), None).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, 0), Value::Str("b".into()));
        assert_eq!(out.value(0, 1), Value::Int(6));
        assert_eq!(out.value(1, 0), Value::Str("c".into()));
        assert_eq!(out.value(2, 0), Value::Str("a".into()));
    }

    #[test]
    fn weighted_plan_property() {
        let plan = lower(&select("SELECT COUNT(*) FROM t"), true);
        let w = [2.0, 2.0, 2.0, 2.0, 2.0];
        let out = plan.execute(&table(), Some(&w)).unwrap();
        assert_eq!(out.value(0, 0), Value::Float(10.0));
    }

    #[test]
    fn aggregate_sort_cannot_bind_source_columns() {
        // Every key is its own group, so group count == input row count;
        // the sort must still refuse to fall back to the unaggregated
        // input (the row-wise reference errors here too).
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ]);
        let mut b = TableBuilder::new(schema);
        for (k, v) in [("a", 3), ("b", 1), ("c", 2)] {
            b.push_row(vec![k.into(), (v as i64).into()]).unwrap();
        }
        let t = b.finish();
        let plan = lower(
            &select("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY v"),
            false,
        );
        assert!(plan.execute(&t, None).is_err());
    }

    #[test]
    fn min_max_beyond_f64_precision_matches_oracle() {
        // 2^53 + 1 and 2^53 collapse to the same f64; the reference's
        // sql_cmp sees them as equal and keeps the first value.
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        for v in [(1i64 << 53) + 1, 1i64 << 53] {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish();
        let stmt = select("SELECT MIN(v), MAX(v) FROM t");
        let vectorized = lower(&stmt, false).execute(&t, None).unwrap();
        let rowwise = crate::exec::run_select_rowwise(&stmt, &t, None).unwrap();
        assert_eq!(vectorized.value(0, 0), rowwise.value(0, 0));
        assert_eq!(vectorized.value(0, 1), rowwise.value(0, 1));
    }

    #[test]
    fn sort_falls_back_to_filtered_input() {
        let plan = lower(
            &select("SELECT k FROM t WHERE v > 1 ORDER BY v DESC"),
            false,
        );
        let out = plan.execute(&table(), None).unwrap();
        assert_eq!(out.value(0, 0), Value::Str("c".into()));
        assert_eq!(out.num_rows(), 4);
    }
}
