//! The plan layer: a [`SelectStmt`] lowers into a [`LogicalPlan`] IR
//! (see [`logical`]), the rule-based optimizer in [`optimize`] rewrites
//! it (projection pruning, constant folding, Sort+Limit → TopK fusion),
//! and [`lower_logical`] turns the result into a pipeline of vectorized
//! physical operators. [`plan_select`] runs the whole chain and keeps
//! the before/after logical plans plus the fired rule names for
//! `EXPLAIN`; [`lower`] is the direct unoptimized translation.
//!
//! A SELECT lowers to `Scan → Filter? → (Project | HashAggregate) →
//! Sort? → Limit?` (`Sort → Limit` becomes a single `TopK` when the
//! optimizer fuses them). Operators implement [`PhysicalOperator`] and exchange
//! [`Batch`]es (a table plus optional parallel row weights — the weights
//! realize the paper's §5.3 weighted-aggregate rewrite and are a
//! first-class plan property, not an executor afterthought). Expression
//! evaluation inside the operators is vectorized over the typed kernels
//! of `mosaic_storage::kernels`, with the row-at-a-time evaluator in
//! `crate::eval` retained as the semantics oracle and runtime fallback.
//!
//! Execution is **morsel-driven and parallel** (see [`parallel`]): the
//! scan splits into fixed-size morsels of Arc-shared column slices,
//! Filter/Project and the partial-aggregate phase of HashAggregate run
//! per morsel on a scoped worker pool, and the aggregate merge itself is
//! radix-partitioned across the same pool before Sort/Limit. The thread
//! count is a plan property ([`PhysicalPlan::with_parallelism`],
//! defaulting to the `MOSAIC_PARALLELISM` environment variable or the
//! machine's core count) and never affects results; the same holds for
//! the merge partition count ([`PhysicalPlan::with_agg_partitions`],
//! defaulting to `MOSAIC_AGG_PARTITIONS` or 16).

pub(crate) mod aggregate;
pub mod fingerprint;
pub mod join;
pub mod logical;
pub mod optimize;
pub mod parallel;
pub mod vector;

use std::borrow::Cow;
use std::fmt;

use mosaic_sql::{Expr, SelectItem, SelectStmt};
use mosaic_storage::kernels;
use mosaic_storage::{Column, ColumnBuilder, DataType, Field, Schema, Table, Value};

use crate::{MosaicError, Result};
use logical::LogicalPlan;

/// Bind an expression's positional parameters against the execution's
/// parameter vector. Parameter-free expressions (the overwhelmingly
/// common case) are borrowed, not cloned.
pub(crate) fn bind_expr<'a>(expr: &'a Expr, params: &[Value]) -> Result<Cow<'a, Expr>> {
    if !expr.has_params() {
        return Ok(Cow::Borrowed(expr));
    }
    expr.bind_params(params)
        .map(Cow::Owned)
        .map_err(|i| missing_param(i, params.len()))
}

/// The error for a `?` placeholder with no bound value.
pub(crate) fn missing_param(index: usize, supplied: usize) -> MosaicError {
    MosaicError::Param(format!(
        "statement references parameter ?{} but only {supplied} value(s) were supplied",
        index + 1
    ))
}

/// The unit of exchange between physical operators: a table plus an
/// optional weight per row.
pub struct Batch {
    /// Rows.
    pub table: Table,
    /// Optional per-row weights (parallel to `table`).
    pub weights: Option<Vec<f64>>,
}

/// Execution-scoped context handed to operators.
pub struct ExecContext<'a> {
    /// The post-filter, pre-projection input. `Sort` uses it to resolve
    /// ORDER BY keys that reference source columns dropped by the
    /// projection (non-aggregate queries only).
    pub filtered_input: Option<&'a Table>,
    /// Positional-parameter values for this execution (empty for
    /// unprepared statements). Operators bind [`Expr::Param`] nodes
    /// against this vector before evaluating.
    pub params: &'a [Value],
    /// Worker-thread budget for operators that parallelize internally
    /// (`Sort` builds per-block sorted runs on the worker pool).
    /// Morsel-phase contexts pass 1 — those operators already run *on*
    /// the pool. Never changes results, only who computes them.
    pub threads: usize,
}

/// A vectorized physical operator.
pub trait PhysicalOperator: Send + Sync {
    /// Operator name for plan rendering.
    fn name(&self) -> &'static str;

    /// One-line operator description for `EXPLAIN` output (name plus its
    /// bound expressions).
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Consume an input batch, produce the output batch.
    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch>;
}

/// `WHERE` — evaluate the predicate into a selection bitmap and gather
/// the surviving rows (and their weights).
pub struct FilterOp {
    /// The predicate.
    pub predicate: Expr,
}

impl PhysicalOperator for FilterOp {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn describe(&self) -> String {
        format!("Filter: {}", self.predicate.default_name())
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        let predicate = bind_expr(&self.predicate, ctx.params)?;
        let sel = vector::eval_predicate(&predicate, &input.table)?;
        let idx = sel.to_indices();
        let weights = input.weights.as_ref().map(|w| kernels::take_f64(w, &idx));
        Ok(Batch {
            table: input.table.take(&idx),
            weights,
        })
    }
}

/// Projection without aggregates.
pub struct ProjectOp {
    /// The SELECT list.
    pub items: Vec<SelectItem>,
}

impl ProjectOp {
    /// Evaluate the projection, tagging any error with the failing
    /// item's stage rank (`1 + i` for item `i`; rank 0 is reserved for
    /// stages that precede the shape). The morsel driver uses the rank
    /// to reproduce whole-table error ordering across morsels.
    pub(crate) fn project_ranked(
        &self,
        table: &Table,
        params: &[Value],
    ) -> aggregate::Ranked<Table> {
        let mut fields = Vec::new();
        let mut columns = Vec::new();
        for (ii, item) in self.items.iter().enumerate() {
            let rank = 1 + ii as u32;
            match item {
                SelectItem::Wildcard => {
                    for (i, f) in table.schema().fields().iter().enumerate() {
                        fields.push(f.clone());
                        columns.push(table.column(i).clone());
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    let expr = bind_expr(expr, params).map_err(|e| (rank, e))?;
                    let col = vector::eval_expr(&expr, table).map_err(|e| (rank, e))?;
                    fields.push(Field::new(output_name(item), col.data_type()));
                    columns.push(col);
                }
            }
        }
        Table::new(Schema::new(fields), columns).map_err(|e| (u32::MAX, e.into()))
    }
}

impl PhysicalOperator for ProjectOp {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn describe(&self) -> String {
        let names: Vec<String> = self.items.iter().map(output_name).collect();
        format!("Project: [{}]", names.join(", "))
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        self.project_ranked(&input.table, ctx.params)
            .map(|table| Batch {
                table,
                weights: None,
            })
            .map_err(|(_, e)| e)
    }
}

/// Grouped (or global) aggregation; `weighted` records whether the plan
/// rewrites aggregates into their weighted forms.
pub struct HashAggregateOp {
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// GROUP BY expressions (empty = one global group).
    pub group_by: Vec<Expr>,
    /// Weighted-rewrite property (paper §5.3): COUNT(*) → SUM(weight),
    /// SUM(x) → SUM(weight·x), AVG → weighted mean.
    pub weighted: bool,
}

impl PhysicalOperator for HashAggregateOp {
    fn name(&self) -> &'static str {
        "HashAggregate"
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self.group_by.iter().map(Expr::default_name).collect();
        let items: Vec<String> = self.items.iter().map(output_name).collect();
        format!(
            "HashAggregate{}: keys=[{}], items=[{}]",
            if self.weighted { "[weighted]" } else { "" },
            keys.join(", "),
            items.join(", ")
        )
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        debug_assert_eq!(self.weighted, input.weights.is_some());
        let table = aggregate::execute(
            &self.items,
            &self.group_by,
            &input.table,
            input.weights.as_deref(),
            ctx.params,
        )?;
        Ok(Batch {
            table,
            weights: None,
        })
    }
}

/// `ORDER BY` — sort on evaluated key columns. Multi-block inputs sort
/// as parallel per-block runs + one k-way merge under a strict
/// (keys, row index) order, which is the stable sort's order exactly —
/// bit-identical at every thread count.
pub struct SortOp {
    /// `(expr, descending)` sort keys.
    pub keys: Vec<(Expr, bool)>,
}

impl PhysicalOperator for SortOp {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .keys
            .iter()
            .map(|(e, desc)| format!("{}{}", e.default_name(), if *desc { " DESC" } else { "" }))
            .collect();
        format!("Sort: [{}]", keys.join(", "))
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        let out = &input.table;
        let key_cols = eval_sort_keys(&self.keys, ctx, out)?;
        // Strict total order: the ORDER BY key chain, ties broken on the
        // original row index — exactly the permutation a *stable* sort
        // by the keys alone produces. Strictness is what lets the sort
        // split into per-block runs on the worker pool and recombine
        // through a k-way merge without changing a single output bit at
        // any thread count (`parallel_sort_indices`).
        let less = |a: usize, b: usize| {
            for (ki, (_, desc)) in self.keys.iter().enumerate() {
                let ord = key_cols[ki].total_cmp_rows(a, b);
                let ord = if *desc { ord.reverse() } else { ord };
                match ord {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => {}
                }
            }
            a < b
        };
        let idx = parallel::parallel_sort_indices(out.num_rows(), ctx.threads, less);
        Ok(Batch {
            table: out.take(&idx),
            weights: input.weights.as_ref().map(|w| kernels::take_f64(w, &idx)),
        })
    }
}

/// Evaluate `ORDER BY` key columns: prefer keys resolved against the
/// operator output (aliases, aggregate names); fall back to the
/// pre-projection input when the output lacks the column and row counts
/// line up. Shared by [`SortOp`] and [`TopKOp`] — the fused operator
/// must resolve keys exactly like the sort it replaces, or the
/// optimizer's bit-identity contract breaks.
fn eval_sort_keys(
    keys: &[(Expr, bool)],
    ctx: &ExecContext<'_>,
    out: &Table,
) -> Result<Vec<Column>> {
    let mut key_cols: Vec<Column> = Vec::with_capacity(keys.len());
    for (expr, _) in keys {
        let expr = bind_expr(expr, ctx.params)?;
        let col = match vector::eval_expr(&expr, out) {
            Ok(c) => c,
            Err(e) => match ctx.filtered_input {
                Some(t) if t.num_rows() == out.num_rows() => vector::eval_expr(&expr, t)?,
                _ => return Err(e),
            },
        };
        key_cols.push(col);
    }
    Ok(key_cols)
}

/// `LIMIT n`.
pub struct LimitOp {
    /// Maximum number of output rows.
    pub n: usize,
}

impl PhysicalOperator for LimitOp {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn describe(&self) -> String {
        format!("Limit: {}", self.n)
    }

    fn execute(&self, _ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        Ok(Batch {
            table: input.table.limit(self.n),
            weights: input
                .weights
                .as_ref()
                .map(|w| w[..w.len().min(self.n)].to_vec()),
        })
    }
}

/// Fused `ORDER BY … LIMIT n`: the first `n` rows of the stable sort
/// order, selected with bounded per-morsel heaps plus an ordered merge
/// instead of a full sort — O(rows · log n) against Sort's
/// O(rows · log rows). Ties break on the original row index, which is
/// exactly what a stable sort followed by `LIMIT n` produces, so the
/// fused operator is bit-identical to the `Sort → Limit` pair it
/// replaces (the optimizer's `sort_limit_fusion` rule relies on this).
pub struct TopKOp {
    /// `(expr, descending)` sort keys.
    pub keys: Vec<(Expr, bool)>,
    /// Number of rows to keep.
    pub n: usize,
}

impl PhysicalOperator for TopKOp {
    fn name(&self) -> &'static str {
        "TopK"
    }

    fn describe(&self) -> String {
        let keys: Vec<String> = self
            .keys
            .iter()
            .map(|(e, desc)| format!("{}{}", e.default_name(), if *desc { " DESC" } else { "" }))
            .collect();
        format!("TopK: [{}] limit {}", keys.join(", "), self.n)
    }

    fn execute(&self, ctx: &ExecContext<'_>, input: &Batch) -> Result<Batch> {
        let out = &input.table;
        let key_cols = eval_sort_keys(&self.keys, ctx, out)?;
        // Strict total order: key comparison, then the original row
        // index — the order a stable sort realizes.
        let cmp = |a: usize, b: usize| -> std::cmp::Ordering {
            for (ki, (_, desc)) in self.keys.iter().enumerate() {
                let ord = key_cols[ki].total_cmp_rows(a, b);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b)
        };
        let rows = out.num_rows();
        // Bounded heap per morsel-sized block, then an ordered merge of
        // the ≤ n survivors per block.
        let mut candidates: Vec<usize> = Vec::new();
        let mut start = 0;
        while start < rows {
            let end = (start + parallel::MORSEL_ROWS).min(rows);
            top_n_in_range(start..end, self.n, &cmp, &mut candidates);
            start = end;
        }
        candidates.sort_unstable_by(|&a, &b| cmp(a, b));
        candidates.truncate(self.n);
        Ok(Batch {
            table: out.take(&candidates),
            weights: input
                .weights
                .as_ref()
                .map(|w| kernels::take_f64(w, &candidates)),
        })
    }
}

/// Append the `n` smallest row indices (under `cmp`) of `range` to
/// `out`, using a bounded binary max-heap (the root is the worst row
/// currently kept, so a better row replaces it in O(log n)).
fn top_n_in_range(
    range: std::ops::Range<usize>,
    n: usize,
    cmp: &impl Fn(usize, usize) -> std::cmp::Ordering,
    out: &mut Vec<usize>,
) {
    if n == 0 {
        return;
    }
    let base = out.len();
    for row in range {
        if out.len() - base < n {
            out.push(row);
            // Sift up.
            let heap = &mut out[base..];
            let mut i = heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if cmp(heap[i], heap[parent]) == std::cmp::Ordering::Greater {
                    heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
            continue;
        }
        let heap = &mut out[base..];
        if cmp(row, heap[0]) != std::cmp::Ordering::Less {
            continue;
        }
        heap[0] = row;
        // Sift down.
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < heap.len() && cmp(heap[l], heap[largest]) == std::cmp::Ordering::Greater {
                largest = l;
            }
            if r < heap.len() && cmp(heap[r], heap[largest]) == std::cmp::Ordering::Greater {
                largest = r;
            }
            if largest == i {
                break;
            }
            heap.swap(i, largest);
            i = largest;
        }
    }
}

/// The shape stage of a plan: exactly one of projection or aggregation.
/// Kept as an enum (not a boxed trait object) so the morsel driver can
/// split aggregation into its partial and final phases.
pub(crate) enum Shape {
    /// Projection without aggregates.
    Project(ProjectOp),
    /// Grouped or global aggregation.
    Aggregate(HashAggregateOp),
}

impl Shape {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Shape::Project(op) => op.name(),
            Shape::Aggregate(op) => op.name(),
        }
    }

    fn describe(&self) -> String {
        match self {
            Shape::Project(op) => op.describe(),
            Shape::Aggregate(op) => op.describe(),
        }
    }
}

/// A lowered SELECT: filter stages, one shape stage (projection or
/// aggregation), then ordering stages.
///
/// Execution is morsel-driven (see [`parallel`]): the scan splits into
/// fixed-size morsels of Arc-shared column slices, the filter and shape
/// stages run per morsel — on `parallelism` worker threads when the
/// input spans several morsels — and per-morsel outputs merge in morsel
/// order before the ordering stages. Morsel boundaries depend only on
/// the row count, so results are **bit-identical at every thread
/// count**, and a single-morsel input reproduces the serial whole-table
/// path exactly.
pub struct PhysicalPlan {
    /// Columns the scan keeps (`None` = all): the physical realization
    /// of the optimizer's projection-pruning rule. Resolved by *name*
    /// against the actual table at execution time — relations can be
    /// re-bound between prepare and execute, so plan-time column ids
    /// are advisory (they live on the logical plan for display).
    scan_columns: Option<Vec<String>>,
    /// The hash-join stage for two-relation plans (`None` for
    /// single-relation plans). A join plan executes through
    /// [`PhysicalPlan::execute_join`]: the join materializes the
    /// combined table, then the remaining pipeline runs over it
    /// morsel-parallel like any scan.
    pub(crate) join: Option<join::HashJoinOp>,
    pre_shape: Vec<Box<dyn PhysicalOperator>>,
    pub(crate) shape: Shape,
    pub(crate) post_shape: Vec<Box<dyn PhysicalOperator>>,
    parallelism: usize,
    agg_partitions: usize,
}

impl PhysicalPlan {
    /// Execute against a source table with optional row weights.
    pub fn execute(&self, table: &Table, weights: Option<&[f64]>) -> Result<Table> {
        self.execute_with_params(table, weights, &[])
    }

    /// True when this plan joins two relations (execute it with
    /// [`PhysicalPlan::execute_join`], not [`PhysicalPlan::execute`]).
    pub fn is_join(&self) -> bool {
        self.join.is_some()
    }

    /// The plan's hash-join stage, if any.
    pub fn join_op(&self) -> Option<&join::HashJoinOp> {
        self.join.as_ref()
    }

    /// Execute a two-relation join plan against its left and right
    /// source tables (base relation first, joined relation second).
    pub fn execute_join(&self, left: &Table, right: &Table) -> Result<Table> {
        self.execute_join_with_params(left, right, &[])
    }

    /// [`PhysicalPlan::execute_join`] with positional-parameter values.
    pub fn execute_join_with_params(
        &self,
        left: &Table,
        right: &Table,
        params: &[Value],
    ) -> Result<Table> {
        parallel::execute_join_plan(
            self,
            left,
            right,
            params,
            self.parallelism,
            self.agg_partitions,
        )
    }

    /// [`PhysicalPlan::execute_join_with_params`] with per-execution
    /// worker-thread and merge-partition caps overriding the plan's
    /// own, plus a post-join hook: `post_join` runs over the
    /// materialized joined table *before* the rest of the pipeline. The
    /// engine uses it to IPF-re-calibrate the combined weight column of
    /// a weighted×weighted join against declared marginals.
    pub(crate) fn execute_join_capped_with(
        &self,
        left: &Table,
        right: &Table,
        params: &[Value],
        threads: usize,
        partitions: usize,
        post_join: Option<&(dyn Fn(Table) -> Result<Table> + Sync)>,
    ) -> Result<Table> {
        parallel::execute_join_plan_with(
            self,
            left,
            right,
            params,
            threads.max(1),
            partitions.max(1),
            post_join,
        )
    }

    /// Execute with positional-parameter values bound into the plan's
    /// [`Expr::Param`] placeholders (the prepared-statement fast path:
    /// the plan was built once at prepare time; only parameter binding
    /// and execution happen here).
    pub fn execute_with_params(
        &self,
        table: &Table,
        weights: Option<&[f64]>,
        params: &[Value],
    ) -> Result<Table> {
        parallel::execute_plan(
            self,
            table,
            weights,
            params,
            self.parallelism,
            self.agg_partitions,
        )
    }

    /// [`Self::execute_with_params`] with per-execution worker-thread
    /// and merge-partition caps overriding the plan's own. The OPEN
    /// replicate loop uses this to run a prepared plan single-threaded
    /// inside its worker pool.
    pub(crate) fn execute_capped(
        &self,
        table: &Table,
        weights: Option<&[f64]>,
        params: &[Value],
        threads: usize,
        partitions: usize,
    ) -> Result<Table> {
        parallel::execute_plan(
            self,
            table,
            weights,
            params,
            threads.max(1),
            partitions.max(1),
        )
    }

    /// Cap the number of worker threads the plan may use (minimum 1).
    /// The thread count never changes results — only wall-clock time.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// The plan's worker-thread cap.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Set the radix-partition count of the parallel aggregate merge
    /// (minimum 1 = serial merge). Like the thread cap, the partition
    /// count never changes results — only wall-clock time.
    pub fn with_agg_partitions(mut self, partitions: usize) -> Self {
        self.agg_partitions = partitions.max(1);
        self
    }

    /// The plan's aggregate-merge partition count.
    pub fn agg_partitions(&self) -> usize {
        self.agg_partitions
    }

    /// True when the shape stage is a *weighted* aggregate (§5.3
    /// rewrite). A join plan with this property consumes the joined
    /// `weight` column as its row-weight vector.
    pub(crate) fn agg_weighted(&self) -> bool {
        matches!(&self.shape, Shape::Aggregate(op) if op.weighted)
    }

    /// True when the shape stage aggregates. ORDER BY keys must then
    /// resolve against the aggregate output only — offering the
    /// pre-shape input as a fallback would let sorts silently bind to
    /// unaggregated source columns whenever the group count happens to
    /// equal the input row count.
    pub(crate) fn is_aggregate(&self) -> bool {
        matches!(self.shape, Shape::Aggregate(_))
    }

    /// The filter stages that run before the shape stage.
    pub(crate) fn pre_shape(&self) -> &[Box<dyn PhysicalOperator>] {
        &self.pre_shape
    }

    /// The pruned scan's column names (`None` = scan every column).
    pub fn scan_columns(&self) -> Option<&[String]> {
        self.scan_columns.as_deref()
    }

    /// Operator names in execution order (EXPLAIN-style). Join plans
    /// start at the hash join instead of a plain scan.
    pub fn operators(&self) -> Vec<&'static str> {
        let mut names = vec![if self.join.is_some() {
            "HashJoin"
        } else {
            "Scan"
        }];
        names.extend(self.pre_shape.iter().map(|op| op.name()));
        names.push(self.shape.name());
        names.extend(self.post_shape.iter().map(|op| op.name()));
        names
    }

    /// One description line per operator (excluding the scan, which only
    /// the engine can describe — it knows the relation) in execution
    /// order. Used by `EXPLAIN`.
    pub fn describe_operators(&self) -> Vec<String> {
        let mut lines: Vec<String> = Vec::new();
        if let Some(join) = &self.join {
            lines.push(join.describe());
            lines.extend(join.describe_sides().into_iter().map(|l| format!("  {l}")));
        }
        lines.extend(self.pre_shape.iter().map(|op| op.describe()));
        lines.push(self.shape.describe());
        lines.extend(self.post_shape.iter().map(|op| op.describe()));
        lines
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.operators().join(" → "))
    }
}

/// True when the statement needs the aggregate shape.
pub(crate) fn has_aggregate_shape(stmt: &SelectStmt) -> bool {
    !stmt.group_by.is_empty()
        || stmt.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        })
}

/// Lower a SELECT into a physical plan **without optimization** — the
/// direct structural translation (`Scan → Filter? → shape → Sort? →
/// Limit?`). `weighted` marks whether the execution will carry row
/// weights (population queries under SEMI-OPEN / OPEN visibility).
/// [`plan_select`] is the full bind → logical → optimize → physical
/// path.
pub fn lower(stmt: &SelectStmt, weighted: bool) -> PhysicalPlan {
    lower_logical(&LogicalPlan::from_stmt(stmt, weighted))
}

/// Lower a logical plan into the physical operator pipeline.
///
/// Plans built by [`LogicalPlan::from_stmt`] always carry exactly one
/// shape node (`Project` or `Aggregate`). A hand-assembled chain
/// without one lowers as an implicit `SELECT *` projection — the
/// identity shape — rather than panicking.
pub fn lower_logical(plan: &LogicalPlan) -> PhysicalPlan {
    let mut scan_columns = None;
    let mut join_stage = None;
    let mut pre_shape: Vec<Box<dyn PhysicalOperator>> = Vec::new();
    let mut shape: Option<Shape> = None;
    let mut post_shape: Vec<Box<dyn PhysicalOperator>> = Vec::new();
    for node in plan.nodes() {
        match node {
            LogicalPlan::Scan { columns, .. } => {
                scan_columns = columns
                    .as_ref()
                    .map(|cols| cols.iter().map(|c| c.name.clone()).collect());
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                keys,
                output,
                ..
            } => {
                join_stage = Some(join::HashJoinOp {
                    left: lower_join_side(left, keys.iter().map(|(l, _)| l.clone()).collect()),
                    right: lower_join_side(right, keys.iter().map(|(_, r)| r.clone()).collect()),
                    kind: *kind,
                    output: output.clone(),
                });
            }
            LogicalPlan::Filter { predicate, .. } => pre_shape.push(Box::new(FilterOp {
                predicate: predicate.clone(),
            })),
            LogicalPlan::Project { items, .. } => {
                shape = Some(Shape::Project(ProjectOp {
                    items: items.clone(),
                }));
            }
            LogicalPlan::Aggregate {
                items,
                group_by,
                weighted,
                ..
            } => {
                shape = Some(Shape::Aggregate(HashAggregateOp {
                    items: items.clone(),
                    group_by: group_by.clone(),
                    weighted: *weighted,
                }));
            }
            LogicalPlan::Sort { keys, .. } => {
                post_shape.push(Box::new(SortOp { keys: keys.clone() }))
            }
            LogicalPlan::Limit { n, .. } => post_shape.push(Box::new(LimitOp { n: *n })),
            LogicalPlan::TopK { keys, n, .. } => post_shape.push(Box::new(TopKOp {
                keys: keys.clone(),
                n: *n,
            })),
        }
    }
    PhysicalPlan {
        scan_columns,
        join: join_stage,
        pre_shape,
        shape: shape.unwrap_or_else(|| {
            Shape::Project(ProjectOp {
                items: vec![SelectItem::Wildcard],
            })
        }),
        post_shape,
        parallelism: parallel::default_parallelism(),
        agg_partitions: parallel::default_agg_partitions(),
    }
}

/// Lower one join input chain (`Scan → Filter*`) into a [`join::JoinSide`].
fn lower_join_side(side: &LogicalPlan, keys: Vec<Expr>) -> join::JoinSide {
    let mut scan_columns = None;
    let mut filters = Vec::new();
    for node in side.nodes() {
        match node {
            LogicalPlan::Scan { columns, .. } => {
                scan_columns = columns
                    .as_ref()
                    .map(|cols| cols.iter().map(|c| c.name.clone()).collect());
            }
            LogicalPlan::Filter { predicate, .. } => filters.push(FilterOp {
                predicate: predicate.clone(),
            }),
            other => debug_assert!(false, "unexpected join-input node {}", other.name()),
        }
    }
    join::JoinSide {
        scan_columns,
        filters,
        keys,
    }
}

/// A fully planned SELECT: the canonical logical plan, the optimized
/// logical plan with the fired rule names, and the lowered physical
/// plan. Produced by [`plan_select`]; `EXPLAIN` renders all three
/// layers, prepared statements cache the whole bundle so rules run once
/// at prepare time.
pub struct Planned {
    /// The canonical logical plan (before optimization).
    pub logical: LogicalPlan,
    /// The logical plan after the optimizer ran (identical to
    /// `logical` when the optimizer is off or no rule fired).
    pub optimized: LogicalPlan,
    /// Names of the optimizer rules that fired, in application order
    /// (empty when the optimizer is off).
    pub fired: Vec<&'static str>,
    /// The physical plan lowered from `optimized`.
    pub physical: PhysicalPlan,
}

/// Plan one bound SELECT: build the logical plan, optimize it (when
/// `optimizer` is true; `schema` — the bound source schema, if known —
/// enables projection pruning), and lower the physical plan.
///
/// This retains both logical layers for `EXPLAIN` and prepared
/// statements; ad-hoc execution, which only needs the physical plan,
/// uses the crate-internal `physical_plan_for` and skips the
/// expression-tree clones.
pub fn plan_select(
    stmt: &SelectStmt,
    weighted: bool,
    optimizer: bool,
    schema: Option<&Schema>,
) -> Planned {
    plan_logical(LogicalPlan::from_stmt(stmt, weighted), optimizer, schema)
}

/// Optimize + lower an already-built logical plan (the join binder
/// constructs its [`LogicalPlan::Join`] tree itself; single-relation
/// statements go through [`plan_select`]).
pub fn plan_logical(logical: LogicalPlan, optimizer: bool, schema: Option<&Schema>) -> Planned {
    let (optimized, fired) = if optimizer {
        optimize::optimize(logical.clone(), schema)
    } else {
        (logical.clone(), Vec::new())
    };
    let physical = lower_logical(&optimized);
    Planned {
        logical,
        optimized,
        fired,
        physical,
    }
}

/// [`plan_select`] for callers that discard the logical layers (the
/// ad-hoc execution path): same bind → logical → optimize → lower
/// pipeline, optimizing the IR by value so no expression tree is
/// cloned per statement.
pub(crate) fn physical_plan_for(
    stmt: &SelectStmt,
    weighted: bool,
    optimizer: bool,
    schema: Option<&Schema>,
) -> PhysicalPlan {
    let mut logical = LogicalPlan::from_stmt(stmt, weighted);
    if optimizer {
        logical = optimize::optimize(logical, schema).0;
    }
    lower_logical(&logical)
}

/// Output column name of a projection item.
pub(crate) fn output_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".into(),
        SelectItem::Expr { expr, alias } => alias.clone().unwrap_or_else(|| expr.default_name()),
    }
}

/// Assemble per-group output rows into a table, inferring each column's
/// type with the Int→Float widening rule the reference executor uses.
pub(crate) fn assemble_value_rows(fields: &[String], value_rows: &[Vec<Value>]) -> Result<Table> {
    let ncols = fields.len();
    let mut schema_fields = Vec::with_capacity(ncols);
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut ty: Option<DataType> = None;
        for row in value_rows {
            match (ty, row[c].data_type()) {
                (None, Some(t)) => ty = Some(t),
                (Some(DataType::Int), Some(DataType::Float)) => ty = Some(DataType::Float),
                _ => {}
            }
        }
        let ty = ty.unwrap_or(DataType::Int);
        let mut b = ColumnBuilder::with_capacity(ty, value_rows.len());
        for row in value_rows {
            let v = match (&row[c], ty) {
                (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
                (v, _) => v.clone(),
            };
            b.push(v)?;
        }
        schema_fields.push(Field::new(fields[c].clone(), ty));
        columns.push(b.finish());
    }
    Table::new(Schema::new(schema_fields), columns).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::{parse, Statement};
    use mosaic_storage::TableBuilder;

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ]);
        let mut b = TableBuilder::new(schema);
        for (k, v) in [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)] {
            b.push_row(vec![k.into(), (v as i64).into()]).unwrap();
        }
        b.finish()
    }

    /// `Sort` really runs its runs on the worker pool: executing the
    /// operator directly (no morsel driver around it) on a 3-morsel
    /// input with an 8-thread budget must raise the process-wide worker
    /// gauge — and return exactly the serial result. Only a lower bound
    /// is asserted (the gauge is shared with concurrently running
    /// tests).
    #[test]
    fn sort_op_runs_on_worker_pool() {
        use crate::plan::parallel::{reset_worker_thread_peak, worker_thread_peak, MORSEL_ROWS};
        let rows = 3 * MORSEL_ROWS + 17;
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        for r in 0..rows {
            b.push_row(vec![Value::Int(((r * 7919) % 1000) as i64)])
                .unwrap();
        }
        let plan = lower(&select("SELECT v FROM t ORDER BY v DESC"), false);
        let sort = plan
            .post_shape
            .iter()
            .find(|op| op.name() == "Sort")
            .expect("plain ORDER BY lowers to Sort");
        let batch = Batch {
            table: b.finish(),
            weights: None,
        };
        let ctx = |threads: usize| ExecContext {
            filtered_input: None,
            params: &[],
            threads,
        };
        let serial = sort.execute(&ctx(1), &batch).unwrap();
        reset_worker_thread_peak();
        let parallel = sort.execute(&ctx(8), &batch).unwrap();
        assert!(
            worker_thread_peak() >= 2,
            "Sort at 8 threads spawned {} pool worker(s)",
            worker_thread_peak()
        );
        assert_eq!(serial.table.num_rows(), parallel.table.num_rows());
        for r in 0..serial.table.num_rows() {
            assert_eq!(
                serial.table.value(r, 0),
                parallel.table.value(r, 0),
                "row {r}"
            );
        }
    }

    #[test]
    fn lowering_shapes() {
        let plan = lower(&select("SELECT * FROM t"), false);
        assert_eq!(plan.operators(), vec!["Scan", "Project"]);
        let plan = lower(
            &select("SELECT k, COUNT(*) FROM t WHERE v > 1 GROUP BY k ORDER BY k LIMIT 2"),
            true,
        );
        assert_eq!(
            plan.operators(),
            vec!["Scan", "Filter", "HashAggregate", "Sort", "Limit"]
        );
        assert_eq!(
            plan.to_string(),
            "Scan → Filter → HashAggregate → Sort → Limit"
        );
    }

    #[test]
    fn plan_executes_group_by() {
        let plan = lower(
            &select("SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY s DESC"),
            false,
        );
        let out = plan.execute(&table(), None).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, 0), Value::Str("b".into()));
        assert_eq!(out.value(0, 1), Value::Int(6));
        assert_eq!(out.value(1, 0), Value::Str("c".into()));
        assert_eq!(out.value(2, 0), Value::Str("a".into()));
    }

    #[test]
    fn weighted_plan_property() {
        let plan = lower(&select("SELECT COUNT(*) FROM t"), true);
        let w = [2.0, 2.0, 2.0, 2.0, 2.0];
        let out = plan.execute(&table(), Some(&w)).unwrap();
        assert_eq!(out.value(0, 0), Value::Float(10.0));
    }

    #[test]
    fn aggregate_sort_cannot_bind_source_columns() {
        // Every key is its own group, so group count == input row count;
        // the sort must still refuse to fall back to the unaggregated
        // input (the row-wise reference errors here too).
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ]);
        let mut b = TableBuilder::new(schema);
        for (k, v) in [("a", 3), ("b", 1), ("c", 2)] {
            b.push_row(vec![k.into(), (v as i64).into()]).unwrap();
        }
        let t = b.finish();
        let plan = lower(
            &select("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY v"),
            false,
        );
        assert!(plan.execute(&t, None).is_err());
    }

    #[test]
    fn min_max_beyond_f64_precision_matches_oracle() {
        // 2^53 + 1 and 2^53 collapse to the same f64; the reference's
        // sql_cmp sees them as equal and keeps the first value.
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        for v in [(1i64 << 53) + 1, 1i64 << 53] {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish();
        let stmt = select("SELECT MIN(v), MAX(v) FROM t");
        let vectorized = lower(&stmt, false).execute(&t, None).unwrap();
        let rowwise = crate::exec::run_select_rowwise(&stmt, &t, None).unwrap();
        assert_eq!(vectorized.value(0, 0), rowwise.value(0, 0));
        assert_eq!(vectorized.value(0, 1), rowwise.value(0, 1));
    }

    /// The fused TopK operator must reproduce Sort → Limit bit-for-bit:
    /// same rows, same (stable) tie order — across multi-chunk inputs
    /// with heavy ties, NULL keys, mixed directions, and limits around
    /// the edge cases.
    #[test]
    fn topk_matches_sort_limit() {
        let rows = 2 * parallel::MORSEL_ROWS + 321;
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("id", DataType::Int),
        ]);
        let mut b = mosaic_storage::TableBuilder::new(schema);
        for r in 0..rows {
            b.push_row(vec![
                Value::Int((r % 5) as i64), // heavy ties
                if r % 7 == 0 {
                    Value::Null
                } else {
                    Value::Float((r % 97) as f64 - 48.0)
                },
                Value::Int(r as i64),
            ])
            .unwrap();
        }
        let t = b.finish();
        for src in [
            "SELECT g, id FROM t ORDER BY g LIMIT 13",
            "SELECT g, id FROM t ORDER BY g DESC, f LIMIT 50",
            "SELECT id FROM t WHERE f IS NOT NULL ORDER BY f DESC LIMIT 7",
            "SELECT g, f, id FROM t ORDER BY f, g DESC LIMIT 0",
            "SELECT g, id FROM t ORDER BY g LIMIT 1000000",
        ] {
            let stmt = select(src);
            for threads in [1, 4] {
                let unopt = plan_select(&stmt, false, false, Some(t.schema()))
                    .physical
                    .with_parallelism(threads)
                    .execute(&t, None)
                    .unwrap();
                let opt = plan_select(&stmt, false, true, Some(t.schema()))
                    .physical
                    .with_parallelism(threads)
                    .execute(&t, None)
                    .unwrap();
                assert_eq!(unopt.num_rows(), opt.num_rows(), "{src}");
                assert_eq!(unopt.num_columns(), opt.num_columns(), "{src}");
                for r in 0..unopt.num_rows() {
                    for c in 0..unopt.num_columns() {
                        assert_eq!(unopt.value(r, c), opt.value(r, c), "{src} cell ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn optimized_plan_shapes() {
        let planned = plan_select(
            &select("SELECT k FROM t WHERE v > 1 ORDER BY v LIMIT 2"),
            false,
            true,
            None,
        );
        assert_eq!(
            planned.physical.operators(),
            vec!["Scan", "Filter", "Project", "TopK"]
        );
        assert_eq!(planned.fired, vec!["sort_limit_fusion"]);
        // Without the optimizer the structure is untouched.
        let planned = plan_select(
            &select("SELECT k FROM t WHERE v > 1 ORDER BY v LIMIT 2"),
            false,
            false,
            None,
        );
        assert_eq!(
            planned.physical.operators(),
            vec!["Scan", "Filter", "Project", "Sort", "Limit"]
        );
        assert!(planned.fired.is_empty());
    }

    #[test]
    fn sort_falls_back_to_filtered_input() {
        let plan = lower(
            &select("SELECT k FROM t WHERE v > 1 ORDER BY v DESC"),
            false,
        );
        let out = plan.execute(&table(), None).unwrap();
        assert_eq!(out.value(0, 0), Value::Str("c".into()));
        assert_eq!(out.num_rows(), 4);
    }
}
