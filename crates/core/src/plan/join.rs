//! Multi-relation FROM scopes and the vectorized hash equi-join.
//!
//! A `FROM a [AS x] JOIN b [AS y] ON x.k = y.k` clause binds into a
//! scope: the relations in source order, each with a binding name
//! (alias or relation name) and its bound schema. The scope defines the
//! join's **output columns** — a column name unique across both sides
//! keeps its bare name, a duplicated name is qualified as
//! `binding.column` — and resolves every column reference in the
//! statement (qualified or bare, with a bind-time ambiguity error when a
//! bare name matches both sides) to an output column.
//!
//! Join semantics:
//!
//! * **Equi-joins only (INNER or LEFT OUTER).** The ON predicate must be
//!   a conjunction of `left = right` equalities, each side referencing
//!   exactly one relation. Two rows join iff every key pair is equal
//!   under [`Value::sql_cmp`] — numerics coerce through `f64`, strings
//!   compare exactly, and NULL or NaN keys never match anything. A LEFT
//!   OUTER join additionally keeps every unmatched left row once,
//!   NULL-extended on the right side.
//! * **Canonical output order.** Output rows are ordered by (left row,
//!   right row) — the order a nested loop with the left side outermost
//!   produces. The hash executor builds on the *smaller* input and
//!   probes the larger one morsel-parallel, restoring the canonical
//!   order afterwards, so results are bit-identical at every thread
//!   count and to [`reference_join`]. An unmatched left row of a LEFT
//!   OUTER join appears at its left position.
//! * **Weights.** A sample input exposes the engine-managed `weight`
//!   column and the join carries it through (projection pruning never
//!   drops it). When *both* inputs are weighted, the join emits one
//!   **combined** `weight` column — the elementwise product of the two
//!   sides' correction weights, the open-world combination rule under
//!   the independence assumption; the engine can re-calibrate it
//!   against declared marginals with IPF afterwards.
//!
//! [`Value::sql_cmp`]: mosaic_storage::Value::sql_cmp

use std::collections::HashMap;
use std::sync::Arc;

use mosaic_sql::{BinOp, Expr, FromClause, JoinKind, SelectItem, SelectStmt};
use mosaic_storage::{kernels, Bitmap, Column, DataType, Field, Schema, Table, Value};

use super::logical::{JoinOutCol, LogicalPlan};
use super::parallel::{parallel_sort_indices, prune_scan, run_ordered, MORSEL_ROWS};
use super::{bind_expr, Batch, ExecContext, FilterOp, PhysicalOperator};
use crate::{MosaicError, Result};

/// True when a statement's FROM clause needs the multi-relation scope
/// binder: it has joins, an alias, or qualified (`alias.column`)
/// references. Plain single-relation statements keep the pre-join path.
pub(crate) fn needs_scope(stmt: &SelectStmt, from: &FromClause) -> bool {
    from.has_joins()
        || from.base.alias.is_some()
        || stmt.referenced_columns().iter().any(|c| c.contains('.'))
}

/// A relation bound into a FROM scope.
#[derive(Debug, Clone)]
pub(crate) struct ScopeRel {
    /// Catalog relation name (as written in the statement).
    pub name: String,
    /// Binding name column references qualify with (alias or name).
    pub binding: String,
    /// Bound schema (samples: augmented with the `weight` column).
    pub schema: Arc<Schema>,
    /// True when the relation exposes the engine-managed weight column.
    pub weighted: bool,
}

/// A bound multi-relation FROM scope.
#[derive(Debug)]
pub(crate) struct Scope {
    rels: Vec<ScopeRel>,
    out: Vec<JoinOutCol>,
}

/// The join's output columns for a list of (binding, schema) sides:
/// every column of every side in source order, bare-named when unique
/// across the scope, `binding.column` otherwise.
///
/// With `combine_weight` (both sides weighted), the two per-side
/// `weight` columns collapse into one *combined* output named `weight`
/// whose value is their elementwise product; the right side's weight
/// column produces no output of its own.
pub(crate) fn output_columns(sides: &[(&str, &Schema)], combine_weight: bool) -> Vec<JoinOutCol> {
    let is_weight = |name: &str| name.eq_ignore_ascii_case("weight");
    let mut counts: HashMap<String, usize> = HashMap::new();
    for (source, (_, schema)) in sides.iter().enumerate() {
        for f in schema.fields() {
            if combine_weight && source > 0 && is_weight(&f.name) {
                continue;
            }
            *counts.entry(f.name.to_ascii_lowercase()).or_insert(0) += 1;
        }
    }
    let mut out = Vec::new();
    for (source, (binding, schema)) in sides.iter().enumerate() {
        for (id, f) in schema.fields().iter().enumerate() {
            if combine_weight && is_weight(&f.name) {
                if source == 0 {
                    out.push(JoinOutCol {
                        name: "weight".to_string(),
                        source: 0,
                        column: f.name.clone(),
                        column_id: id,
                        data_type: DataType::Float,
                        combined: true,
                    });
                }
                continue;
            }
            let name = if counts[&f.name.to_ascii_lowercase()] > 1 {
                format!("{binding}.{}", f.name)
            } else {
                f.name.clone()
            };
            out.push(JoinOutCol {
                name,
                source,
                column: f.name.clone(),
                column_id: id,
                data_type: f.data_type,
                combined: false,
            });
        }
    }
    out
}

impl Scope {
    /// Bind a scope. Errors on duplicate binding names. Two weighted
    /// (sample) relations are allowed: their correction weights combine
    /// into one product `weight` output column.
    pub fn new(rels: Vec<ScopeRel>) -> Result<Scope> {
        for (i, a) in rels.iter().enumerate() {
            for b in &rels[i + 1..] {
                if a.binding.eq_ignore_ascii_case(&b.binding) {
                    return Err(MosaicError::Bind(format!(
                        "duplicate relation binding {} in FROM; alias one of the relations",
                        a.binding
                    )));
                }
            }
        }
        let combine_weight = rels.iter().filter(|r| r.weighted).count() > 1;
        let sides: Vec<(&str, &Schema)> = rels
            .iter()
            .map(|r| (r.binding.as_str(), r.schema.as_ref()))
            .collect();
        let out = output_columns(&sides, combine_weight);
        Ok(Scope { rels, out })
    }

    /// The join's output columns.
    pub fn out(&self) -> &[JoinOutCol] {
        &self.out
    }

    /// Indices of the weighted (sample) relations, in source order.
    pub fn weighted_sources(&self) -> Vec<usize> {
        self.rels
            .iter()
            .enumerate()
            .filter(|(_, r)| r.weighted)
            .map(|(i, _)| i)
            .collect()
    }

    /// Resolve a (possibly qualified) column reference to its output
    /// column. Bare names matching more than one relation are an
    /// ambiguity error; unknown names and unknown qualifiers are bind
    /// errors.
    pub fn resolve(&self, name: &str) -> Result<&JoinOutCol> {
        if let Some((qual, col)) = name.split_once('.') {
            let source = self
                .rels
                .iter()
                .position(|r| r.binding.eq_ignore_ascii_case(qual))
                .ok_or_else(|| {
                    MosaicError::Bind(format!(
                        "unknown relation qualifier {qual} in column reference {name}; \
                         relations in scope: {}",
                        self.bindings().join(", ")
                    ))
                })?;
            return self
                .out
                .iter()
                .find(|o| o.source == source && o.column.eq_ignore_ascii_case(col))
                .or_else(|| {
                    // Both sides weighted: either side's qualified
                    // `weight` resolves to the single combined column
                    // (the per-side weights are not separately
                    // addressable through the join).
                    if col.eq_ignore_ascii_case("weight") {
                        self.out.iter().find(|o| o.combined)
                    } else {
                        None
                    }
                })
                .ok_or_else(|| {
                    MosaicError::Bind(format!(
                        "unknown column {col} in relation {} ({})",
                        self.rels[source].binding, self.rels[source].name
                    ))
                });
        }
        let matches: Vec<&JoinOutCol> = self
            .out
            .iter()
            .filter(|o| o.column.eq_ignore_ascii_case(name))
            .collect();
        match matches.len() {
            0 => Err(MosaicError::Bind(format!(
                "unknown column {name} in FROM scope ({})",
                self.bindings().join(", ")
            ))),
            1 => Ok(matches[0]),
            _ => Err(MosaicError::Bind(format!(
                "ambiguous column {name}: it exists in {}; qualify it as <relation>.{name}",
                matches
                    .iter()
                    .map(|o| self.rels[o.source].binding.as_str())
                    .collect::<Vec<_>>()
                    .join(" and "),
            ))),
        }
    }

    fn bindings(&self) -> Vec<&str> {
        self.rels.iter().map(|r| r.binding.as_str()).collect()
    }

    /// Rewrite every column reference in an expression to its join
    /// output name.
    pub fn rewrite(&self, e: &Expr) -> Result<Expr> {
        map_columns(e, &|name| Ok(self.resolve(name)?.name.clone()))
    }

    /// Rewrite every column reference to its *source* column name,
    /// requiring all references to come from relation `source` (keys and
    /// pushed-down predicates evaluate against one side's table).
    pub fn rewrite_for_source(&self, e: &Expr, source: usize) -> Result<Expr> {
        map_columns(e, &|name| {
            let out = self.resolve(name)?;
            if out.source != source {
                return Err(MosaicError::Bind(format!(
                    "column {name} does not belong to relation {}",
                    self.rels[source].binding
                )));
            }
            Ok(out.column.clone())
        })
    }

    /// Rewrite a statement's expressions (SELECT list, WHERE, GROUP BY,
    /// ORDER BY) to join output names. The FROM clause is kept verbatim
    /// so the statement stays re-bindable and display-faithful.
    ///
    /// ORDER BY keys get one extra degree of freedom: a name that is not
    /// in scope but matches a SELECT item's output name (its alias or
    /// written spelling) stays untouched — sort keys resolve against the
    /// projection output first at execution, exactly like the
    /// single-relation path.
    pub fn rewrite_stmt(&self, stmt: &SelectStmt) -> Result<SelectStmt> {
        let items: Vec<SelectItem> = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => Ok(SelectItem::Wildcard),
                SelectItem::Expr { expr, alias } => Ok(SelectItem::Expr {
                    expr: self.rewrite(expr)?,
                    // Unaliased items keep their written spelling as
                    // the output name, so `SELECT f.distance` still
                    // labels the column `f.distance`.
                    alias: Some(alias.clone().unwrap_or_else(|| expr.default_name())),
                }),
            })
            .collect::<Result<_>>()?;
        let item_names: Vec<String> = items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
                _ => None,
            })
            .collect();
        let rewrite_sort_key = |e: &Expr| {
            map_columns(e, &|name| {
                match self.resolve(name) {
                    Ok(out) => Ok(out.name.clone()),
                    Err(err) => {
                        if item_names.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                            // A projection alias: leave it for the sort
                            // to resolve against the output table.
                            Ok(name.to_string())
                        } else {
                            Err(err)
                        }
                    }
                }
            })
        };
        Ok(SelectStmt {
            visibility: stmt.visibility,
            items,
            from: stmt.from.clone(),
            where_clause: stmt
                .where_clause
                .as_ref()
                .map(|e| self.rewrite(e))
                .transpose()?,
            group_by: stmt
                .group_by
                .iter()
                .map(|e| self.rewrite(e))
                .collect::<Result<_>>()?,
            order_by: stmt
                .order_by
                .iter()
                .map(|(e, d)| rewrite_sort_key(e).map(|e| (e, *d)))
                .collect::<Result<_>>()?,
            limit: stmt.limit,
        })
    }
}

/// Rebuild an expression with every [`Expr::Column`] name mapped through
/// `f`.
pub(crate) fn map_columns(e: &Expr, f: &impl Fn(&str) -> Result<String>) -> Result<Expr> {
    let map_box = |e: &Expr| map_columns(e, f).map(Box::new);
    Ok(match e {
        Expr::Column(name) => Expr::Column(f(name)?),
        Expr::Literal(_) | Expr::Param(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: map_box(expr)?,
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: map_box(left)?,
            op: *op,
            right: map_box(right)?,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: map_box(expr)?,
            list: list
                .iter()
                .map(|e| map_columns(e, f))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: map_box(expr)?,
            low: map_box(low)?,
            high: map_box(high)?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: map_box(expr)?,
            negated: *negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func: *func,
            arg: arg.as_deref().map(map_box).transpose()?,
        },
    })
}

/// A statement bound against a two-relation scope: the rewritten
/// statement (output names) plus the logical plan with its
/// [`LogicalPlan::Join`] leaf.
pub(crate) struct BoundJoin {
    /// The statement with every expression rewritten to output names.
    pub stmt: SelectStmt,
    /// The canonical logical plan.
    pub logical: LogicalPlan,
}

/// Bind a single aliased relation: validate and rewrite every reference
/// (resolving `alias.col` to `col`), returning the rewritten statement
/// for the ordinary single-table pipeline.
pub(crate) fn bind_single(stmt: &SelectStmt, rel: ScopeRel) -> Result<SelectStmt> {
    Scope::new(vec![rel])?.rewrite_stmt(stmt)
}

/// Bind a join statement against its resolved relations (base first).
///
/// `weighted_agg` marks the paper's §5.3 weighted-aggregate rewrite:
/// population sides under SEMI-OPEN/OPEN visibility carry correction
/// weights the aggregate must consume (the engine feeds the joined
/// `weight` column in as row weights). Sample/table joins pass `false` —
/// their `weight` stays an ordinary, explicitly-queried column.
pub(crate) fn bind_join(
    stmt: &SelectStmt,
    rels: Vec<ScopeRel>,
    weighted_agg: bool,
) -> Result<BoundJoin> {
    let from = stmt
        .from
        .as_ref()
        .expect("bind_join requires a FROM clause");
    if from.joins.len() > 1 {
        return Err(MosaicError::Unsupported(
            "only one JOIN per statement is supported for now".into(),
        ));
    }
    debug_assert_eq!(rels.len(), 2);
    let scope = Scope::new(rels)?;
    let keys = extract_keys(&scope, &from.joins[0].on)?;
    let rewritten = scope.rewrite_stmt(stmt)?;
    let leaf = LogicalPlan::Join {
        left: Box::new(LogicalPlan::Scan {
            source: 0,
            columns: None,
        }),
        right: Box::new(LogicalPlan::Scan {
            source: 1,
            columns: None,
        }),
        kind: from.joins[0].kind,
        keys,
        output: scope.out().to_vec(),
        weighted: scope.weighted_sources(),
    };
    let logical = LogicalPlan::from_stmt_over(&rewritten, weighted_agg, leaf);
    Ok(BoundJoin {
        stmt: rewritten,
        logical,
    })
}

/// Decompose an ON predicate into equi-join key pairs: a conjunction of
/// `left = right` equalities, each side referencing exactly one
/// relation. Keys are rewritten to their side's source column names.
fn extract_keys(scope: &Scope, on: &Expr) -> Result<Vec<(Expr, Expr)>> {
    let mut conjuncts = Vec::new();
    split_and(on, &mut conjuncts);
    let mut keys = Vec::with_capacity(conjuncts.len());
    for conj in conjuncts {
        let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = conj
        else {
            return Err(MosaicError::Unsupported(format!(
                "only equi-joins are supported (INNER or LEFT OUTER): ON must be a \
                 conjunction of `left = right` equalities, found {}",
                conj.default_name()
            )));
        };
        let ls = sole_source(scope, left)?;
        let rs = sole_source(scope, right)?;
        let (l, r): (&Expr, &Expr) = match (ls, rs) {
            (Some(0), Some(1)) => (left, right),
            (Some(1), Some(0)) => (right, left),
            _ => {
                return Err(MosaicError::Unsupported(format!(
                    "each side of the join equality {} = {} must reference exactly one \
                     relation, one per side",
                    left.default_name(),
                    right.default_name()
                )))
            }
        };
        keys.push((
            scope.rewrite_for_source(l, 0)?,
            scope.rewrite_for_source(r, 1)?,
        ));
    }
    Ok(keys)
}

/// Which relation an ON-side expression references: `Some(s)` when every
/// column resolves to source `s`, `None` when it references no columns
/// or spans several sources.
fn sole_source(scope: &Scope, e: &Expr) -> Result<Option<usize>> {
    let cols = e.referenced_columns();
    let mut source = None;
    for c in &cols {
        let s = scope.resolve(c)?.source;
        match source {
            None => source = Some(s),
            Some(prev) if prev != s => return Ok(None),
            _ => {}
        }
    }
    Ok(source)
}

/// Append an expression's AND-conjuncts to `out`, in source order.
pub(crate) fn split_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            split_and(left, out);
            split_and(right, out);
        }
        other => out.push(other),
    }
}

/// Left-associative AND chain over conjuncts (the parser's shape).
pub(crate) fn and_chain(mut conjuncts: Vec<Expr>) -> Expr {
    let first = conjuncts.remove(0);
    conjuncts.into_iter().fold(first, |acc, c| Expr::Binary {
        left: Box::new(acc),
        op: BinOp::And,
        right: Box::new(c),
    })
}

/// Conservative "this predicate can never error at evaluation time"
/// check, required before pushing a WHERE conjunct below the join: a
/// pushed predicate evaluates over rows the unpushed plan would never
/// see (rows that don't join), so any conjunct that *could* error must
/// stay above the join to keep optimizer-on/off results identical.
///
/// Safe shapes (operands restricted to bare columns and literals, whose
/// evaluation cannot fail):
/// * comparisons where both sides are Int columns / numeric literals,
///   both Str, or both Bool (`sql_cmp` total within those classes —
///   Float *columns* are excluded because a NaN makes `sql_cmp` error);
/// * `IS [NOT] NULL`, `[NOT] IN (literals…)` and `[NOT] BETWEEN
///   literals` — these yield NULL instead of erroring on incomparable
///   values, for any column type;
/// * AND / OR / NOT combinations of safe conjuncts.
pub(crate) fn push_safe(e: &Expr, ty: &impl Fn(&str) -> Option<DataType>) -> bool {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Num,
        Str,
        Bool,
        Null,
    }
    fn class(e: &Expr, ty: &impl Fn(&str) -> Option<DataType>) -> Option<Class> {
        match e {
            Expr::Literal(Value::Int(_)) | Expr::Literal(Value::Float(_)) => Some(Class::Num),
            Expr::Literal(Value::Str(_)) => Some(Class::Str),
            Expr::Literal(Value::Bool(_)) => Some(Class::Bool),
            Expr::Literal(Value::Null) => Some(Class::Null),
            Expr::Column(name) => match ty(name)? {
                DataType::Int => Some(Class::Num),
                DataType::Str => Some(Class::Str),
                DataType::Bool => Some(Class::Bool),
                // A Float column may hold NaN, which errors under
                // comparison — never push those.
                DataType::Float => None,
            },
            _ => None,
        }
    }
    /// Bare column or literal: evaluation itself cannot fail.
    fn simple(e: &Expr) -> bool {
        matches!(e, Expr::Column(_) | Expr::Literal(_))
    }
    match e {
        Expr::Binary {
            left,
            op: BinOp::And | BinOp::Or,
            right,
        } => push_safe(left, ty) && push_safe(right, ty),
        Expr::Unary {
            op: mosaic_sql::UnaryOp::Not,
            expr,
        } => push_safe(expr, ty),
        Expr::Binary {
            left,
            op: BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq,
            right,
        } => match (class(left, ty), class(right, ty)) {
            (Some(Class::Null), Some(_)) | (Some(_), Some(Class::Null)) => true,
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
        Expr::IsNull { expr, .. } => simple(expr),
        Expr::InList { expr, list, .. } => {
            simple(expr) && list.iter().all(|e| matches!(e, Expr::Literal(_)))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            simple(expr)
                && matches!(low.as_ref(), Expr::Literal(_))
                && matches!(high.as_ref(), Expr::Literal(_))
        }
        _ => false,
    }
}

// ---- the physical hash join ----

/// One input of a [`HashJoinOp`]: the pruned scan column list, the
/// pushed-down filters, and this side's key expressions (in source
/// column names).
pub struct JoinSide {
    /// Columns the side's scan keeps (`None` = all).
    pub scan_columns: Option<Vec<String>>,
    /// Pushed-down filters, applied before the join.
    pub filters: Vec<FilterOp>,
    /// This side's equi-join key expressions.
    pub keys: Vec<Expr>,
}

/// The vectorized hash equi-join stage of a physical plan (INNER or
/// LEFT OUTER).
///
/// Execution: both inputs are pruned and filtered, the **smaller** one
/// is built into hash tables keyed on normalized key tokens (see
/// `mosaic_storage::kernels::join_key_f64`) — a build side spanning more
/// than one morsel radix-partitions its keys into P independent tables
/// built in parallel on the shared worker pool (P = the engine's
/// aggregate-merge partition knob), a smaller build stays one serial
/// table — then the larger side is probed morsel-parallel with ordered
/// fragment merge, each probe key routed to its key-hash partition.
/// Matching row pairs are restored to the canonical (left row, right
/// row) order (a parallel run-merge sort when the pair set is large) —
/// so results are bit-identical at every thread count *and every
/// partition count*, and to [`reference_join`]. A LEFT OUTER join then
/// inserts one NULL-extended row per unmatched left row via a single
/// merge walk over the canonically ordered pairs.
pub struct HashJoinOp {
    /// Left (base) input.
    pub left: JoinSide,
    /// Right (joined) input.
    pub right: JoinSide,
    /// INNER or LEFT OUTER.
    pub kind: JoinKind,
    /// Output columns (name, source, source column).
    pub output: Vec<JoinOutCol>,
}

impl HashJoinOp {
    /// One-line description for `EXPLAIN`.
    pub fn describe(&self) -> String {
        let keys: Vec<String> = self
            .left
            .keys
            .iter()
            .zip(&self.right.keys)
            .map(|(l, r)| format!("{} = {}", l.default_name(), r.default_name()))
            .collect();
        let out: Vec<&str> = self.output.iter().map(|o| o.name.as_str()).collect();
        let kind = match self.kind {
            JoinKind::Inner => "",
            JoinKind::LeftOuter => " LEFT OUTER",
        };
        format!(
            "HashJoin:{kind} keys [{}], output [{}] (build = smaller input, radix-partitioned \
             when multi-morsel; probe morsel-parallel)",
            keys.join(", "),
            out.join(", ")
        )
    }

    /// Per-side description lines (scan columns + pushed filters) for
    /// `EXPLAIN`.
    pub fn describe_sides(&self) -> Vec<String> {
        let side = |label: &str, s: &JoinSide| {
            let cols = match &s.scan_columns {
                Some(c) => format!(", columns: [{}]", c.join(", ")),
                None => String::new(),
            };
            let filters: Vec<String> = s
                .filters
                .iter()
                .map(|f| format!(", pushed {}", f.describe()))
                .collect();
            format!("{label} input: Scan{cols}{}", filters.join(""))
        };
        vec![side("left", &self.left), side("right", &self.right)]
    }

    /// Prune + filter one input, returning the side's table.
    fn prepare_input(&self, side: &JoinSide, table: &Table, params: &[Value]) -> Result<Table> {
        let table = match &side.scan_columns {
            Some(cols) => prune_scan(table, cols)?,
            None => table.clone(),
        };
        let mut batch = Batch {
            table,
            weights: None,
        };
        let ctx = ExecContext {
            filtered_input: None,
            params,
            threads: 1,
        };
        for f in &side.filters {
            batch = f.execute(&ctx, &batch)?;
        }
        Ok(batch.table)
    }

    /// Execute the join: returns the joined table in canonical
    /// (left row, right row) order. `partitions` caps the radix
    /// partitioning of a multi-morsel build side (1 = serial build);
    /// like the thread cap it never changes results.
    pub fn execute(
        &self,
        left: &Table,
        right: &Table,
        params: &[Value],
        threads: usize,
        partitions: usize,
    ) -> Result<Table> {
        let l = self.prepare_input(&self.left, left, params)?;
        let r = self.prepare_input(&self.right, right, params)?;
        let lk = eval_keys(&self.left.keys, &l, params)?;
        let rk = eval_keys(&self.right.keys, &r, params)?;

        // Build on the strictly smaller input; ties build the right side
        // so the probe emits canonical left-major order directly.
        let build_is_left = l.num_rows() < r.num_rows();
        let (build_keys, probe_keys) = if build_is_left {
            (&lk, &rk)
        } else {
            (&rk, &lk)
        };

        let (mut left_idx, mut right_idx) =
            join_pairs(build_keys, probe_keys, threads, partitions)?;
        if build_is_left {
            // `join_pairs` returns (build, probe) = (left, right) pairs
            // in probe-major (right-major) order; restore the canonical
            // left-major order. The order is (left row, pair position) —
            // a stable sort by left row — so right indices, globally
            // ascending in probe order, stay ascending within each left
            // row; large pair sets sort as parallel runs + k-way merge.
            let perm = parallel_sort_indices(left_idx.len(), threads, |a, b| {
                (left_idx[a], a) < (left_idx[b], b)
            });
            left_idx = perm.iter().map(|&i| left_idx[i]).collect();
            right_idx = perm.iter().map(|&i| right_idx[i]).collect();
        } else {
            std::mem::swap(&mut left_idx, &mut right_idx);
        }

        // LEFT OUTER: one merge walk over the canonically ordered pairs
        // (left_idx is ascending) inserts each unmatched left row once,
        // NULL-extended on the right. An empty inner result (empty
        // build side, type-mismatched keys) NULL-extends every left row.
        let right_opt: Option<Vec<Option<usize>>> = match self.kind {
            JoinKind::Inner => None,
            JoinKind::LeftOuter => {
                let mut li = Vec::with_capacity(left_idx.len());
                let mut ro = Vec::with_capacity(left_idx.len());
                let mut p = 0;
                for lr in 0..l.num_rows() {
                    let matched = p < left_idx.len() && left_idx[p] == lr;
                    while p < left_idx.len() && left_idx[p] == lr {
                        li.push(lr);
                        ro.push(Some(right_idx[p]));
                        p += 1;
                    }
                    if !matched {
                        li.push(lr);
                        ro.push(None);
                    }
                }
                left_idx = li;
                Some(ro)
            }
        };

        // Gather the output columns from both sides.
        let mut fields = Vec::with_capacity(self.output.len());
        let mut columns = Vec::with_capacity(self.output.len());
        for out in &self.output {
            let col = if out.combined {
                combined_weight_column(&l, &r, &left_idx, &right_idx, right_opt.as_deref())?
            } else if out.source == 0 {
                l.column_by_name(&out.column)?.take(&left_idx)
            } else {
                let src = r.column_by_name(&out.column)?;
                match &right_opt {
                    Some(ro) => src.take_opt(ro),
                    None => src.take(&right_idx),
                }
            };
            fields.push(Field::new(out.name.clone(), col.data_type()));
            columns.push(col);
        }
        Table::new(Schema::new(fields), columns).map_err(Into::into)
    }
}

/// A table's engine-managed weight column (name-insensitive lookup).
fn weight_column(t: &Table) -> Result<&Column> {
    let f = t
        .schema()
        .fields()
        .iter()
        .find(|f| f.name.eq_ignore_ascii_case("weight"))
        .ok_or_else(|| {
            MosaicError::Execution(
                "combined weight output requires a weight column on both join sides".into(),
            )
        })?;
    t.column_by_name(&f.name).map_err(Into::into)
}

/// Gather the *combined* weight column of a weighted×weighted join: the
/// elementwise product of the two sides' correction weights
/// (independence assumption). A NULL weight on either side — or a
/// NULL-extended right row of a LEFT OUTER join — yields NULL.
fn combined_weight_column(
    l: &Table,
    r: &Table,
    left_idx: &[usize],
    right_idx: &[usize],
    right_opt: Option<&[Option<usize>]>,
) -> Result<Column> {
    let lw = weight_column(l)?;
    let rw = weight_column(r)?;
    let n = left_idx.len();
    let mut vals = Vec::with_capacity(n);
    let mut validity = Bitmap::ones(n);
    for i in 0..n {
        let rv = match right_opt {
            Some(ro) => ro[i].and_then(|ri| rw.f64_at(ri)),
            None => rw.f64_at(right_idx[i]),
        };
        match (lw.f64_at(left_idx[i]), rv) {
            (Some(a), Some(b)) => vals.push(a * b),
            _ => {
                vals.push(0.0);
                validity.set(i, false);
            }
        }
    }
    Ok(Column::from_f64_opt(vals, Some(validity)))
}

/// Evaluate a side's key expressions into columns.
fn eval_keys(keys: &[Expr], table: &Table, params: &[Value]) -> Result<Vec<Column>> {
    keys.iter()
        .map(|e| {
            let e = bind_expr(e, params)?;
            super::vector::eval_expr(&e, table)
        })
        .collect()
}

/// Per-row normalized key tokens of one key column, plus the rows whose
/// key is usable (non-NULL, non-NaN). Numeric classes (Int/Float/Bool)
/// share one token space — `sql_cmp` coerces them all through `f64` —
/// while strings dictionary-encode against the build side.
struct TokenCol {
    tokens: Vec<u64>,
    valid: Option<Bitmap>,
}

fn numeric_tokens(col: &Column) -> Option<TokenCol> {
    let (tokens, nan_valid) = match col.data_type() {
        DataType::Int => (kernels::join_keys_i64(col.i64_data()?), None),
        DataType::Float => {
            let (t, v) = kernels::join_keys_f64(col.f64_data()?);
            (t, Some(v))
        }
        DataType::Bool => (kernels::join_keys_bool(col.bool_data()?), None),
        DataType::Str => return None,
    };
    Some(TokenCol {
        tokens,
        valid: kernels::combine_validity(col.validity(), nan_valid.as_ref()),
    })
}

/// Tokenize a string build/probe key pair through the columns' own
/// dictionaries (encoding on the fly when a side is still plain — the
/// single source of truth for string token normalization). Sides sharing
/// one dictionary `Arc` use their codes as tokens directly; otherwise
/// the probe remaps onto the build dictionary once per *distinct* probe
/// value. Strings the build side never saw can't match — their rows
/// become invalid.
fn str_tokens(build: &Column, probe: &Column) -> Option<(TokenCol, TokenCol)> {
    let build = build.dict_encoded();
    let probe = probe.dict_encoded();
    let (bc, bd) = build.dict_parts()?;
    let (pc, pd) = probe.dict_parts()?;
    let bt = TokenCol {
        tokens: bc.iter().map(|&c| c as u64).collect(),
        valid: build.validity().cloned(),
    };
    if Arc::ptr_eq(bd, pd) {
        let pt = TokenCol {
            tokens: pc.iter().map(|&c| c as u64).collect(),
            valid: probe.validity().cloned(),
        };
        return Some((bt, pt));
    }
    let remap: Vec<Option<u32>> = pd.values().iter().map(|s| bd.code_of(s)).collect();
    let mut pt = Vec::with_capacity(pc.len());
    let mut pvalid = Bitmap::ones(pc.len());
    for (i, &c) in pc.iter().enumerate() {
        match remap[c as usize] {
            Some(t) => pt.push(t as u64),
            None => {
                pt.push(0);
                pvalid.set(i, false);
            }
        }
    }
    Some((
        bt,
        TokenCol {
            tokens: pt,
            valid: kernels::combine_validity(probe.validity(), Some(&pvalid)),
        },
    ))
}

/// Hash-join two tokenized key sets: radix-partitioned parallel build
/// over `build_keys` (serial below one morsel), morsel-parallel probe
/// over `probe_keys` with ordered fragment merge. Returns
/// `(build rows, probe rows)` pairs in probe-major order (probe row
/// ascending; build rows ascending within one probe row).
fn join_pairs(
    build_keys: &[Column],
    probe_keys: &[Column],
    threads: usize,
    partitions: usize,
) -> Result<(Vec<usize>, Vec<usize>)> {
    let build_rows = build_keys.first().map_or(0, Column::len);
    let probe_rows = probe_keys.first().map_or(0, Column::len);
    debug_assert_eq!(build_keys.len(), probe_keys.len());

    // Tokenize per key column. A Str/non-Str class mismatch means no
    // pair can ever be sql_cmp-equal: the join is empty.
    let mut build_tok = Vec::with_capacity(build_keys.len());
    let mut probe_tok = Vec::with_capacity(probe_keys.len());
    for (b, p) in build_keys.iter().zip(probe_keys) {
        match (
            b.data_type() == DataType::Str,
            p.data_type() == DataType::Str,
        ) {
            (true, true) => {
                let (bt, pt) = str_tokens(b, p).expect("typed str columns");
                build_tok.push(bt);
                probe_tok.push(pt);
            }
            (false, false) => {
                build_tok.push(numeric_tokens(b).expect("typed numeric column"));
                probe_tok.push(numeric_tokens(p).expect("typed numeric column"));
            }
            _ => return Ok((Vec::new(), Vec::new())),
        }
    }
    // The overwhelmingly common single-key join hashes plain `u64`
    // tokens — no per-row allocation in the build or probe loops;
    // multi-key joins fall back to `Vec<u64>` composite keys.
    if let ([bt], [pt]) = (build_tok.as_slice(), probe_tok.as_slice()) {
        let key_of = |t: &TokenCol, row: usize| -> Option<u64> {
            if t.valid.as_ref().is_some_and(|v| !v.get(row)) {
                return None;
            }
            Some(t.tokens[row])
        };
        return Ok(build_and_probe(
            build_rows,
            probe_rows,
            threads,
            partitions,
            |row| key_of(bt, row),
            |row| key_of(pt, row),
        ));
    }
    let key_of = |toks: &[TokenCol], row: usize| -> Option<Vec<u64>> {
        let mut key = Vec::with_capacity(toks.len());
        for t in toks {
            if t.valid.as_ref().is_some_and(|v| !v.get(row)) {
                return None;
            }
            key.push(t.tokens[row]);
        }
        Some(key)
    };
    Ok(build_and_probe(
        build_rows,
        probe_rows,
        threads,
        partitions,
        |row| key_of(&build_tok, row),
        |row| key_of(&probe_tok, row),
    ))
}

/// SplitMix64 finalizer: a full-avalanche bijective mix, so dense or
/// structured token values spread evenly across partitions.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic partition hash for normalized join-key tokens. Build
/// and probe must agree on every key's partition and the layout must be
/// a function of the key alone (never `RandomState`), so the partition
/// count can't change results. The probe loop pays this per row on top
/// of the table lookup, so it's a fixed multiplicative mix over the
/// already-normalized tokens rather than a second SipHash pass.
trait PartitionKey {
    fn partition_hash(&self) -> u64;
}

impl PartitionKey for u64 {
    fn partition_hash(&self) -> u64 {
        mix64(*self)
    }
}

impl PartitionKey for Vec<u64> {
    fn partition_hash(&self) -> u64 {
        self.iter()
            .fold(0x9e37_79b9_7f4a_7c15, |h, &t| mix64(h ^ t))
    }
}

/// Radix-partitioned build + morsel-parallel probe over row-key
/// closures (`None` = unusable key, never matches). A multi-morsel
/// build side is hashed into `partitions` independent tables on the
/// worker pool (single-morsel builds stay serial — partitioning costs
/// more than it saves); each probe key routes to exactly one partition
/// by the same deterministic hash. Per-key build rows stay in ascending
/// row order at every partition count, and probe fragments merge in
/// morsel order, so the pair order is a function of the data alone.
fn build_and_probe<K: Eq + std::hash::Hash + PartitionKey + Send + Sync>(
    build_rows: usize,
    probe_rows: usize,
    threads: usize,
    partitions: usize,
    build_key: impl Fn(usize) -> Option<K> + Sync,
    probe_key: impl Fn(usize) -> Option<K> + Sync,
) -> (Vec<usize>, Vec<usize>) {
    // `u16::MAX` is the NULL-key sentinel in `part_of`, so cap there.
    let n_parts = if partitions > 1 && build_rows > MORSEL_ROWS {
        partitions.min(u16::MAX as usize)
    } else {
        1
    };
    // Build: per key, the matching build rows in ascending row order.
    let tables: Vec<HashMap<K, Vec<u32>>> = if n_parts == 1 {
        let mut table: HashMap<K, Vec<u32>> = HashMap::new();
        for row in 0..build_rows {
            if let Some(key) = build_key(row) {
                table.entry(key).or_default().push(row as u32);
            }
        }
        vec![table]
    } else {
        // Phase 1 (morsel-parallel): each build row's partition id.
        let n_bm = build_rows.div_ceil(MORSEL_ROWS);
        let part_chunks: Vec<Vec<u16>> = run_ordered(n_bm, threads, |mi| {
            let start = mi * MORSEL_ROWS;
            let end = (start + MORSEL_ROWS).min(build_rows);
            (start..end)
                .map(|row| match build_key(row) {
                    Some(key) => (key.partition_hash() % n_parts as u64) as u16,
                    None => u16::MAX,
                })
                .collect()
        });
        let part_of: Vec<u16> = part_chunks.concat();
        // Phase 2 (partition-parallel): independent tables, each
        // inserting its own rows in ascending build-row order.
        run_ordered(n_parts, threads, |pi| {
            let mut table: HashMap<K, Vec<u32>> = HashMap::new();
            for (row, &part) in part_of.iter().enumerate() {
                if part == pi as u16 {
                    let key = build_key(row).expect("partitioned rows have keys");
                    table.entry(key).or_default().push(row as u32);
                }
            }
            table
        })
    };
    if tables.iter().all(HashMap::is_empty) {
        return (Vec::new(), Vec::new());
    }
    let n_morsels = probe_rows.div_ceil(MORSEL_ROWS).max(1);
    let frags: Vec<(Vec<usize>, Vec<usize>)> = run_ordered(n_morsels, threads, |mi| {
        let start = mi * MORSEL_ROWS;
        let end = (start + MORSEL_ROWS).min(probe_rows);
        let mut build_idx = Vec::new();
        let mut probe_idx = Vec::new();
        for row in start..end {
            if let Some(key) = probe_key(row) {
                let table = if n_parts == 1 {
                    &tables[0]
                } else {
                    &tables[(key.partition_hash() % n_parts as u64) as usize]
                };
                if let Some(rows) = table.get(&key) {
                    for &b in rows {
                        build_idx.push(b as usize);
                        probe_idx.push(row);
                    }
                }
            }
        }
        (build_idx, probe_idx)
    });
    let total: usize = frags.iter().map(|(b, _)| b.len()).sum();
    let mut build_idx = Vec::with_capacity(total);
    let mut probe_idx = Vec::with_capacity(total);
    for (b, pr) in frags {
        build_idx.extend(b);
        probe_idx.extend(pr);
    }
    (build_idx, probe_idx)
}

// ---- the row-at-a-time reference join ----

/// Row-at-a-time reference INNER equi-join — the semantics oracle for
/// [`HashJoinOp`], mirroring what [`crate::run_select_rowwise`] is to
/// the vectorized executor. Delegates to [`reference_join_kinded`] with
/// `JoinKind::Inner` and no weighted sides.
pub fn reference_join(
    left: &Table,
    left_binding: &str,
    right: &Table,
    right_binding: &str,
    keys: &[(Expr, Expr)],
) -> Result<Table> {
    reference_join_kinded(
        left,
        left_binding,
        right,
        right_binding,
        keys,
        JoinKind::Inner,
        &[],
    )
}

/// Row-at-a-time reference equi-join covering every join semantic the
/// vectorized [`HashJoinOp`] implements: INNER or LEFT OUTER, with
/// optional per-side correction weights.
///
/// A nested loop with the left side outermost: rows join iff every
/// `(left key, right key)` pair is equal under
/// [`Value::sql_cmp`](mosaic_storage::Value::sql_cmp) (NULL and NaN
/// keys never match), output rows appear in (left row, right row)
/// order, and output columns follow the scope naming rule (bare when
/// unique, `binding.column` otherwise). Key expressions are written in
/// each side's own column names.
///
/// A LEFT OUTER join keeps every unmatched left row once, at its left
/// position, NULL-extended on the right. When `weighted` names both
/// sides (`[0, 1]`), the two per-side `weight` columns collapse into
/// one combined `weight` output — the row-wise product of the sides'
/// weights, NULL when either factor is NULL or the right side is
/// NULL-extended.
pub fn reference_join_kinded(
    left: &Table,
    left_binding: &str,
    right: &Table,
    right_binding: &str,
    keys: &[(Expr, Expr)],
    kind: JoinKind,
    weighted: &[usize],
) -> Result<Table> {
    let materialize = |exprs: Vec<&Expr>, table: &Table| -> Result<Vec<Vec<Value>>> {
        exprs
            .into_iter()
            .map(|e| {
                let col = crate::eval::eval_expr_rowwise(e, table)?;
                Ok((0..col.len()).map(|i| col.value(i)).collect())
            })
            .collect()
    };
    let lk = materialize(keys.iter().map(|(l, _)| l).collect(), left)?;
    let rk = materialize(keys.iter().map(|(_, r)| r).collect(), right)?;
    let mut left_idx = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for lr in 0..left.num_rows() {
        let mut matched = false;
        for rr in 0..right.num_rows() {
            let all_equal = lk
                .iter()
                .zip(&rk)
                .all(|(lc, rc)| lc[lr].sql_cmp(&rc[rr]) == Some(std::cmp::Ordering::Equal));
            if all_equal {
                left_idx.push(lr);
                right_idx.push(Some(rr));
                matched = true;
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            left_idx.push(lr);
            right_idx.push(None);
        }
    }
    let combine_weight = weighted.len() > 1;
    let out = output_columns(
        &[
            (left_binding, left.schema().as_ref()),
            (right_binding, right.schema().as_ref()),
        ],
        combine_weight,
    );
    let mut fields = Vec::with_capacity(out.len());
    let mut columns = Vec::with_capacity(out.len());
    for o in &out {
        let col = if o.combined {
            // Row-at-a-time product through `Value`, independent of the
            // vectorized gather.
            let lw = weight_column(left)?;
            let rw = weight_column(right)?;
            let n = left_idx.len();
            let mut vals = Vec::with_capacity(n);
            let mut validity = Bitmap::ones(n);
            for i in 0..n {
                let a = lw.value(left_idx[i]).as_f64();
                let b = right_idx[i].and_then(|ri| rw.value(ri).as_f64());
                match (a, b) {
                    (Some(a), Some(b)) => vals.push(a * b),
                    _ => {
                        vals.push(0.0);
                        validity.set(i, false);
                    }
                }
            }
            Column::from_f64_opt(vals, Some(validity))
        } else if o.source == 0 {
            left.column_by_name(&o.column)?.take(&left_idx)
        } else {
            right.column_by_name(&o.column)?.take_opt(&right_idx)
        };
        fields.push(Field::new(o.name.clone(), col.data_type()));
        columns.push(col);
    }
    Table::new(Schema::new(fields), columns).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::{parse, parse_expr, Statement};
    use mosaic_storage::TableBuilder;

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    /// The radix-partitioned build is (a) deterministic — the pair
    /// output is bit-identical at every thread count × partition count
    /// — and (b) really on the pool: the probe side is a single morsel,
    /// which `run_ordered` runs inline without ever touching the worker
    /// gauge, so *any* gauge activity here comes from the build's
    /// partition-map and per-partition phases. Fast tasks can drain
    /// before every spawned worker starts, so only this ≥ 1 lower bound
    /// is deterministic (the 10M-row bench asserts concurrency at
    /// scale).
    #[test]
    fn partitioned_build_spawns_workers_and_matches_serial() {
        use crate::plan::parallel::{reset_worker_thread_peak, worker_thread_peak};
        let build_rows = MORSEL_ROWS + 100;
        let probe_rows = MORSEL_ROWS;
        let bkey = |row: usize| {
            if row.is_multiple_of(50) {
                None // NULL build keys partition nowhere
            } else {
                Some((row % 4096) as u64)
            }
        };
        let pkey = |row: usize| Some((row % 8192) as u64);
        let (b1, p1) = build_and_probe(build_rows, probe_rows, 1, 1, bkey, pkey);
        assert!(!b1.is_empty());
        reset_worker_thread_peak();
        let (b2, p2) = build_and_probe(build_rows, probe_rows, 8, 16, bkey, pkey);
        assert!(
            worker_thread_peak() >= 1,
            "partitioned build never spawned a pool worker (serial fallback?)"
        );
        assert_eq!(b1, b2);
        assert_eq!(p1, p2);
        // Partition count is a pure execution knob: any count, including
        // ones that split hot keys unevenly, yields the same pairs.
        for partitions in [2usize, 7, 64] {
            let (b, p) = build_and_probe(build_rows, probe_rows, 8, partitions, bkey, pkey);
            assert_eq!(b1, b, "{partitions} partitions changed build pairs");
            assert_eq!(p1, p, "{partitions} partitions changed probe pairs");
        }
    }

    /// A single-morsel build side must skip partitioning entirely (the
    /// serial path), whatever the partition knob says.
    #[test]
    fn small_build_side_stays_serial() {
        let bkey = |row: usize| Some(row as u64 % 16);
        let pkey = |row: usize| Some(row as u64 % 32);
        let (b1, p1) = build_and_probe(MORSEL_ROWS, 64, 1, 1, bkey, pkey);
        let (b2, p2) = build_and_probe(MORSEL_ROWS, 64, 8, 16, bkey, pkey);
        assert_eq!(b1, b2);
        assert_eq!(p1, p2);
    }

    fn rel(name: &str, binding: &str, fields: Vec<Field>, weighted: bool) -> ScopeRel {
        ScopeRel {
            name: name.into(),
            binding: binding.into(),
            schema: Schema::new(fields),
            weighted,
        }
    }

    fn flights_carriers() -> Vec<ScopeRel> {
        vec![
            rel(
                "flights",
                "f",
                vec![
                    Field::new("carrier", DataType::Str),
                    Field::new("distance", DataType::Int),
                ],
                false,
            ),
            rel(
                "carriers",
                "c",
                vec![
                    Field::new("code", DataType::Str),
                    Field::new("name", DataType::Str),
                ],
                false,
            ),
        ]
    }

    #[test]
    fn scope_naming_and_resolution() {
        let scope = Scope::new(flights_carriers()).unwrap();
        // All names unique → bare output names.
        assert_eq!(scope.resolve("f.carrier").unwrap().name, "carrier");
        assert_eq!(scope.resolve("name").unwrap().source, 1);
        assert!(scope.resolve("f.name").is_err());
        assert!(scope.resolve("nope").is_err());
        assert!(scope.resolve("x.carrier").is_err());
    }

    #[test]
    fn duplicate_names_qualify_and_bare_is_ambiguous() {
        let rels = vec![
            rel("a", "a", vec![Field::new("k", DataType::Int)], false),
            rel("b", "b", vec![Field::new("k", DataType::Int)], false),
        ];
        let scope = Scope::new(rels).unwrap();
        assert_eq!(scope.resolve("a.k").unwrap().name, "a.k");
        assert_eq!(scope.resolve("b.k").unwrap().name, "b.k");
        let err = scope.resolve("k").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn two_weighted_relations_combine_weight() {
        let rels = vec![
            rel(
                "s1",
                "s1",
                vec![
                    Field::new("a", DataType::Int),
                    Field::new("weight", DataType::Float),
                ],
                true,
            ),
            rel(
                "s2",
                "s2",
                vec![
                    Field::new("b", DataType::Int),
                    Field::new("weight", DataType::Float),
                ],
                true,
            ),
        ];
        let scope = Scope::new(rels).unwrap();
        assert_eq!(scope.weighted_sources(), vec![0, 1]);
        // The two per-side weight columns collapse into one combined
        // `weight` output.
        let weights: Vec<&JoinOutCol> = scope
            .out()
            .iter()
            .filter(|o| o.name.eq_ignore_ascii_case("weight"))
            .collect();
        assert_eq!(weights.len(), 1);
        assert!(weights[0].combined);
        assert_eq!(weights[0].data_type, DataType::Float);
        // Either side's qualified `weight` resolves to the combined
        // column; bare `weight` is unambiguous.
        assert!(scope.resolve("s1.weight").unwrap().combined);
        assert!(scope.resolve("s2.weight").unwrap().combined);
        assert!(scope.resolve("weight").unwrap().combined);
    }

    #[test]
    fn key_extraction_orients_sides() {
        let scope = Scope::new(flights_carriers()).unwrap();
        // Written backwards: right side first.
        let on = parse_expr("c.code = f.carrier").unwrap();
        let keys = extract_keys(&scope, &on).unwrap();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0, parse_expr("carrier").unwrap());
        assert_eq!(keys[0].1, parse_expr("code").unwrap());
        // Non-equi and single-sided shapes are rejected.
        assert!(extract_keys(&scope, &parse_expr("f.carrier > c.code").unwrap()).is_err());
        assert!(extract_keys(&scope, &parse_expr("f.carrier = f.carrier").unwrap()).is_err());
        assert!(extract_keys(&scope, &parse_expr("f.carrier = 'AA'").unwrap()).is_err());
    }

    #[test]
    fn bind_join_builds_tree_and_rewrites() {
        let stmt = select(
            "SELECT c.name, SUM(f.distance) FROM flights f JOIN carriers c \
             ON f.carrier = c.code WHERE f.distance > 100 GROUP BY c.name",
        );
        let bound = bind_join(&stmt, flights_carriers(), false).unwrap();
        let join = bound.logical.join().expect("join leaf");
        let LogicalPlan::Join { output, .. } = join else {
            unreachable!()
        };
        assert_eq!(output.len(), 4);
        // Rewritten statement speaks output names.
        let w = bound.stmt.where_clause.as_ref().unwrap();
        assert_eq!(w, &parse_expr("distance > 100").unwrap());
        let text = bound.logical.to_string();
        assert!(text.contains("Join[carrier = code]"), "{text}");
    }

    #[test]
    fn push_safety_rules() {
        let ty = |name: &str| -> Option<DataType> {
            match name {
                "i" => Some(DataType::Int),
                "s" => Some(DataType::Str),
                "f" => Some(DataType::Float),
                "b" => Some(DataType::Bool),
                _ => None,
            }
        };
        for (src, safe) in [
            ("i > 3", true),
            ("s = 'x'", true),
            ("b = true", true),
            ("i > 3 AND s != 'y'", true),
            ("NOT i = 2", true),
            ("f IS NOT NULL", true),
            ("f BETWEEN 0 AND 2", true),
            ("f IN (1.5, 2.5)", true),
            ("i IN (1, 2, NULL)", true),
            ("i = NULL", true),
            // Float comparisons can error on NaN: not pushable.
            ("f > 0.5", false),
            // Type-mixed comparisons error: not pushable.
            ("i = 'x'", false),
            ("s < 3", false),
            // Compound operands are not analyzed: not pushable.
            ("i + 1 > 3", false),
            ("unknown > 1", false),
        ] {
            let e = parse_expr(src).unwrap();
            assert_eq!(push_safe(&e, &ty), safe, "{src}");
        }
    }

    fn table(fields: Vec<Field>, rows: Vec<Vec<Value>>) -> Table {
        let mut b = TableBuilder::new(Schema::new(fields));
        for row in rows {
            b.push_row(row).unwrap();
        }
        b.finish()
    }

    #[test]
    fn reference_join_canonical_order_and_null_keys() {
        let left = table(
            vec![
                Field::new("k", DataType::Str),
                Field::new("v", DataType::Int),
            ],
            vec![
                vec!["a".into(), 1.into()],
                vec!["b".into(), 2.into()],
                vec![Value::Null, 3.into()],
                vec!["a".into(), 4.into()],
            ],
        );
        let right = table(
            vec![
                Field::new("code", DataType::Str),
                Field::new("n", DataType::Int),
            ],
            vec![
                vec!["a".into(), 10.into()],
                vec![Value::Null, 20.into()],
                vec!["a".into(), 30.into()],
            ],
        );
        let keys = vec![(parse_expr("k").unwrap(), parse_expr("code").unwrap())];
        let out = reference_join(&left, "l", &right, "r", &keys).unwrap();
        // Rows: (l0,r0), (l0,r2), (l3,r0), (l3,r2) — NULLs never match.
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.num_columns(), 4);
        let vs: Vec<(Value, Value)> = (0..4).map(|r| (out.value(r, 1), out.value(r, 3))).collect();
        assert_eq!(
            vs,
            vec![
                (1.into(), 10.into()),
                (1.into(), 30.into()),
                (4.into(), 10.into()),
                (4.into(), 30.into()),
            ]
        );
    }

    #[test]
    fn hash_join_matches_reference_both_build_sides() {
        // Small left (build = left, probe = right after the size rule)
        // and the mirrored case both reproduce the reference exactly.
        let mk_left = |n: usize| {
            table(
                vec![
                    Field::new("k", DataType::Int),
                    Field::new("v", DataType::Int),
                ],
                (0..n)
                    .map(|i| {
                        vec![
                            if i % 7 == 0 {
                                Value::Null
                            } else {
                                Value::Int((i % 5) as i64)
                            },
                            Value::Int(i as i64),
                        ]
                    })
                    .collect(),
            )
        };
        let mk_right = |n: usize| {
            table(
                vec![
                    Field::new("code", DataType::Int),
                    Field::new("w", DataType::Int),
                ],
                (0..n)
                    .map(|i| vec![Value::Int((i % 6) as i64), Value::Int(100 + i as i64)])
                    .collect(),
            )
        };
        let keys = vec![(parse_expr("k").unwrap(), parse_expr("code").unwrap())];
        for (ln, rn) in [(30usize, 8usize), (8, 30), (10, 10), (0, 5), (5, 0)] {
            let left = mk_left(ln);
            let right = mk_right(rn);
            for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
                let op = HashJoinOp {
                    left: JoinSide {
                        scan_columns: None,
                        filters: Vec::new(),
                        keys: vec![keys[0].0.clone()],
                    },
                    right: JoinSide {
                        scan_columns: None,
                        filters: Vec::new(),
                        keys: vec![keys[0].1.clone()],
                    },
                    kind,
                    output: output_columns(
                        &[
                            ("l", left.schema().as_ref()),
                            ("r", right.schema().as_ref()),
                        ],
                        false,
                    ),
                };
                let reference =
                    reference_join_kinded(&left, "l", &right, "r", &keys, kind, &[]).unwrap();
                for (threads, partitions) in [(1, 1), (4, 1), (4, 16)] {
                    let out = op.execute(&left, &right, &[], threads, partitions).unwrap();
                    assert_eq!(out.num_rows(), reference.num_rows(), "{kind} {ln}x{rn}");
                    for r in 0..out.num_rows() {
                        for c in 0..out.num_columns() {
                            assert_eq!(
                                out.value(r, c),
                                reference.value(r, c),
                                "{kind} {ln}x{rn} cell ({r},{c}) at {threads} threads"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn left_outer_null_extends_and_keeps_order() {
        let left = table(
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ],
            vec![
                vec![1.into(), 10.into()],
                vec![Value::Null, 20.into()],
                vec![3.into(), 30.into()],
                vec![1.into(), 40.into()],
            ],
        );
        let right = table(
            vec![
                Field::new("code", DataType::Int),
                Field::new("n", DataType::Int),
            ],
            vec![vec![1.into(), 100.into()], vec![1.into(), 200.into()]],
        );
        let keys = vec![(parse_expr("k").unwrap(), parse_expr("code").unwrap())];
        let op = HashJoinOp {
            left: JoinSide {
                scan_columns: None,
                filters: Vec::new(),
                keys: vec![keys[0].0.clone()],
            },
            right: JoinSide {
                scan_columns: None,
                filters: Vec::new(),
                keys: vec![keys[0].1.clone()],
            },
            kind: JoinKind::LeftOuter,
            output: output_columns(
                &[
                    ("l", left.schema().as_ref()),
                    ("r", right.schema().as_ref()),
                ],
                false,
            ),
        };
        let out = op.execute(&left, &right, &[], 2, 16).unwrap();
        // l0 matches r0,r1; l1 (NULL key) and l2 are NULL-extended at
        // their left positions; l3 matches r0,r1 again.
        assert_eq!(out.num_rows(), 6);
        let rows: Vec<(Value, Value)> =
            (0..6).map(|r| (out.value(r, 1), out.value(r, 3))).collect();
        assert_eq!(
            rows,
            vec![
                (10.into(), 100.into()),
                (10.into(), 200.into()),
                (20.into(), Value::Null),
                (30.into(), Value::Null),
                (40.into(), 100.into()),
                (40.into(), 200.into()),
            ]
        );
        let reference =
            reference_join_kinded(&left, "l", &right, "r", &keys, JoinKind::LeftOuter, &[])
                .unwrap();
        assert_eq!(out.num_rows(), reference.num_rows());
        for r in 0..out.num_rows() {
            for c in 0..out.num_columns() {
                assert_eq!(out.value(r, c), reference.value(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn combined_weight_is_product_and_null_extends() {
        let left = table(
            vec![
                Field::new("k", DataType::Int),
                Field::new("weight", DataType::Float),
            ],
            vec![
                vec![1.into(), 2.0.into()],
                vec![2.into(), 3.0.into()],
                vec![9.into(), 5.0.into()],
            ],
        );
        let right = table(
            vec![
                Field::new("code", DataType::Int),
                Field::new("weight", DataType::Float),
            ],
            vec![vec![1.into(), 10.0.into()], vec![2.into(), 0.5.into()]],
        );
        let keys = vec![(parse_expr("k").unwrap(), parse_expr("code").unwrap())];
        let output = output_columns(
            &[
                ("a", left.schema().as_ref()),
                ("b", right.schema().as_ref()),
            ],
            true,
        );
        // One combined weight column; right's weight emits no output.
        assert_eq!(
            output.iter().filter(|o| o.name == "weight").count(),
            1,
            "{output:?}"
        );
        for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
            let op = HashJoinOp {
                left: JoinSide {
                    scan_columns: None,
                    filters: Vec::new(),
                    keys: vec![keys[0].0.clone()],
                },
                right: JoinSide {
                    scan_columns: None,
                    filters: Vec::new(),
                    keys: vec![keys[0].1.clone()],
                },
                kind,
                output: output.clone(),
            };
            let out = op.execute(&left, &right, &[], 2, 16).unwrap();
            let w = out.column_by_name("weight").unwrap();
            match kind {
                JoinKind::Inner => {
                    assert_eq!(out.num_rows(), 2);
                    assert_eq!(w.value(0), Value::Float(20.0));
                    assert_eq!(w.value(1), Value::Float(1.5));
                }
                JoinKind::LeftOuter => {
                    // The unmatched left row k=9 gets a NULL combined
                    // weight.
                    assert_eq!(out.num_rows(), 3);
                    assert_eq!(w.value(2), Value::Null);
                }
            }
            let reference =
                reference_join_kinded(&left, "a", &right, "b", &keys, kind, &[0, 1]).unwrap();
            assert_eq!(out.num_rows(), reference.num_rows());
            for r in 0..out.num_rows() {
                for c in 0..out.num_columns() {
                    assert_eq!(out.value(r, c), reference.value(r, c), "{kind} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn cross_type_keys_follow_sql_cmp() {
        // Int keys join Float keys through f64 coercion; strings never
        // match numbers.
        let left = table(
            vec![Field::new("k", DataType::Int)],
            vec![vec![1.into()], vec![2.into()]],
        );
        let right = table(
            vec![Field::new("code", DataType::Float)],
            vec![vec![1.0.into()], vec![2.5.into()]],
        );
        let keys = vec![(parse_expr("k").unwrap(), parse_expr("code").unwrap())];
        let op = HashJoinOp {
            left: JoinSide {
                scan_columns: None,
                filters: Vec::new(),
                keys: vec![keys[0].0.clone()],
            },
            right: JoinSide {
                scan_columns: None,
                filters: Vec::new(),
                keys: vec![keys[0].1.clone()],
            },
            kind: JoinKind::Inner,
            output: output_columns(
                &[
                    ("l", left.schema().as_ref()),
                    ("r", right.schema().as_ref()),
                ],
                false,
            ),
        };
        let out = op.execute(&left, &right, &[], 1, 1).unwrap();
        let reference = reference_join(&left, "l", &right, "r", &keys).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.num_rows(), reference.num_rows());
        assert_eq!(out.value(0, 0), Value::Int(1));

        let right_str = table(
            vec![Field::new("code", DataType::Str)],
            vec![vec!["1".into()]],
        );
        let op2 = HashJoinOp {
            output: output_columns(
                &[
                    ("l", left.schema().as_ref()),
                    ("r", right_str.schema().as_ref()),
                ],
                false,
            ),
            ..op
        };
        assert_eq!(
            op2.execute(&left, &right_str, &[], 1, 1)
                .unwrap()
                .num_rows(),
            0
        );
    }
}
